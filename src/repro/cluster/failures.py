"""Failure injection.

Deterministic crash/restart schedules for the fault-tolerance experiments:
the recovery bench crashes a worker's host mid-optimization and measures the
checkpoint/restart path end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class FailurePlan:
    """One scheduled failure: crash ``host`` at ``crash_at``; optionally
    restart it ``restart_after`` seconds later."""

    host: str
    crash_at: float
    restart_after: Optional[float] = None

    def validate(self) -> None:
        if self.crash_at < 0:
            raise ConfigurationError("crash_at must be non-negative")
        if self.restart_after is not None and self.restart_after <= 0:
            raise ConfigurationError("restart_after must be positive")


class FailureInjector:
    """Applies :class:`FailurePlan` schedules to a cluster."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.injected: list[FailurePlan] = []

    def schedule(self, plan: FailurePlan) -> None:
        plan.validate()
        host = self.cluster.host(plan.host)  # validates host name
        sim = self.cluster.sim
        sim.schedule_at(plan.crash_at, host.crash)
        if plan.restart_after is not None:
            sim.schedule_at(plan.crash_at + plan.restart_after, host.restart)
        self.injected.append(plan)

    def schedule_all(self, plans: Sequence[FailurePlan]) -> None:
        for plan in plans:
            self.schedule(plan)

    def random_plans(
        self,
        count: int,
        horizon: float,
        restart_after: Optional[float] = None,
        stream: str = "failures",
    ) -> list[FailurePlan]:
        """Draw ``count`` crash times uniformly over ``(0, horizon)`` on
        distinct random hosts, reproducibly from the simulator's seed."""
        hosts = self.cluster.host_names()
        if count > len(hosts):
            raise ConfigurationError(
                f"cannot crash {count} distinct hosts of {len(hosts)}"
            )
        rng = self.cluster.sim.rng(stream)
        chosen = rng.choice(len(hosts), size=count, replace=False)
        times = sorted(rng.uniform(0.0, horizon, size=count))
        return [
            FailurePlan(hosts[int(h)], float(t), restart_after)
            for h, t in zip(chosen, times)
        ]
