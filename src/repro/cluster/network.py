"""Message network between hosts.

Datagram semantics: ``send`` computes a delivery delay from base latency and
bandwidth (message size matters — the ORB's CDR encoder reports real wire
sizes) and schedules delivery into the destination port's channel.  Messages
to a host that is down or partitioned away at *delivery* time are silently
dropped, like packets to a dead machine; reliability is the job of the
layers above (the ORB's connection-oriented transport detects loss through
peer-death notifications, Winner's report protocol simply tolerates it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim import Channel

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class Datagram:
    """One delivered message."""

    src_host: str
    src_port: int
    dst_host: str
    dst_port: int
    payload: Any
    size: int
    sent_at: float


class Network:
    """Star-topology LAN connecting the cluster's hosts.

    :param latency: one-way base latency in seconds between distinct hosts.
    :param bandwidth: bytes per second; transfer time ``size / bandwidth``
        adds to the base latency.
    :param local_latency: loopback latency for same-host messages.
    """

    def __init__(
        self,
        sim: "Simulator",
        latency: float = 0.5e-3,
        bandwidth: float = 10e6,
        local_latency: float = 20e-6,
    ) -> None:
        if latency < 0 or bandwidth <= 0 or local_latency < 0:
            raise SimulationError("invalid network parameters")
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self.local_latency = local_latency
        self._hosts: dict[str, "Host"] = {}
        self._ports: dict[tuple[str, int], Channel] = {}
        self._partitions: set[frozenset[str]] = set()
        self._drop_listeners: list = []
        self._ephemeral: dict[str, int] = {}
        #: random loss: probability and the destination ports it applies
        #: to (None = all). The ORB assumes a reliable transport (TCP), so
        #: experiments restrict loss to datagram protocols such as
        #: Winner's report port.
        self._loss_rate = 0.0
        self._loss_ports: Optional[set[int]] = None
        #: latency surge state (chaos injection): base latency is scaled by
        #: ``latency_factor``, ``extra_latency`` is added flat, and a
        #: per-message exponential jitter of mean ``latency_jitter`` rides on
        #: top (drawn from the seeded "network-jitter" stream, so surged
        #: runs stay reproducible).
        self.latency_factor = 1.0
        self.extra_latency = 0.0
        self.latency_jitter = 0.0
        #: counters for reports
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        self.drop_listener_errors = 0

    # -- topology -------------------------------------------------------------

    def attach(self, host: "Host") -> None:
        if host.name in self._hosts:
            raise SimulationError(f"host {host.name} already attached")
        self._hosts[host.name] = host
        host.on_crash(self._on_host_crash)

    def host(self, name: str) -> "Host":
        try:
            return self._hosts[name]
        except KeyError:
            raise SimulationError(f"unknown host {name!r}") from None

    def partition(self, a: str, b: str) -> None:
        """Block traffic between hosts ``a`` and ``b`` (both directions)."""
        self.host(a), self.host(b)  # validate
        self._partitions.add(frozenset((a, b)))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard(frozenset((a, b)))

    #: operator-facing alias of :meth:`heal`.
    unpartition = heal

    def heal_all(self) -> None:
        self._partitions.clear()

    #: operator-facing alias of :meth:`heal_all`.
    clear_partitions = heal_all

    def is_partitioned(self, a: str, b: str) -> bool:
        return frozenset((a, b)) in self._partitions

    def partition_count(self) -> int:
        return len(self._partitions)

    # -- ports ---------------------------------------------------------------

    def bind(self, host: "Host", port: int) -> Channel:
        """Open a datagram endpoint; returns its delivery channel."""
        key = (host.name, port)
        if key in self._ports:
            raise SimulationError(f"port {port} already bound on {host.name}")
        channel = Channel(self.sim, name=f"{host.name}:{port}")
        self._ports[key] = channel
        return channel

    def unbind(self, host_name: str, port: int) -> None:
        channel = self._ports.pop((host_name, port), None)
        if channel is not None:
            channel.close()

    def is_bound(self, host_name: str, port: int) -> bool:
        return (host_name, port) in self._ports

    def ephemeral_port(self, host_name: str) -> int:
        """Allocate the next free ephemeral port on ``host_name``."""
        port = self._ephemeral.get(host_name, 20000)
        while (host_name, port) in self._ports:
            port += 1
        self._ephemeral[host_name] = port + 1
        return port

    # -- transfer ---------------------------------------------------------------

    def delay(self, src: str, dst: str, size: int) -> float:
        if src == dst:
            return self.local_latency
        base = (
            self.latency * self.latency_factor
            + self.extra_latency
            + size / self.bandwidth
        )
        if self.latency_jitter > 0.0:
            base += float(
                self.sim.rng("network-jitter").exponential(self.latency_jitter)
            )
        return base

    def set_latency_surge(
        self,
        factor: float = 1.0,
        extra: float = 0.0,
        jitter: float = 0.0,
    ) -> None:
        """Install (or clear, with defaults) a latency surge on every
        host-to-host path: base latency × ``factor`` + ``extra`` seconds,
        plus exponential jitter of mean ``jitter`` seconds per message."""
        if factor <= 0 or extra < 0 or jitter < 0:
            raise SimulationError("invalid latency surge parameters")
        self.latency_factor = factor
        self.extra_latency = extra
        self.latency_jitter = jitter

    def clear_latency_surge(self) -> None:
        self.set_latency_surge()

    def send(
        self,
        src: "Host",
        src_port: int,
        dst_name: str,
        dst_port: int,
        payload: Any,
        size: int = 0,
    ) -> None:
        """Fire-and-forget datagram send.

        A send from a crashed host is impossible and raises; a message whose
        destination is down, unbound or partitioned *at delivery time* is
        dropped silently.
        """
        if not src.up:
            raise SimulationError(f"send from crashed host {src.name}")
        if dst_name not in self._hosts:
            raise SimulationError(f"send to unknown host {dst_name!r}")
        self.messages_sent += 1
        self.bytes_sent += size
        datagram = Datagram(
            src_host=src.name,
            src_port=src_port,
            dst_host=dst_name,
            dst_port=dst_port,
            payload=payload,
            size=size,
            sent_at=self.sim.now,
        )
        self.sim.schedule(
            self.delay(src.name, dst_name, size),
            lambda: self._deliver(datagram),
        )

    def inject(
        self,
        src_name: str,
        src_port: int,
        dst_name: str,
        dst_port: int,
        payload: Any,
        size: int = 0,
    ) -> None:
        """Schedule delivery of a synthesized message (e.g. a connection
        reset emitted on behalf of a dead endpoint). Unlike :meth:`send`,
        the nominal source need not be alive."""
        datagram = Datagram(
            src_host=src_name,
            src_port=src_port,
            dst_host=dst_name,
            dst_port=dst_port,
            payload=payload,
            size=size,
            sent_at=self.sim.now,
        )
        self.sim.schedule(
            self.delay(src_name, dst_name, size),
            lambda: self._deliver(datagram),
        )

    def set_loss_rate(self, rate: float, ports: Optional[set[int]] = None) -> None:
        """Drop each matching datagram with probability ``rate``.

        :param ports: destination ports subject to loss (None = every
            port).  Loss draws come from the simulator's seeded RNG, so
            lossy runs stay reproducible.
        """
        if not 0.0 <= rate < 1.0:
            raise SimulationError(f"loss rate must be in [0, 1), got {rate}")
        self._loss_rate = rate
        self._loss_ports = set(ports) if ports is not None else None

    def add_drop_listener(self, listener) -> None:
        """``listener(datagram)`` is invoked for every dropped message.

        A listener that raises must not abort delivery bookkeeping or
        starve the remaining listeners: the exception is swallowed, traced
        and counted in ``network_drop_listener_errors_total``.
        """
        self._drop_listeners.append(listener)

    def _drop(self, datagram: Datagram, reason: str = "unreachable") -> None:
        self.messages_dropped += 1
        self.sim.obs.metrics.counter(
            "network_dropped_total", reason=reason
        ).inc()
        for listener in list(self._drop_listeners):
            try:
                listener(datagram)
            # analysis: ignore[EXC002]: listener isolation — errors are counted and traced, one bad listener must not drop the rest
            except Exception as exc:  # noqa: BLE001 - listener isolation
                self.drop_listener_errors += 1
                self.sim.obs.metrics.counter(
                    "network_drop_listener_errors_total",
                    listener=type(exc).__name__,
                ).inc()
                self.sim.trace.emit(
                    "network",
                    "drop listener raised (isolated)",
                    error=type(exc).__name__,
                    dst=datagram.dst_host,
                )

    def _deliver(self, datagram: Datagram) -> None:
        dst = self._hosts[datagram.dst_host]
        if not dst.up:
            self._drop(datagram, reason="host-down")
            return
        if self.is_partitioned(datagram.src_host, datagram.dst_host):
            self._drop(datagram, reason="partition")
            return
        if self._loss_rate > 0.0 and (
            self._loss_ports is None or datagram.dst_port in self._loss_ports
        ):
            if self.sim.rng("network-loss").random() < self._loss_rate:
                # Silent loss: no reset synthesis, so no listeners either.
                self.messages_dropped += 1
                self.sim.obs.metrics.counter(
                    "network_dropped_total", reason="loss"
                ).inc()
                return
        channel = self._ports.get((datagram.dst_host, datagram.dst_port))
        if channel is None or channel.closed:
            self._drop(datagram, reason="unbound")
            return
        self.messages_delivered += 1
        channel.put(datagram)

    # -- failure handling ----------------------------------------------------------

    def _on_host_crash(self, host: "Host") -> None:
        """Close every port bound on the crashed host."""
        for (host_name, port) in [k for k in self._ports if k[0] == host.name]:
            self.unbind(host_name, port)
