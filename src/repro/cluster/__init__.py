"""The simulated network of workstations (NOW).

The paper's testbed is a network of 10 Unix workstations.  This package
models it: hosts with processor-sharing CPUs and crash/restart semantics, a
message network with latency and bandwidth, CPU-bound background-load
generators (the independent variable of Fig. 3) and failure-injection
schedules (exercising the fault-tolerance path of §3).
"""

from repro.cluster.host import Host, HostLoadSampler
from repro.cluster.network import Datagram, Network
from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.loadgen import (
    BackgroundLoad,
    LatencyHistogram,
    OpenLoopPopulation,
)
from repro.cluster.failures import FailureInjector, FailurePlan

__all__ = [
    "BackgroundLoad",
    "Cluster",
    "ClusterConfig",
    "Datagram",
    "FailureInjector",
    "FailurePlan",
    "Host",
    "HostLoadSampler",
    "LatencyHistogram",
    "Network",
    "OpenLoopPopulation",
]
