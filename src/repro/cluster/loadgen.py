"""Load generators: background CPU load and open-loop client populations.

Fig. 3's independent variable is "number of hosts with background load": a
CPU-bound process competing with the application workers
(:class:`BackgroundLoad`).  Under processor sharing, one background process
on a host halves a co-located worker's rate; ``intensity=2`` models two
competing processes (worker gets a third), etc.

The scale harness needs something Fig. 3 does not: traffic from *millions*
of clients.  Scripting a worker process per client the way the paper's
experiments do would mean 10⁶ live generators — :class:`OpenLoopPopulation`
instead models the population the way a telephone-traffic engineer would:
requests arrive as an aggregate Poisson stream at a configured rate
(open-loop — arrivals do not wait for completions, so overload behaves like
overload), each arrival is attributed to a uniformly drawn client id, and
per-client state is two numpy counters.  No simulation process is created
per request: the arrival loop is one self-rescheduling kernel event and
each request is one CPU-task future plus a completion callback, so memory
is O(clients) in small integers and O(in-flight) in futures.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, ProcessKilled
from repro.sim.events import SimFuture
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.sim.kernel import ScheduledEvent, Simulator


class BackgroundLoad:
    """A persistent CPU-bound background workload on one host.

    :param intensity: number of concurrent CPU-bound processes.
    :param chunk: work units consumed per scheduling quantum; small enough
        that load starts/stops take effect promptly, large enough to keep
        the event count low.
    """

    def __init__(self, host: "Host", intensity: int = 1, chunk: float = 1.0) -> None:
        self.host = host
        self.intensity = intensity
        self.chunk = chunk
        self._processes: list[Process] = []
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "BackgroundLoad":
        """Begin generating load; idempotent."""
        if self._running:
            return self
        self._running = True
        self.host.sim.trace.emit(
            "load", f"background load on {self.host.name}", intensity=self.intensity
        )
        for i in range(self.intensity):
            process = self.host.spawn(self._burn(), name=f"bgload{i}")
            self._processes.append(process)
        return self

    def stop(self) -> None:
        """Stop generating load; idempotent."""
        if not self._running:
            return
        self._running = False
        processes, self._processes = self._processes, []
        for process in processes:
            process.kill()
        self.host.sim.trace.emit("load", f"background load off {self.host.name}")

    def _burn(self):
        try:
            while self._running and self.host.up:
                yield self.host.execute(self.chunk)
        except ProcessKilled:
            raise


class LatencyHistogram:
    """Fixed-memory latency accounting: log-spaced bins plus exact
    count/sum/min/max.  Quantiles are read from the bins (upper-edge
    estimate), so recording 10⁶ completions costs two arrays, not a list
    of samples."""

    __slots__ = ("edges", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        low: float = 1e-5,
        high: float = 1e3,
        bins_per_decade: int = 16,
    ) -> None:
        decades = np.log10(high) - np.log10(low)
        self.edges = np.logspace(
            np.log10(low), np.log10(high), int(decades * bins_per_decade) + 1
        )
        # one underflow and one overflow bin around the edges.
        self.counts = np.zeros(len(self.edges) + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, value: float) -> None:
        self.counts[int(np.searchsorted(self.edges, value))] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper edge of the bin holding the ``q``-quantile (0 if empty)."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank))
        if index <= 0:
            return float(self.edges[0])
        if index >= len(self.edges):
            return self.max
        return float(self.edges[index])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class OpenLoopPopulation:
    """Open-loop Poisson traffic from a bounded-state client population.

    :param sim: the simulator (arrival draws come from
        ``sim.rng("loadgen", name)``, so two populations with different
        names have independent, reproducible streams).
    :param num_clients: population size; per-client state is one issued
        and one completed counter (uint32), nothing else.
    :param arrival_rate: aggregate λ in requests per simulated second.
    :param place: placement hook — called with the arriving client's id,
        returns the :class:`Host` to run the request on, or ``None`` to
        drop it (all replicas down).  The id lets service-affine harnesses
        route client *n* to its service's shard.
    :param request_work: CPU work units per request.
    """

    def __init__(
        self,
        sim: "Simulator",
        num_clients: int,
        arrival_rate: float,
        place: Callable[[int], Optional["Host"]],
        request_work: float = 1.0,
        name: str = "population",
    ) -> None:
        if num_clients < 1:
            raise ConfigurationError(f"need at least one client, got {num_clients}")
        if arrival_rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0, got {arrival_rate}")
        self.sim = sim
        self.name = name
        self.num_clients = num_clients
        self.arrival_rate = arrival_rate
        self.place = place
        self.request_work = request_work
        self._rng = sim.rng("loadgen", name)
        self._next_arrival: Optional["ScheduledEvent"] = None
        self.running = False
        self.started_at = 0.0
        self.stopped_at = 0.0
        #: per-client counters — the *whole* per-client state.
        self.issued = np.zeros(num_clients, dtype=np.uint32)
        self.completed = np.zeros(num_clients, dtype=np.uint32)
        self.arrivals = 0
        self.dropped = 0
        self.failures = 0
        self.in_flight = 0
        self.latency = LatencyHistogram()
        #: rolling CRC-32 over the completion stream ``(client, time)`` —
        #: two runs are behaviourally identical iff fingerprints match.
        self.fingerprint = 0

    def start(self) -> "OpenLoopPopulation":
        if self.running:
            return self
        self.running = True
        self.started_at = self.sim.now
        self._schedule_arrival()
        return self

    def stop(self) -> None:
        """Stop generating arrivals (in-flight requests still complete)."""
        if not self.running:
            return
        self.running = False
        self.stopped_at = self.sim.now
        if self._next_arrival is not None:
            self._next_arrival.cancel()
            self._next_arrival = None

    # -- the arrival loop -----------------------------------------------------

    def _schedule_arrival(self) -> None:
        delay = float(self._rng.exponential(1.0 / self.arrival_rate))
        self._next_arrival = self.sim.schedule(delay, self._arrive)

    def _arrive(self) -> None:
        self._next_arrival = None
        if not self.running:
            return
        self._schedule_arrival()
        client = int(self._rng.integers(self.num_clients))
        self.arrivals += 1
        self.issued[client] += 1
        host = self.place(client)
        if host is None:
            self.dropped += 1
            return
        started = self.sim.now
        future = host.execute(self.request_work)
        self.in_flight += 1
        future.add_done_callback(
            lambda f, client=client, started=started: self._complete(
                f, client, started
            )
        )

    def _complete(self, future: SimFuture, client: int, started: float) -> None:
        self.in_flight -= 1
        if future.failed:
            self.failures += 1
            return
        now = self.sim.now
        self.completed[client] += 1
        self.latency.record(now - started)
        self.fingerprint = zlib.crc32(
            f"{client},{now!r}".encode("ascii"), self.fingerprint
        )

    # -- reporting -------------------------------------------------------------

    @property
    def completions(self) -> int:
        return self.latency.count

    def empirical_rate(self) -> float:
        """Observed arrival rate over the generating window."""
        end = self.stopped_at if not self.running else self.sim.now
        window = end - self.started_at
        return self.arrivals / window if window > 0 else 0.0

    def stats(self) -> dict:
        end = self.stopped_at if not self.running else self.sim.now
        window = max(end - self.started_at, 1e-12)
        return {
            "clients": self.num_clients,
            "arrival_rate": self.arrival_rate,
            "empirical_rate": self.empirical_rate(),
            "arrivals": self.arrivals,
            "completions": self.completions,
            "throughput": self.completions / window,
            "dropped": self.dropped,
            "failures": self.failures,
            "in_flight": self.in_flight,
            "active_clients": int(np.count_nonzero(self.issued)),
            "latency": self.latency.snapshot(),
            "fingerprint": self.fingerprint,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<OpenLoopPopulation {self.name} clients={self.num_clients} "
            f"rate={self.arrival_rate} arrivals={self.arrivals}>"
        )
