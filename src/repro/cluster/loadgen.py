"""Background-load generators.

Fig. 3's independent variable is "number of hosts with background load": a
CPU-bound process competing with the application workers.  Under processor
sharing, one background process on a host halves a co-located worker's rate;
``intensity=2`` models two competing processes (worker gets a third), etc.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ProcessKilled
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host


class BackgroundLoad:
    """A persistent CPU-bound background workload on one host.

    :param intensity: number of concurrent CPU-bound processes.
    :param chunk: work units consumed per scheduling quantum; small enough
        that load starts/stops take effect promptly, large enough to keep
        the event count low.
    """

    def __init__(self, host: "Host", intensity: int = 1, chunk: float = 1.0) -> None:
        self.host = host
        self.intensity = intensity
        self.chunk = chunk
        self._processes: list[Process] = []
        self._running = False

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "BackgroundLoad":
        """Begin generating load; idempotent."""
        if self._running:
            return self
        self._running = True
        self.host.sim.trace.emit(
            "load", f"background load on {self.host.name}", intensity=self.intensity
        )
        for i in range(self.intensity):
            process = self.host.spawn(self._burn(), name=f"bgload{i}")
            self._processes.append(process)
        return self

    def stop(self) -> None:
        """Stop generating load; idempotent."""
        if not self._running:
            return
        self._running = False
        processes, self._processes = self._processes, []
        for process in processes:
            process.kill()
        self.host.sim.trace.emit("load", f"background load off {self.host.name}")

    def _burn(self):
        try:
            while self._running and self.host.up:
                yield self.host.execute(self.chunk)
        except ProcessKilled:
            raise
