"""Wide-area network model: multiple LAN sites behind WAN links.

The paper's future work (c): "extending the Winner load measurement and
process placement features for wide-area networks to enable CORBA based
distributed/parallel meta-computing over the WWW."  This module provides
the substrate: a network whose hosts belong to *sites*; traffic within a
site uses LAN latency/bandwidth, traffic between sites pays WAN costs
(tens of milliseconds, ~T1-era bandwidth).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigurationError, SimulationError
from repro.cluster.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class WideAreaNetwork(Network):
    """A network of LAN sites connected by WAN links.

    :param wan_latency: one-way latency between hosts of different sites.
    :param wan_bandwidth: bytes per second across site boundaries.
    """

    def __init__(
        self,
        sim: "Simulator",
        latency: float = 0.5e-3,
        bandwidth: float = 10e6,
        local_latency: float = 20e-6,
        wan_latency: float = 40e-3,
        wan_bandwidth: float = 0.2e6,
    ) -> None:
        super().__init__(
            sim, latency=latency, bandwidth=bandwidth, local_latency=local_latency
        )
        if wan_latency < latency or wan_bandwidth <= 0:
            raise SimulationError("WAN must be slower than the LAN")
        self.wan_latency = wan_latency
        self.wan_bandwidth = wan_bandwidth
        self._sites: dict[str, str] = {}

    def assign_site(self, host_name: str, site: str) -> None:
        self.host(host_name)  # validates
        self._sites[host_name] = site

    def site_of(self, host_name: str) -> str:
        try:
            return self._sites[host_name]
        except KeyError:
            raise ConfigurationError(
                f"host {host_name!r} has no site assignment"
            ) from None

    def same_site(self, a: str, b: str) -> bool:
        return self.site_of(a) == self.site_of(b)

    def sites(self) -> list[str]:
        return sorted(set(self._sites.values()))

    def hosts_of_site(self, site: str) -> list[str]:
        return sorted(h for h, s in self._sites.items() if s == site)

    def delay(self, src: str, dst: str, size: int) -> float:
        if src == dst:
            return self.local_latency
        if self._sites and not self.same_site(src, dst):
            return self.wan_latency + size / self.wan_bandwidth
        return self.latency + size / self.bandwidth
