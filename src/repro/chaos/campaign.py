"""The chaos campaign runner.

A campaign runs every (scenario, seed) cell of a matrix.  Each cell
deploys one full runtime (Winner + naming + checkpoint store + per-host
factories), runs the two paper workloads *concurrently* —

* a stateful accumulator behind a fault-tolerance proxy receiving a
  paced call stream (the §3 checkpoint/restart workload), and
* the §4 distributed Rosenbrock optimization over FT request proxies —

while the scenario injects its faults, then checks the invariants in
:mod:`repro.chaos.invariants` against what actually happened.  Runtime
configuration leans on the adaptive failure handling this package
exists to exercise: decorrelated-jitter backoff, a per-recovery
deadline, per-host circuit breakers and degraded-mode checkpointing.

:func:`breaker_ablation` is the controlled companion experiment: the
same flapping-host trap run with the fixed-backoff/no-breaker policy
and with breakers on, showing the breaker pays for itself in avoided
recovery attempts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.bench.ftbench import AccumulatorImpl, ns as acc_ns
from repro.chaos.invariants import (
    check_report,
    counter_total,
    histogram_max,
    stale_primary_violations,
)
from repro.chaos.scenarios import (
    ChaosScenario,
    ScenarioEnv,
    get_scenario,
    scenario_names,
)
from repro.cluster.failures import FailurePlan
from repro.core import Runtime, RuntimeConfig
from repro.errors import SystemException
from repro.ft import FtPolicy
from repro.obs.slo import DEFAULT_SLOS, evaluate_slos, export_slo_metrics
from repro.opt import (
    DecomposedRosenbrock,
    DistributedRosenbrockOptimizer,
    RosenbrockWorkerServant,
    RosenbrockWorkerStub,
    WorkerSettings,
)
from repro.orb.core import OrbConfig
from repro.services.naming.names import to_name
from repro.sim import all_of


@dataclass
class CampaignConfig:
    """Shape of one campaign matrix."""

    seeds: Sequence[int] = (11, 12, 13, 14, 15)
    #: scenario names to run; empty = the whole catalogue.
    scenarios: Sequence[str] = ()
    num_hosts: int = 6
    #: length of the fault window (simulated seconds).
    horizon: float = 4.0
    acc_calls: int = 24
    call_work: float = 0.02
    with_optimizer: bool = True
    opt_dim: int = 8
    manager_iterations: int = 3
    worker_iterations: int = 400
    recovery_deadline: float = 6.0
    request_timeout: float = 0.8
    settle: float = 1.0
    #: checkpoint fast-path knobs under chaos: "sync" is the paper path;
    #: "pipelined" (and deltas) must satisfy the same invariants.
    checkpoint_mode: str = "sync"
    checkpoint_deltas: bool = False
    #: resolve fast path under chaos: the cache must never serve a
    #: selection on a dead host (the no-stale-resolve invariant).
    resolve_cache: bool = False
    #: fault-tolerance mode for the *accumulator* proxy: "checkpoint"
    #: (the paper path, default), "warm-passive" or "active".  The
    #: optimizer proxies always stay on the checkpoint path, so every
    #: cell exercises both designs side by side.
    ft_mode: str = "checkpoint"
    replication_factor: int = 3
    #: SLO gating: failures are always *recorded* per cell (and exported
    #: as ``slo_ok`` gauges); with ``enforce_slos`` they also count as
    #: invariant violations and fail the campaign.
    enforce_slos: bool = False

    @classmethod
    def fast(cls, seeds: Sequence[int] = (11, 12, 13)) -> "CampaignConfig":
        """A trimmed matrix for CI: same scenarios, smaller workload."""
        return cls(
            seeds=tuple(seeds),
            horizon=2.5,
            acc_calls=12,
            manager_iterations=2,
            worker_iterations=250,
        )

    def scenario_list(self) -> list[ChaosScenario]:
        names = list(self.scenarios) or scenario_names()
        return [get_scenario(name) for name in names]

    def policy(self) -> FtPolicy:
        return FtPolicy(
            backoff="decorrelated-jitter",
            retry_backoff=0.05,
            backoff_multiplier=3.0,
            backoff_cap=0.8,
            recovery_deadline=self.recovery_deadline,
            max_recover_attempts=10,
            max_call_retries=6,
            breaker_failure_threshold=2,
            breaker_reset_timeout=1.0,
            breaker_half_open_max=1,
            on_checkpoint_failure="degraded",
            checkpoint_buffer_limit=16,
            checkpoint_mode=self.checkpoint_mode,
            checkpoint_deltas=self.checkpoint_deltas,
        )

    def acc_policy(self) -> FtPolicy:
        """The accumulator proxy's policy: the base policy, switched to
        the configured replication mode (with a failure detector so a
        suspected primary is promoted between calls too)."""
        policy = self.policy()
        if self.ft_mode == "checkpoint":
            return policy
        return replace(
            policy,
            ft_mode=self.ft_mode,
            replication_factor=self.replication_factor,
            detector_interval=0.25,
            detector_suspect_after=2,
        )


@dataclass
class ScenarioReport:
    """Everything measured in one (scenario, seed) cell."""

    scenario: str
    seed: int
    expects: dict
    sim_seconds: float = 0.0
    # accumulator stream
    acc_ok: int = 0
    acc_failed: int = 0
    acc_final_total: Optional[float] = None
    acc_errors: dict = field(default_factory=dict)
    # optimizer
    opt_enabled: bool = True
    opt_fun: Optional[float] = None
    opt_converged: Optional[bool] = None
    opt_error: Optional[str] = None
    # recovery coordinator
    recoveries: int = 0
    failed_recoveries: int = 0
    coalesced: int = 0
    attempts_total: int = 0
    factory_failures: int = 0
    breaker_skips: int = 0
    deadline_failures: int = 0
    recovery_time_total: float = 0.0
    recovery_max_seconds: float = 0.0
    recovery_deadline: Optional[float] = None
    # breakers
    breaker_snapshot: list = field(default_factory=list)
    metric_breaker_opens: float = 0.0
    metric_breaker_rejections: float = 0.0
    # checkpoints
    checkpoints_buffered: int = 0
    checkpoints_flushed: int = 0
    restores_from_buffer: float = 0.0
    checkpoint_buffer_depth_end: int = 0
    # checkpoint fast path
    checkpoints_skipped: int = 0
    deltas_sent: int = 0
    fulls_sent: int = 0
    delta_fallbacks: int = 0
    pipeline_stalls: int = 0
    checkpoint_pipeline_depth_end: int = 0
    # resolve fast path
    resolve_cache_enabled: bool = False
    resolve_cache_hits: int = 0
    resolve_cache_misses: int = 0
    resolve_stale_served: int = 0
    # replication modes (accumulator proxy)
    ft_mode: str = "checkpoint"
    promotions: int = 0
    lead_changes: int = 0
    replacements: int = 0
    replicas_retired: int = 0
    state_ships: int = 0
    duplicates_suppressed: int = 0
    stale_primary: list = field(default_factory=list)
    # SLOs (evaluated from the metrics registry at harvest time)
    slo_failures: list = field(default_factory=list)
    # plumbing
    drop_listener_errors: int = 0
    chaos_events: list = field(default_factory=list)
    violations: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return dict(self.__dict__)


# -- one cell ------------------------------------------------------------------


def run_scenario(
    scenario: ChaosScenario | str,
    seed: int,
    config: Optional[CampaignConfig] = None,
) -> ScenarioReport:
    """Run one scenario under one seed and check every invariant."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    config = config or CampaignConfig()
    policy = config.policy()
    runtime = Runtime(
        RuntimeConfig(
            num_hosts=config.num_hosts,
            seed=seed,
            winner_interval=0.25,
            auto_heal_delay=0.5,
            checkpoint_processing_work=0.002,
            breakers=True,
            recovery_policy=policy,
            resolve_cache=config.resolve_cache,
            orb=OrbConfig(request_timeout=config.request_timeout),
        )
    ).start()
    sim = runtime.sim

    worker_hosts = [
        runtime.cluster.host(i).name
        for i in range(1, min(5, config.num_hosts))
    ]
    report = ScenarioReport(
        scenario=scenario.name,
        seed=seed,
        expects=dict(scenario.expects),
        opt_enabled=config.with_optimizer,
        recovery_deadline=policy.recovery_deadline,
        ft_mode=config.ft_mode,
    )

    # deploy the workload servants ------------------------------------------------
    runtime.register_type("BenchAccumulator", AccumulatorImpl)
    acc_iors = runtime.run(
        runtime.deploy_group(
            "chaos-acc.service", "BenchAccumulator", [worker_hosts[0]]
        )
    )
    acc_proxy = runtime.ft_proxy(
        acc_ns.BenchAccumulatorStub,
        acc_iors[0],
        key="chaos-acc",
        type_name="BenchAccumulator",
        group_name="chaos-acc.service",
        policy=config.acc_policy(),
    )
    contexts = [acc_proxy._ft]

    problem = None
    opt_references = []
    if config.with_optimizer:
        problem = DecomposedRosenbrock(config.opt_dim, 2)
        settings = WorkerSettings(
            real_iteration_cap=48, work_per_eval_per_dim=2e-5
        )
        runtime.register_type(
            "RosenbrockWorker",
            lambda: RosenbrockWorkerServant(problem, settings),
        )
        runtime.run(
            runtime.deploy_group(
                "workers.service", "RosenbrockWorker", worker_hosts
            )
        )

    runtime.settle(config.settle)

    # Replication modes provision their group BEFORE the faults start, so
    # the scenarios can aim at the actual primary / standbys.
    primary_host = worker_hosts[0]
    standby_hosts = list(worker_hosts[1:])
    if config.ft_mode != "checkpoint":

        def provision():
            yield acc_proxy.provision_now()

        runtime.run(provision())
        group = acc_proxy._ft.group
        primary_host = group.members[0].ior.host
        standby_hosts = [m.ior.host for m in group.members[1:]]

    # install the scenario's faults over [now, now + horizon] --------------------
    env = ScenarioEnv(
        runtime=runtime,
        injector=runtime.failures,
        start=sim.now,
        horizon=config.horizon,
        service_host=runtime.cluster.host(0).name,
        worker_hosts=worker_hosts,
        primary_host=primary_host,
        standby_hosts=standby_hosts,
    )
    scenario.install(env)
    drain_until = env.start + config.horizon + 0.5

    # the two workloads, concurrently --------------------------------------------
    acc_out: dict = {}
    opt_out: dict = {}

    def acc_client():
        ok = failed = 0
        errors: dict[str, int] = {}
        gap = config.horizon / max(1, config.acc_calls)
        calls = 0
        # Keep calling through the fault window and a little past it, so
        # late heals are exercised and degraded-mode buffers get their
        # chance to flush into the recovered store.
        while calls < config.acc_calls or sim.now < drain_until:
            try:
                yield acc_proxy.add(1.0, config.call_work)
                ok += 1
            # analysis: ignore[EXC002]: chaos client counts every failure type into the error histogram
            except Exception as exc:
                failed += 1
                errors[type(exc).__name__] = errors.get(type(exc).__name__, 0) + 1
            calls += 1
            yield sim.timeout(gap * 0.6)
        final = None
        for _ in range(3):  # the final read retries around a late fault
            try:
                final = yield acc_proxy.total()
                break
            # analysis: ignore[EXC002]: chaos client counts every failure type into the error histogram
            except Exception as exc:
                errors[type(exc).__name__] = errors.get(type(exc).__name__, 0) + 1
                yield sim.timeout(0.3)
        acc_out.update(ok=ok, failed=failed, final=final, errors=errors)

    def opt_client():
        naming = runtime.naming_stub(0)
        assert problem is not None
        try:
            for worker_id in range(problem.num_workers):
                ior = yield naming.resolve(to_name("workers.service"))
                proxy = runtime.ft_proxy(
                    RosenbrockWorkerStub,
                    ior,
                    key=f"chaos-w{worker_id}",
                    type_name="RosenbrockWorker",
                    group_name="workers.service",
                )
                opt_references.append(proxy)
                contexts.append(proxy._ft)
            optimizer = DistributedRosenbrockOptimizer(
                runtime.orb(0),
                problem,
                opt_references,
                worker_iterations=config.worker_iterations,
                manager_iterations=config.manager_iterations,
                seed=seed,
            )
            result = yield from optimizer.optimize()
            opt_out.update(fun=float(result.fun), converged=bool(result.converged))
        # analysis: ignore[EXC002]: outcome (incl. the error) is recorded; the scenario invariants judge it
        except Exception as exc:
            opt_out.update(error=f"{type(exc).__name__}: {exc}")

    def drive():
        procs = [sim.spawn(acc_client(), name="chaos-acc-client")]
        if config.with_optimizer:
            procs.append(sim.spawn(opt_client(), name="chaos-opt-client"))
        yield all_of(sim, procs)
        # Shutdown drain, in two steps.  First settle any pipelined
        # persists still in flight (a failed one lands in the degraded
        # buffer) ...
        for proxy in [acc_proxy, *opt_references]:
            if proxy._ft.inflight_checkpoints or proxy._ft.group is not None:
                yield proxy.drain_checkpoints()
        # ... then: a workload that finished *during* the storage
        # outage still holds buffered checkpoints; one more checkpoint
        # attempt flushes them now that the store has healed.
        for proxy in [acc_proxy, *opt_references]:
            if proxy._ft.buffered_checkpoints:
                try:
                    yield proxy.checkpoint_now()
                # analysis: ignore[EXC003]: store still down — buffers stay and the stranded-buffer invariant reports them
                except SystemException:
                    pass

    started = sim.now
    runtime.run(drive())
    report.sim_seconds = sim.now - started

    # harvest ---------------------------------------------------------------------
    report.acc_ok = acc_out.get("ok", 0)
    report.acc_failed = acc_out.get("failed", 0)
    report.acc_final_total = acc_out.get("final")
    report.acc_errors = acc_out.get("errors", {})
    report.opt_fun = opt_out.get("fun")
    report.opt_converged = opt_out.get("converged")
    report.opt_error = opt_out.get("error")

    coordinator = runtime.coordinator(0)
    report.recoveries = coordinator.recoveries
    report.failed_recoveries = coordinator.failed_recoveries
    report.coalesced = coordinator.coalesced
    report.attempts_total = coordinator.attempts_total
    report.factory_failures = coordinator.factory_failures
    report.breaker_skips = coordinator.breaker_skips
    report.deadline_failures = coordinator.deadline_failures
    report.recovery_time_total = coordinator.recovery_time_total

    metrics = runtime.obs.metrics
    report.recovery_max_seconds = histogram_max(metrics, "ft_recovery_seconds")
    report.breaker_snapshot = runtime.breakers.snapshot()
    report.metric_breaker_opens = counter_total(
        metrics, "ft_breaker_transitions_total", to="open"
    )
    report.metric_breaker_rejections = counter_total(
        metrics, "ft_breaker_rejections_total"
    )
    report.checkpoints_buffered = sum(c.checkpoints_buffered for c in contexts)
    report.checkpoints_flushed = sum(c.checkpoints_flushed for c in contexts)
    report.restores_from_buffer = counter_total(
        metrics, "ft_restores_from_buffer_total"
    )
    report.checkpoint_buffer_depth_end = sum(
        len(c.buffered_checkpoints) for c in contexts
    )
    report.checkpoints_skipped = sum(c.checkpoints_skipped for c in contexts)
    report.deltas_sent = sum(c.deltas_sent for c in contexts)
    report.fulls_sent = sum(c.fulls_sent for c in contexts)
    report.delta_fallbacks = sum(c.delta_fallbacks for c in contexts)
    report.pipeline_stalls = sum(c.pipeline_stalls for c in contexts)
    report.checkpoint_pipeline_depth_end = sum(
        c.pipeline_depth for c in contexts
    )
    naming = runtime.naming_root
    if naming is not None and naming.resolve_cache is not None:
        report.resolve_cache_enabled = True
        report.resolve_cache_hits = naming.resolve_cache.stats.hits
        report.resolve_cache_misses = naming.resolve_cache.stats.misses
        report.resolve_stale_served = naming.resolve_cache.stats.stale_served
    group = acc_proxy._ft.group
    if group is not None:
        snap = group.snapshot()
        report.promotions = snap["promotions"]
        report.lead_changes = snap["lead_changes"]
        report.replacements = snap["replacements"]
        report.replicas_retired = snap["retired"]
        report.state_ships = (
            snap["state_ships_full"] + snap["state_ships_delta"]
        )
    report.duplicates_suppressed = sum(
        m.duplicates_suppressed for m in runtime._replica_members
    )
    report.stale_primary = stale_primary_violations(runtime)
    slo_results = evaluate_slos(metrics.snapshot(), DEFAULT_SLOS)
    export_slo_metrics(metrics, slo_results)
    report.slo_failures = [
        f"{r.spec.name}: {r.detail}" for r in slo_results if not r.ok
    ]
    report.drop_listener_errors = runtime.network.drop_listener_errors
    report.chaos_events = list(runtime.failures.chaos_events) + [
        {"kind": "crash-restart", "host": p.host, "at": p.crash_at,
         "restart_after": p.restart_after}
        for p in runtime.failures.injected
    ]
    report.violations = check_report(report)
    if config.enforce_slos:
        report.violations += [f"slo: {f}" for f in report.slo_failures]
    return report


# -- the matrix ----------------------------------------------------------------


@dataclass
class CampaignResult:
    reports: list[ScenarioReport]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.reports)

    @property
    def violations(self) -> list[str]:
        return [
            f"{r.scenario}/seed={r.seed}: {v}"
            for r in self.reports
            for v in r.violations
        ]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "cells": len(self.reports),
            "reports": [r.to_dict() for r in self.reports],
        }


def run_campaign(
    config: Optional[CampaignConfig] = None,
    progress=None,
) -> CampaignResult:
    """Run the full scenario × seed matrix of ``config``."""
    config = config or CampaignConfig()
    reports = []
    for scenario in config.scenario_list():
        for seed in config.seeds:
            report = run_scenario(scenario, seed, config)
            reports.append(report)
            if progress is not None:
                progress(report)
    return CampaignResult(reports)


def export_campaign_metrics(result: CampaignResult, registry) -> None:
    """Publish per-cell campaign results through a metrics registry (the
    same machine-readable surface the runtime's exporters consume)."""
    for r in result.reports:
        labels = {"scenario": r.scenario, "seed": r.seed}
        registry.gauge("chaos_invariant_violations", **labels).set(
            len(r.violations)
        )
        registry.gauge("chaos_acc_ok_calls", **labels).set(r.acc_ok)
        registry.gauge("chaos_acc_failed_calls", **labels).set(r.acc_failed)
        registry.gauge("chaos_recoveries", **labels).set(r.recoveries)
        registry.gauge("chaos_recovery_attempts", **labels).set(r.attempts_total)
        registry.gauge("chaos_recovery_max_seconds", **labels).set(
            r.recovery_max_seconds
        )
        registry.gauge("chaos_breaker_opens", **labels).set(
            r.metric_breaker_opens
        )
        registry.gauge("chaos_checkpoints_buffered", **labels).set(
            r.checkpoints_buffered
        )
        registry.gauge("chaos_checkpoints_flushed", **labels).set(
            r.checkpoints_flushed
        )
        registry.gauge("chaos_checkpoint_deltas", **labels).set(r.deltas_sent)
        registry.gauge("chaos_checkpoints_skipped", **labels).set(
            r.checkpoints_skipped
        )
        registry.gauge("chaos_pipeline_stalls", **labels).set(
            r.pipeline_stalls
        )
        registry.gauge("chaos_resolve_cache_hits", **labels).set(
            r.resolve_cache_hits
        )
        registry.gauge("chaos_resolve_stale_served", **labels).set(
            r.resolve_stale_served
        )
        registry.gauge("chaos_slo_failures", **labels).set(
            len(r.slo_failures)
        )
        registry.gauge("chaos_promotions", **labels).set(r.promotions)
        registry.gauge("chaos_replacements", **labels).set(r.replacements)
        registry.gauge("chaos_stale_primary_hits", **labels).set(
            len(r.stale_primary)
        )


# -- the breaker ablation -------------------------------------------------------


@dataclass
class AblationReport:
    mode: str
    recoveries: int
    failed_recoveries: int
    attempts_total: int
    factory_failures: int
    breaker_skips: int
    recovery_time_total: float
    placements_on_flapper: int
    acc_ok: int
    acc_failed: int
    final_total: Optional[float]
    state_correct: bool

    def to_dict(self) -> dict:
        return dict(self.__dict__)

    @property
    def wasted_attempts(self) -> int:
        """Recovery attempts beyond the one per successful recovery."""
        return self.attempts_total - self.recoveries


def breaker_ablation(
    seed: int = 7, calls: int = 40, call_work: float = 0.02
) -> list[AblationReport]:
    """Fixed-backoff baseline vs. breakers, same flapping-host trap.

    One host flaps throughout the run while the accumulator's current
    host is killed (and restarted) once a second.  Every recovery must
    pick a factory host; the baseline keeps walking into the flapper —
    paying dead round trips when it is down and doomed placements when
    it is up — while the breaker configuration learns to route around
    it.  Returns one report per mode; the bench asserts the breaker
    strictly reduces wasted recovery attempts.
    """
    reports = []
    for mode in ("fixed", "breakers"):
        policy = FtPolicy(
            backoff="fixed" if mode == "fixed" else "decorrelated-jitter",
            retry_backoff=0.1,
            backoff_cap=0.8,
            max_recover_attempts=10,
            max_call_retries=6,
            breaker_failure_threshold=2,
            breaker_reset_timeout=2.0,
        )
        runtime = Runtime(
            RuntimeConfig(
                num_hosts=4,
                seed=seed,
                winner_interval=0.25,
                naming_strategy="round-robin",
                auto_heal_delay=0.15,
                checkpoint_processing_work=0.002,
                breakers=mode == "breakers",
                recovery_policy=policy,
            )
        ).start()
        sim = runtime.sim
        flapper = runtime.cluster.host(2).name
        runtime.register_type("BenchAccumulator", AccumulatorImpl)
        runtime.settle(0.6)  # lets the async factory binds land first

        # Recoveries must land on real worker hosts, so take the service
        # host's factory out of the group: chaos-testing never touches
        # ws00, and a servant recovered there could no longer be killed.
        def drop_service_factory():
            naming = runtime.naming_stub(0)
            group = to_name(runtime.config.factory_group)
            iors = yield naming.resolve_all(group)
            for ior in iors:
                if ior.host == runtime.cluster.host(0).name:
                    yield naming.unbind_service(group, ior)

        runtime.run(drop_service_factory())

        ior = runtime.orb(1).poa.activate(AccumulatorImpl())
        proxy = runtime.ft_proxy(
            acc_ns.BenchAccumulatorStub,
            ior,
            key="abl-acc",
            type_name="BenchAccumulator",
        )

        # The trap: host 2 flaps for the whole run ...
        runtime.failures.schedule_flapping(
            flapper, at=sim.now + 0.3, cycles=6, down_time=0.35, up_time=0.65
        )

        # ... while the accumulator's current host dies once a second.
        def kill_current():
            host_name = proxy.ior.host
            if host_name == runtime.cluster.host(0).name:
                return  # the coordinator host is off-limits
            host = runtime.cluster.host(host_name)
            if host.up and host_name != flapper:
                host.crash()
                sim.schedule(0.4, host.restart)
            # A flapper placement needs no extra kill: the flap schedule
            # will take it down.

        for k in range(6):
            sim.schedule_at(sim.now + 0.5 + k * 1.0, kill_current)

        placements: list[str] = []

        def client():
            ok = failed = 0
            for _ in range(calls):
                try:
                    yield proxy.add(1.0, call_work)
                    ok += 1
                # analysis: ignore[EXC002]: ablation client records any failure shape as a failed call
                except Exception:
                    failed += 1
                if not placements or placements[-1] != proxy.ior.host:
                    placements.append(proxy.ior.host)
                yield sim.timeout(0.12)
            try:
                final = yield proxy.total()
            # analysis: ignore[EXC002]: ablation client records any failure shape as a failed call
            except Exception:
                final = None
            return ok, failed, final

        ok, failed, final = runtime.run(client())
        coordinator = runtime.coordinator(0)
        reports.append(
            AblationReport(
                mode=mode,
                recoveries=coordinator.recoveries,
                failed_recoveries=coordinator.failed_recoveries,
                attempts_total=coordinator.attempts_total,
                factory_failures=coordinator.factory_failures,
                breaker_skips=coordinator.breaker_skips,
                recovery_time_total=coordinator.recovery_time_total,
                placements_on_flapper=sum(1 for h in placements if h == flapper),
                acc_ok=ok,
                acc_failed=failed,
                final_total=final,
                state_correct=final is not None and abs(final - ok) < 1e-9,
            )
        )
    return reports
