"""Chaos campaigns: composed fault scenarios + invariant checking.

The paper demonstrates fault tolerance against one fault shape — a clean
host crash.  This package stress-tests the same runtime against the
fault *taxonomy* real deployments see (partitions, latency surges, gray
hosts, flapping, storage outages, message loss), all deterministic
under seeded randomness:

* :mod:`repro.chaos.scenarios` — the scenario catalogue;
* :mod:`repro.chaos.campaign` — the matrix runner (scenario × seed)
  and the breaker-vs-fixed-backoff ablation;
* :mod:`repro.chaos.invariants` — what must hold after every run;
* ``python -m repro.chaos`` — the CLI the CI chaos job runs.
"""

from repro.chaos.campaign import (
    AblationReport,
    CampaignConfig,
    CampaignResult,
    ScenarioReport,
    breaker_ablation,
    export_campaign_metrics,
    run_campaign,
    run_scenario,
)
from repro.chaos.invariants import check_report
from repro.chaos.scenarios import (
    SCENARIOS,
    ChaosScenario,
    ScenarioEnv,
    get_scenario,
    scenario_names,
)

__all__ = [
    "AblationReport",
    "CampaignConfig",
    "CampaignResult",
    "ChaosScenario",
    "SCENARIOS",
    "ScenarioEnv",
    "ScenarioReport",
    "breaker_ablation",
    "check_report",
    "export_campaign_metrics",
    "get_scenario",
    "run_campaign",
    "run_scenario",
    "scenario_names",
]
