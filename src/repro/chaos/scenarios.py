"""The chaos scenario catalogue.

Each scenario is a named, deterministic composition of fault injections
(see :class:`repro.cluster.FailureInjector`) installed over a fixed
stretch of simulated time while the campaign workload runs.  Scenarios
only *schedule* faults — everything fires off the simulator's seeded
clock, so a (scenario, seed) cell replays bit-identically.

Timing is expressed as fractions of the scenario window so the same
catalogue works for the quick CI campaign and the full bench matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, TYPE_CHECKING

from repro.cluster.failures import FailurePlan
from repro.winner.protocol import SYSTEM_MANAGER_PORT

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.failures import FailureInjector
    from repro.core.runtime import Runtime


@dataclass
class ScenarioEnv:
    """Everything a scenario may touch when installing its faults.

    ``start``/``horizon`` delimit the fault window (absolute simulated
    seconds); the workload keeps running a little past ``start + horizon``
    so late heals and checkpoint-buffer flushes are observed.
    """

    runtime: "Runtime"
    injector: "FailureInjector"
    start: float
    horizon: float
    #: the host running naming/store/Winner *and* the client — never a
    #: fault target (a real operator does not chaos-test the coordinator).
    service_host: str
    #: hosts carrying the accumulator and optimizer servants, in
    #: deployment order (the accumulator starts on ``worker_hosts[0]``).
    worker_hosts: list[str] = field(default_factory=list)
    #: the accumulator's current primary host.  In the replication modes
    #: this is the provisioned group lead; in checkpoint mode it falls
    #: back to ``worker_hosts[0]`` (where the servant was deployed).
    primary_host: str = ""
    #: the group's standby hosts (replication modes), else the remaining
    #: worker hosts — so every scenario is meaningful in every ft_mode.
    standby_hosts: list[str] = field(default_factory=list)

    def at(self, fraction: float) -> float:
        """Absolute time ``fraction`` of the way into the fault window."""
        return self.start + fraction * self.horizon


@dataclass(frozen=True)
class ChaosScenario:
    name: str
    description: str
    install: Callable[[ScenarioEnv], None]
    #: extra invariant expectations, e.g. {"degraded_flush": True}.
    expects: dict = field(default_factory=dict)


#: the scenario registry, in definition order.
SCENARIOS: dict[str, ChaosScenario] = {}


def _scenario(name: str, description: str, **expects):
    def register(install: Callable[[ScenarioEnv], None]) -> ChaosScenario:
        scenario = ChaosScenario(name, description, install, dict(expects))
        SCENARIOS[name] = scenario
        return scenario

    return register


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown chaos scenario {name!r} (known: {known})")


def scenario_names() -> list[str]:
    return list(SCENARIOS)


# -- the catalogue ------------------------------------------------------------


@_scenario("baseline", "no faults; the invariant control cell")
def _baseline(env: ScenarioEnv) -> None:
    pass


@_scenario(
    "crash-restart",
    "two worker hosts crash mid-run and restart (the paper's fault model)",
)
def _crash_restart(env: ScenarioEnv) -> None:
    down = min(0.6, 0.15 * env.horizon)
    env.injector.schedule(
        FailurePlan(env.worker_hosts[0], env.at(0.25), restart_after=down)
    )
    env.injector.schedule(
        FailurePlan(env.worker_hosts[1], env.at(0.55), restart_after=down)
    )


@_scenario(
    "partition-heal",
    "the accumulator's host is partitioned from the service host, then heals",
)
def _partition_heal(env: ScenarioEnv) -> None:
    env.injector.schedule_partition(
        env.service_host,
        env.worker_hosts[0],
        at=env.at(0.2),
        heal_after=0.2 * env.horizon,
    )


@_scenario(
    "latency-spike",
    "every network path slows 4x with added jitter for part of the run",
)
def _latency_spike(env: ScenarioEnv) -> None:
    env.injector.schedule_latency_spike(
        at=env.at(0.2),
        duration=0.35 * env.horizon,
        factor=4.0,
        extra=0.015,
        jitter=0.005,
    )


@_scenario(
    "gray-host",
    "the accumulator's host silently degrades to 8% CPU speed (gray failure)",
)
def _gray_host(env: ScenarioEnv) -> None:
    env.injector.schedule_gray_host(
        env.worker_hosts[0],
        at=env.at(0.2),
        factor=0.08,
        duration=0.4 * env.horizon,
    )


@_scenario(
    "flapping",
    "one worker host crash/restarts repeatedly (three quick cycles)",
)
def _flapping(env: ScenarioEnv) -> None:
    env.injector.schedule_flapping(
        env.worker_hosts[1],
        at=env.at(0.15),
        cycles=3,
        down_time=min(0.3, 0.08 * env.horizon),
        up_time=min(0.45, 0.12 * env.horizon),
    )


@_scenario(
    "primary-crash",
    "the accumulator's current primary host crashes mid-stream and later "
    "restarts; replication modes must promote/mask, checkpoint must recover",
    primary_failover=True,
)
def _primary_crash(env: ScenarioEnv) -> None:
    down = min(0.6, 0.15 * env.horizon)
    env.injector.schedule(
        FailurePlan(env.primary_host, env.at(0.35), restart_after=down)
    )


@_scenario(
    "standby-crash",
    "a standby crashes mid-state-transfer (ships are in flight on every "
    "call); the group must retire it and backfill without failing a call",
    standby_loss=True,
)
def _standby_crash(env: ScenarioEnv) -> None:
    target = (env.standby_hosts or env.worker_hosts[1:])[0]
    down = min(0.6, 0.15 * env.horizon)
    env.injector.schedule(
        FailurePlan(target, env.at(0.3), restart_after=down)
    )


@_scenario(
    "primary-partition",
    "the primary is partitioned from the client/service host, then heals; "
    "a promoted standby must take over and the healed primary must never "
    "see a post-promotion request",
    primary_failover=True,
)
def _primary_partition(env: ScenarioEnv) -> None:
    env.injector.schedule_partition(
        env.service_host,
        env.primary_host,
        at=env.at(0.25),
        heal_after=0.25 * env.horizon,
    )


@_scenario(
    "flapping-primary",
    "the primary host crash/restarts repeatedly; every new incarnation is "
    "a different endpoint, so stale routing would be caught immediately",
    primary_failover=True,
)
def _flapping_primary(env: ScenarioEnv) -> None:
    env.injector.schedule_flapping(
        env.primary_host,
        at=env.at(0.2),
        cycles=3,
        down_time=min(0.3, 0.08 * env.horizon),
        up_time=min(0.45, 0.12 * env.horizon),
    )


@_scenario(
    "store-outage",
    "the checkpoint store rejects every request for a stretch; proxies "
    "must buffer checkpoints and flush on recovery",
    degraded_flush=True,
)
def _store_outage(env: ScenarioEnv) -> None:
    store = env.runtime.store_servant
    assert store is not None
    env.injector.schedule_store_outage(
        store, at=env.at(0.2), duration=0.3 * env.horizon
    )


@_scenario(
    "loss-burst",
    "35% of Winner load-report datagrams are dropped for most of the run",
)
def _loss_burst(env: ScenarioEnv) -> None:
    env.injector.schedule_loss_burst(
        at=env.at(0.1),
        duration=0.6 * env.horizon,
        rate=0.35,
        ports={SYSTEM_MANAGER_PORT},
    )
