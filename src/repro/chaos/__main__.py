"""CLI for the chaos campaign: ``python -m repro.chaos``.

Runs the scenario × seed matrix, prints one line per cell and a final
verdict, optionally writes the machine-readable result, and exits
non-zero when any invariant was violated — the contract the CI chaos
job relies on.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.chaos.scenarios import scenario_names


def _parse_seeds(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(",") if part.strip())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run the chaos campaign matrix and check invariants.",
    )
    parser.add_argument(
        "--scenarios",
        default=",".join(scenario_names()),
        help="comma-separated scenario names (default: all)",
    )
    parser.add_argument(
        "--seeds",
        default="11,12,13",
        type=_parse_seeds,
        help="comma-separated seeds (default: 11,12,13)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="trimmed workload (CI shape): shorter horizon, fewer calls",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the full campaign result as JSON",
    )
    parser.add_argument(
        "--checkpoint-mode",
        choices=("sync", "pipelined"),
        default="sync",
        help="checkpoint execution mode for every proxy (default: sync)",
    )
    parser.add_argument(
        "--deltas",
        action="store_true",
        help="ship delta checkpoints instead of full states",
    )
    parser.add_argument(
        "--ft-mode",
        choices=("checkpoint", "warm-passive", "active"),
        default="checkpoint",
        help="fault-tolerance mode for the accumulator proxy: the paper's "
        "checkpoint/restart (default) or a first-class replication mode",
    )
    parser.add_argument(
        "--resolve-cache",
        action="store_true",
        help="enable the naming resolve cache (checks the no-stale-resolve "
        "invariant under chaos)",
    )
    parser.add_argument(
        "--enforce-slos",
        action="store_true",
        help="count SLO failures (repro.obs.slo.DEFAULT_SLOS) as invariant "
        "violations instead of just recording them",
    )
    args = parser.parse_args(argv)

    scenarios = tuple(s for s in args.scenarios.split(",") if s.strip())
    config = CampaignConfig.fast(args.seeds) if args.fast else CampaignConfig(
        seeds=args.seeds
    )
    config.scenarios = scenarios
    config.checkpoint_mode = args.checkpoint_mode
    config.checkpoint_deltas = args.deltas
    config.resolve_cache = args.resolve_cache
    config.enforce_slos = args.enforce_slos
    config.ft_mode = args.ft_mode

    def progress(report):
        status = "ok" if report.ok else "FAIL"
        print(
            f"[{status:>4}] {report.scenario:<16} seed={report.seed:<4} "
            f"acc={report.acc_ok}/{report.acc_ok + report.acc_failed} "
            f"recoveries={report.recoveries} "
            f"buffered={report.checkpoints_buffered} "
            + (
                f"promotions={report.promotions} "
                f"replacements={report.replacements} "
                if report.ft_mode != "checkpoint"
                else ""
            )
            + f"sim={report.sim_seconds:.2f}s"
        )
        for violation in report.violations:
            print(f"       violation: {violation}")

    result = run_campaign(config, progress=progress)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=2, default=str)
        print(f"wrote {args.json}")

    cells = len(result.reports)
    bad = sum(1 for r in result.reports if not r.ok)
    print(
        f"\nchaos campaign: {cells} cells "
        f"({len(scenarios)} scenarios x {len(config.seeds)} seeds), "
        f"{cells - bad} passed, {bad} failed"
    )
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
