"""Invariants every chaos run must satisfy, whatever faults were injected.

The campaign treats these as the system's contract under failure:

* **liveness** — the accumulator stream and the distributed optimization
  both run to completion (the optimizer converges to a finite value);
* **exactly-once, client's view** — the accumulator's final total equals
  the number of *acknowledged* ``add`` calls: a call that raised must not
  have left a surviving update, a call that returned must have left
  exactly one (checkpoint/restart recovery restores the last
  acknowledged state, so neither retries nor restarts may double-count);
* **bounded recovery** — no successful recovery took longer than the
  policy's ``recovery_deadline``;
* **consistent breaker accounting** — the breaker objects' own counters
  agree with what they published through the metrics registry;
* **clean plumbing** — no network drop listener raised, no checkpoint
  remained stranded in a degraded-mode buffer at the end of the run.

Each check returns violation strings; an empty list means the run passed.
"""

from __future__ import annotations

from math import isfinite
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.campaign import ScenarioReport

#: slack on the recovery deadline: the coordinator checks the deadline
#: *between* attempts, so the last attempt may finish slightly past it.
DEADLINE_SLACK = 0.25


def counter_total(registry, name: str, **labels) -> float:
    """Sum every counter called ``name`` whose labels include ``labels``."""
    total = 0.0
    for instrument in registry:
        if instrument.kind != "counter" or instrument.name != name:
            continue
        have = instrument.label_dict
        if all(have.get(k) == str(v) for k, v in labels.items()):
            total += instrument.value_repr()
    return total


def histogram_max(registry, name: str) -> float:
    """The largest observation across every histogram called ``name``."""
    largest = 0.0
    for instrument in registry:
        if instrument.kind == "histogram" and instrument.name == name:
            if instrument.count:
                largest = max(largest, instrument.max)
    return largest


def stale_primary_violations(runtime) -> list[str]:
    """The ``no-stale-primary`` audit over a finished runtime.

    For every replica a group ever retired, compare the highest request
    sequence number the replica actually *received* against the sequence
    the group had issued by the moment it was retired.  A higher number
    means a request created after failover was still delivered to the
    dead incarnation — i.e. a resolve/connection cache kept routing to
    the old primary after promotion.
    """
    wrappers = {
        member.ior: member
        for member in runtime._replica_members
        if member.ior is not None
    }
    violations = []
    for context in runtime._ft_contexts:
        group = getattr(context, "group", None)
        if group is None:
            continue
        for ior, retired_at, seq_at_retire in group.retired:
            wrapper = wrappers.get(ior)
            if wrapper is None:
                continue
            if wrapper.last_request_seq > seq_at_retire:
                violations.append(
                    f"group {group.group_id}: replica {ior.host}"
                    f"#{ior.incarnation} (retired at {retired_at:.3f}s,"
                    f" seq {seq_at_retire}) received request seq"
                    f" {wrapper.last_request_seq} after retirement"
                )
    return violations


def check_report(report: "ScenarioReport") -> list[str]:
    """All invariant violations of one scenario run (empty = pass)."""
    violations: list[str] = []

    # liveness -----------------------------------------------------------------
    if report.acc_final_total is None:
        violations.append(
            "accumulator stream never produced a final total "
            f"(errors: {report.acc_errors})"
        )
    if report.opt_enabled:
        if report.opt_error is not None:
            violations.append(f"optimizer failed: {report.opt_error}")
        elif report.opt_fun is None or not isfinite(report.opt_fun):
            violations.append(f"optimizer value not finite: {report.opt_fun}")

    # exactly-once (client's view) ---------------------------------------------
    if report.acc_final_total is not None:
        if abs(report.acc_final_total - report.acc_ok) > 1e-9:
            violations.append(
                f"exactly-once violated: final total {report.acc_final_total} "
                f"!= {report.acc_ok} acknowledged calls "
                f"({report.acc_failed} raised)"
            )

    # bounded recovery ---------------------------------------------------------
    if (
        report.recovery_deadline is not None
        and report.recovery_max_seconds > report.recovery_deadline + DEADLINE_SLACK
    ):
        violations.append(
            f"a recovery took {report.recovery_max_seconds:.3f}s, over the "
            f"{report.recovery_deadline}s deadline"
        )

    # breaker accounting -------------------------------------------------------
    snap_opens = sum(b["opens"] for b in report.breaker_snapshot)
    snap_rejections = sum(b["rejections"] for b in report.breaker_snapshot)
    if snap_opens != report.metric_breaker_opens:
        violations.append(
            f"breaker open-count mismatch: objects say {snap_opens}, "
            f"metrics say {report.metric_breaker_opens}"
        )
    if snap_rejections != report.metric_breaker_rejections:
        violations.append(
            f"breaker rejection-count mismatch: objects say "
            f"{snap_rejections}, metrics say {report.metric_breaker_rejections}"
        )
    for b in report.breaker_snapshot:
        if b["state"] not in ("closed", "open", "half-open"):
            violations.append(f"breaker {b['host']} in bogus state {b['state']}")

    # clean plumbing -----------------------------------------------------------
    if report.drop_listener_errors:
        violations.append(
            f"{report.drop_listener_errors} network drop listener error(s)"
        )
    if report.checkpoint_buffer_depth_end:
        violations.append(
            f"{report.checkpoint_buffer_depth_end} checkpoint(s) stranded in "
            "degraded-mode buffers at end of run"
        )
    if report.checkpoint_pipeline_depth_end:
        violations.append(
            f"{report.checkpoint_pipeline_depth_end} pipelined checkpoint "
            "store(s) still in flight at end of run"
        )

    # no stale resolve ---------------------------------------------------------
    if report.resolve_cache_enabled and report.resolve_stale_served:
        violations.append(
            f"resolve cache served {report.resolve_stale_served} "
            "selection(s) on hosts already known dead"
        )

    # no stale primary ---------------------------------------------------------
    for item in report.stale_primary:
        violations.append(f"stale primary: {item}")

    # scenario-specific expectations -------------------------------------------
    if report.expects.get("primary_failover"):
        # The same cell must be survivable in every ft_mode; what counts
        # as "handled the primary fault" differs per mode.
        if report.ft_mode == "warm-passive" and not report.promotions:
            violations.append(
                "expected a warm-passive promotion after the primary "
                "fault, but none happened"
            )
        elif report.ft_mode == "active" and not (
            report.lead_changes
            or report.replacements
            or report.replicas_retired
        ):
            violations.append(
                "expected the active group to retire/replace the faulted "
                "primary, but membership never changed"
            )
        elif report.ft_mode == "checkpoint" and not report.recoveries:
            violations.append(
                "expected at least one checkpoint/restart recovery after "
                "the primary fault"
            )
    if (
        report.expects.get("standby_loss")
        and report.ft_mode != "checkpoint"
        and not (report.replicas_retired or report.replacements)
    ):
        violations.append(
            "expected the group to retire or replace the crashed standby"
        )

    # Degraded-mode buffering is a checkpoint-path contract: in the
    # replication modes the accumulator never touches the store, so the
    # outage has nothing to buffer for it.
    if report.expects.get("degraded_flush") and report.ft_mode == "checkpoint":
        if not report.checkpoints_buffered:
            violations.append(
                "expected degraded-mode buffering during the store outage, "
                "but no checkpoint was ever buffered"
            )
        elif not (report.checkpoints_flushed or report.restores_from_buffer):
            violations.append(
                "buffered checkpoints were neither flushed to the store nor "
                "used for a restore"
            )

    return violations
