"""Invariants every chaos run must satisfy, whatever faults were injected.

The campaign treats these as the system's contract under failure:

* **liveness** — the accumulator stream and the distributed optimization
  both run to completion (the optimizer converges to a finite value);
* **exactly-once, client's view** — the accumulator's final total equals
  the number of *acknowledged* ``add`` calls: a call that raised must not
  have left a surviving update, a call that returned must have left
  exactly one (checkpoint/restart recovery restores the last
  acknowledged state, so neither retries nor restarts may double-count);
* **bounded recovery** — no successful recovery took longer than the
  policy's ``recovery_deadline``;
* **consistent breaker accounting** — the breaker objects' own counters
  agree with what they published through the metrics registry;
* **clean plumbing** — no network drop listener raised, no checkpoint
  remained stranded in a degraded-mode buffer at the end of the run.

Each check returns violation strings; an empty list means the run passed.
"""

from __future__ import annotations

from math import isfinite
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.chaos.campaign import ScenarioReport

#: slack on the recovery deadline: the coordinator checks the deadline
#: *between* attempts, so the last attempt may finish slightly past it.
DEADLINE_SLACK = 0.25


def counter_total(registry, name: str, **labels) -> float:
    """Sum every counter called ``name`` whose labels include ``labels``."""
    total = 0.0
    for instrument in registry:
        if instrument.kind != "counter" or instrument.name != name:
            continue
        have = instrument.label_dict
        if all(have.get(k) == str(v) for k, v in labels.items()):
            total += instrument.value_repr()
    return total


def histogram_max(registry, name: str) -> float:
    """The largest observation across every histogram called ``name``."""
    largest = 0.0
    for instrument in registry:
        if instrument.kind == "histogram" and instrument.name == name:
            if instrument.count:
                largest = max(largest, instrument.max)
    return largest


def check_report(report: "ScenarioReport") -> list[str]:
    """All invariant violations of one scenario run (empty = pass)."""
    violations: list[str] = []

    # liveness -----------------------------------------------------------------
    if report.acc_final_total is None:
        violations.append(
            "accumulator stream never produced a final total "
            f"(errors: {report.acc_errors})"
        )
    if report.opt_enabled:
        if report.opt_error is not None:
            violations.append(f"optimizer failed: {report.opt_error}")
        elif report.opt_fun is None or not isfinite(report.opt_fun):
            violations.append(f"optimizer value not finite: {report.opt_fun}")

    # exactly-once (client's view) ---------------------------------------------
    if report.acc_final_total is not None:
        if abs(report.acc_final_total - report.acc_ok) > 1e-9:
            violations.append(
                f"exactly-once violated: final total {report.acc_final_total} "
                f"!= {report.acc_ok} acknowledged calls "
                f"({report.acc_failed} raised)"
            )

    # bounded recovery ---------------------------------------------------------
    if (
        report.recovery_deadline is not None
        and report.recovery_max_seconds > report.recovery_deadline + DEADLINE_SLACK
    ):
        violations.append(
            f"a recovery took {report.recovery_max_seconds:.3f}s, over the "
            f"{report.recovery_deadline}s deadline"
        )

    # breaker accounting -------------------------------------------------------
    snap_opens = sum(b["opens"] for b in report.breaker_snapshot)
    snap_rejections = sum(b["rejections"] for b in report.breaker_snapshot)
    if snap_opens != report.metric_breaker_opens:
        violations.append(
            f"breaker open-count mismatch: objects say {snap_opens}, "
            f"metrics say {report.metric_breaker_opens}"
        )
    if snap_rejections != report.metric_breaker_rejections:
        violations.append(
            f"breaker rejection-count mismatch: objects say "
            f"{snap_rejections}, metrics say {report.metric_breaker_rejections}"
        )
    for b in report.breaker_snapshot:
        if b["state"] not in ("closed", "open", "half-open"):
            violations.append(f"breaker {b['host']} in bogus state {b['state']}")

    # clean plumbing -----------------------------------------------------------
    if report.drop_listener_errors:
        violations.append(
            f"{report.drop_listener_errors} network drop listener error(s)"
        )
    if report.checkpoint_buffer_depth_end:
        violations.append(
            f"{report.checkpoint_buffer_depth_end} checkpoint(s) stranded in "
            "degraded-mode buffers at end of run"
        )
    if report.checkpoint_pipeline_depth_end:
        violations.append(
            f"{report.checkpoint_pipeline_depth_end} pipelined checkpoint "
            "store(s) still in flight at end of run"
        )

    # no stale resolve ---------------------------------------------------------
    if report.resolve_cache_enabled and report.resolve_stale_served:
        violations.append(
            f"resolve cache served {report.resolve_stale_served} "
            "selection(s) on hosts already known dead"
        )

    # scenario-specific expectations -------------------------------------------
    if report.expects.get("degraded_flush"):
        if not report.checkpoints_buffered:
            violations.append(
                "expected degraded-mode buffering during the store outage, "
                "but no checkpoint was ever buffered"
            )
        elif not (report.checkpoints_flushed or report.restores_from_buffer):
            violations.append(
                "buffered checkpoints were neither flushed to the store nor "
                "used for a restore"
            )

    return violations
