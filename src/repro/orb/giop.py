"""GIOP-style inter-ORB messages.

A small General Inter-ORB Protocol: Request, Reply, LocateRequest,
LocateReply and Reset messages, each encoded to real bytes with CDR so the
simulated network charges realistic transfer times.  The header mirrors
GIOP's (magic, version, message type, body length).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.errors import (
    CdrError,
    CompletionStatus,
    MARSHAL,
    SystemException,
)
from repro import errors as _errors
from repro.orb.cdr import CdrInputStream, CdrOutputStream

MAGIC = b"sGIO"  # "simulated GIOP"
VERSION = (1, 0)


class MsgType(enum.IntEnum):
    REQUEST = 0
    REPLY = 1
    CANCEL_REQUEST = 2
    LOCATE_REQUEST = 3
    LOCATE_REPLY = 4
    RESET = 7  # synthesized on behalf of dead endpoints (TCP RST analogue)
    CONNECT = 8  # connection-setup handshake (TCP SYN analogue)
    CONNECT_ACK = 9


class ReplyStatus(enum.IntEnum):
    NO_EXCEPTION = 0
    USER_EXCEPTION = 1
    SYSTEM_EXCEPTION = 2
    OBJECT_UNKNOWN = 3
    LOCATION_FORWARD = 4  # body carries the IOR to retry at


class LocateStatus(enum.IntEnum):
    UNKNOWN_OBJECT = 0
    OBJECT_HERE = 1


@dataclass(frozen=True)
class RequestMessage:
    request_id: int
    response_expected: bool
    object_key: bytes
    operation: str
    target_incarnation: int
    reply_host: str
    reply_port: int
    body: bytes
    #: GIOP service contexts: ``(context_id, data)`` pairs riding along
    #: with the request — out-of-band metadata such as the propagated
    #: observability trace context (see ``repro.obs.trace``).
    service_contexts: tuple = ()


@dataclass(frozen=True)
class ReplyMessage:
    request_id: int
    status: ReplyStatus
    body: bytes


@dataclass(frozen=True)
class LocateRequestMessage:
    request_id: int
    object_key: bytes
    target_incarnation: int
    reply_host: str
    reply_port: int


@dataclass(frozen=True)
class LocateReplyMessage:
    request_id: int
    status: LocateStatus


@dataclass(frozen=True)
class CancelRequestMessage:
    """Client notice that it no longer awaits ``request_id`` (GIOP
    CancelRequest): the server may abort the in-flight dispatch."""

    request_id: int


@dataclass(frozen=True)
class ConnectMessage:
    """One leg of connection setup: the client asks the server endpoint to
    accept a connection; the server answers with :class:`ConnectAckMessage`.
    Each configured handshake round trip is one such exchange, so drops and
    partitions affect connection *setup* exactly like they affect requests."""

    request_id: int
    reply_host: str
    reply_port: int


@dataclass(frozen=True)
class ConnectAckMessage:
    request_id: int


@dataclass(frozen=True)
class ResetMessage:
    """Connection-reset notice: the request with ``request_id`` can never be
    answered because its destination endpoint is gone."""

    request_id: int
    reason: str


GiopMessage = Union[
    RequestMessage,
    ReplyMessage,
    CancelRequestMessage,
    LocateRequestMessage,
    LocateReplyMessage,
    ConnectMessage,
    ConnectAckMessage,
    ResetMessage,
]


def encode_message(message: GiopMessage) -> bytes:
    stream = CdrOutputStream()
    stream.write_raw(MAGIC)
    stream.write_octet(VERSION[0])
    stream.write_octet(VERSION[1])
    if isinstance(message, RequestMessage):
        stream.write_octet(MsgType.REQUEST)
        stream.write_ulong(message.request_id)
        stream.write_boolean(message.response_expected)
        stream.write_octets(message.object_key)
        stream.write_string(message.operation)
        stream.write_ulong(message.target_incarnation)
        stream.write_string(message.reply_host)
        stream.write_ulong(message.reply_port)
        stream.write_ulong(len(message.service_contexts))
        for context_id, data in message.service_contexts:
            stream.write_ulong(context_id)
            stream.write_octets(bytes(data))
        stream.write_octets(message.body)
    elif isinstance(message, ReplyMessage):
        stream.write_octet(MsgType.REPLY)
        stream.write_ulong(message.request_id)
        stream.write_octet(int(message.status))
        stream.write_octets(message.body)
    elif isinstance(message, CancelRequestMessage):
        stream.write_octet(MsgType.CANCEL_REQUEST)
        stream.write_ulong(message.request_id)
    elif isinstance(message, LocateRequestMessage):
        stream.write_octet(MsgType.LOCATE_REQUEST)
        stream.write_ulong(message.request_id)
        stream.write_octets(message.object_key)
        stream.write_ulong(message.target_incarnation)
        stream.write_string(message.reply_host)
        stream.write_ulong(message.reply_port)
    elif isinstance(message, LocateReplyMessage):
        stream.write_octet(MsgType.LOCATE_REPLY)
        stream.write_ulong(message.request_id)
        stream.write_octet(int(message.status))
    elif isinstance(message, ConnectMessage):
        stream.write_octet(MsgType.CONNECT)
        stream.write_ulong(message.request_id)
        stream.write_string(message.reply_host)
        stream.write_ulong(message.reply_port)
    elif isinstance(message, ConnectAckMessage):
        stream.write_octet(MsgType.CONNECT_ACK)
        stream.write_ulong(message.request_id)
    elif isinstance(message, ResetMessage):
        stream.write_octet(MsgType.RESET)
        stream.write_ulong(message.request_id)
        stream.write_string(message.reason or "-")
    else:
        raise MARSHAL(f"unknown GIOP message type {type(message).__name__}")
    return stream.getvalue()


def decode_message(data: bytes) -> GiopMessage:
    stream = CdrInputStream(data)
    if stream.read_raw(4) != MAGIC:
        raise MARSHAL("bad GIOP magic")
    major, minor = stream.read_octet(), stream.read_octet()
    if (major, minor) != VERSION:
        raise MARSHAL(f"unsupported GIOP version {major}.{minor}")
    try:
        msg_type = MsgType(stream.read_octet())
    except ValueError as exc:
        raise MARSHAL(f"unknown GIOP message type: {exc}") from exc
    if msg_type is MsgType.REQUEST:
        request_id = stream.read_ulong()
        response_expected = stream.read_boolean()
        object_key = stream.read_octets()
        operation = stream.read_string()
        target_incarnation = stream.read_ulong()
        reply_host = stream.read_string()
        reply_port = stream.read_ulong()
        service_contexts = tuple(
            (stream.read_ulong(), stream.read_octets())
            for _ in range(stream.read_ulong())
        )
        return RequestMessage(
            request_id=request_id,
            response_expected=response_expected,
            object_key=object_key,
            operation=operation,
            target_incarnation=target_incarnation,
            reply_host=reply_host,
            reply_port=reply_port,
            body=stream.read_octets(),
            service_contexts=service_contexts,
        )
    if msg_type is MsgType.REPLY:
        return ReplyMessage(
            request_id=stream.read_ulong(),
            status=ReplyStatus(stream.read_octet()),
            body=stream.read_octets(),
        )
    if msg_type is MsgType.CANCEL_REQUEST:
        return CancelRequestMessage(request_id=stream.read_ulong())
    if msg_type is MsgType.LOCATE_REQUEST:
        return LocateRequestMessage(
            request_id=stream.read_ulong(),
            object_key=stream.read_octets(),
            target_incarnation=stream.read_ulong(),
            reply_host=stream.read_string(),
            reply_port=stream.read_ulong(),
        )
    if msg_type is MsgType.LOCATE_REPLY:
        return LocateReplyMessage(
            request_id=stream.read_ulong(),
            status=LocateStatus(stream.read_octet()),
        )
    if msg_type is MsgType.CONNECT:
        return ConnectMessage(
            request_id=stream.read_ulong(),
            reply_host=stream.read_string(),
            reply_port=stream.read_ulong(),
        )
    if msg_type is MsgType.CONNECT_ACK:
        return ConnectAckMessage(request_id=stream.read_ulong())
    assert msg_type is MsgType.RESET
    return ResetMessage(
        request_id=stream.read_ulong(),
        reason=stream.read_string(),
    )


# -- system-exception bodies -------------------------------------------------------

_SYSTEM_EXCEPTION_NAMES = (
    "COMM_FAILURE",
    "OBJECT_NOT_EXIST",
    "BAD_OPERATION",
    "BAD_PARAM",
    "MARSHAL",
    "NO_IMPLEMENT",
    "TRANSIENT",
    "TIMEOUT",
    "OBJ_ADAPTER",
    "INV_OBJREF",
    "UNKNOWN",
)


def encode_system_exception(exc: SystemException) -> bytes:
    """Reply body for ``SYSTEM_EXCEPTION`` status."""
    stream = CdrOutputStream()
    name = type(exc).__name__
    if name not in _SYSTEM_EXCEPTION_NAMES:
        name = "UNKNOWN"
    stream.write_string(name)
    stream.write_string(str(exc.args[0]) if exc.args else "")
    stream.write_ulong(exc.minor)
    stream.write_octet(exc.completed.value)
    return stream.getvalue()


def decode_system_exception(body: bytes) -> SystemException:
    stream = CdrInputStream(body)
    name = stream.read_string()
    message = stream.read_string()
    minor = stream.read_ulong()
    completed = CompletionStatus(stream.read_octet())
    cls = getattr(_errors, name, None)
    if cls is None or not issubclass(cls, SystemException):
        cls = _errors.UNKNOWN
    return cls(message, minor=minor, completed=completed)
