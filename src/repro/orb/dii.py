"""Dynamic Invocation Interface.

"In addition to transparent synchronous method calls, CORBA provides
asynchronous method invocations via DII.  When a client wants to utilize
DII, it does not call the server object's methods directly, but uses
so-called request objects instead.  These request objects offer methods to
asynchronously initiate methods of the server object and fetch the
corresponding results at a later time." (§3)

The manager/worker optimizer uses ``send_deferred`` to run all worker
subproblems concurrently; :mod:`repro.ft.request_proxy` wraps these Request
objects with the paper's *request proxies* for fault tolerance.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.errors import BAD_OPERATION, SystemException
from repro.orb.ior import IOR
from repro.orb.stubs import OpInfo

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.sim.events import SimFuture


class Request:
    """A dynamic invocation of one operation on one target object.

    Lifecycle: construct (directly or via ``stub._create_request``), then
    either

    * :meth:`invoke` — synchronous: returns the result future directly;
    * :meth:`send_deferred` then :meth:`get_response` — deferred
      synchronous: start now, collect later; :meth:`poll_response` checks
      completion without blocking;
    * :meth:`send_oneway` — fire and forget (operation must be oneway-safe).
    """

    def __init__(
        self,
        orb: "Orb",
        target: IOR,
        info: OpInfo,
        args: tuple,
        reference=None,
    ) -> None:
        self._orb = orb
        self._target = target
        self._info = info
        self._args = tuple(args)
        self._future: Optional["SimFuture"] = None
        #: the object reference this request came from (shares its
        #: LOCATION_FORWARD cache), if any.
        self._reference = reference

    # -- introspection ----------------------------------------------------------

    @property
    def operation(self) -> str:
        return self._info.name

    @property
    def target(self) -> IOR:
        return self._target

    @property
    def arguments(self) -> tuple:
        return self._args

    @property
    def sent(self) -> bool:
        return self._future is not None

    # -- invocation ---------------------------------------------------------------

    def invoke(self) -> "SimFuture":
        """Synchronous invocation; yield the returned future."""
        self._ensure_unsent()
        self._future = self._orb.invoke(
            self._target, self._info, self._args, reference=self._reference
        )
        return self._future

    def send_deferred(self) -> "Request":
        """Start the invocation without waiting; returns self for chaining."""
        self._ensure_unsent()
        self._future = self._orb.invoke(
            self._target, self._info, self._args, reference=self._reference
        )
        return self

    def send_oneway(self) -> "Request":
        """Send with no response expected."""
        self._ensure_unsent()
        info = OpInfo(
            name=self._info.name,
            params=self._info.params,
            result=self._info.result,
            raises=self._info.raises,
            oneway=True,
        )
        self._future = self._orb.invoke(
            self._target, info, self._args, reference=self._reference
        )
        return self

    def poll_response(self) -> bool:
        """True once the response (or failure) has arrived."""
        self._ensure_sent()
        assert self._future is not None
        return self._future.is_done

    def get_response(self) -> "SimFuture":
        """The response future; yield it to wait for completion."""
        self._ensure_sent()
        assert self._future is not None
        return self._future

    def return_value(self) -> Any:
        """The result after completion (raises the failure if it failed)."""
        self._ensure_sent()
        assert self._future is not None
        return self._future.value

    @property
    def exception(self) -> Optional[BaseException]:
        if self._future is None or not self._future.is_done:
            return None
        return self._future.exception

    # -- retry support (used by request proxies) ------------------------------------

    def _reset_for_retry(self, new_target: Optional[IOR] = None) -> None:
        """Forget the previous attempt so the request can be re-sent,
        optionally at a different target (after recovery)."""
        self._future = None
        if new_target is not None:
            self._target = new_target

    # -- internals ---------------------------------------------------------------------

    def _ensure_unsent(self) -> None:
        if self._future is not None:
            raise BAD_OPERATION(
                f"request {self.operation!r} was already sent"
            )

    def _ensure_sent(self) -> None:
        if self._future is None:
            raise BAD_OPERATION(
                f"request {self.operation!r} has not been sent yet"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "unsent" if self._future is None else (
            "done" if self._future.is_done else "in-flight"
        )
        return f"<Request {self.operation} -> {self._target.host} [{state}]>"
