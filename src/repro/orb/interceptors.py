"""Request interceptors (CORBA Portable-Interceptor style).

Interceptors observe the invocation path without touching application
code: client-side hooks fire around each outgoing request, server-side
hooks around each dispatched request.  The fault-tolerance and load
experiments use them for instrumentation; they are also the natural hook
for the "ORB-level" load-distribution designs §2 discusses (and rejects
for portability) — implementable here without modifying the ORB core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.ior import IOR


@dataclass
class RequestInfo:
    """What an interceptor sees about one request."""

    operation: str
    request_id: int
    #: client side: the target IOR; server side: the object key.
    target: Optional["IOR"] = None
    object_key: Optional[bytes] = None
    #: set for receive_exception.
    exception: Optional[BaseException] = None
    #: wire size of the request body in bytes.
    body_size: int = 0
    #: whether the client awaits a reply (False for oneway calls).
    response_expected: bool = True
    #: GIOP service contexts as ``(context_id, data)`` pairs.  In
    #: ``send_request`` the list is writable: entries appended by an
    #: interceptor are marshalled into the outgoing request (this is how
    #: the observability layer propagates its trace context); in
    #: ``receive_request`` it holds the contexts decoded off the wire.
    service_contexts: list = field(default_factory=list)
    #: ORB-attached attribution tags (e.g. the CDR marshal/unmarshal work
    #: charged around this hook); the observability interceptor copies
    #: them onto its spans so the critical-path analyzer can split
    #: marshalling out of transport and servant time.
    attrs: dict = field(default_factory=dict)


class RequestInterceptor:
    """Base class; override any subset of the hooks."""

    # -- client side ------------------------------------------------------

    def send_request(self, info: RequestInfo) -> None:
        """Before the request datagram leaves the client."""

    def receive_reply(self, info: RequestInfo) -> None:
        """After a successful reply was unmarshalled."""

    def receive_exception(self, info: RequestInfo) -> None:
        """After the invocation failed (system or user exception)."""

    # -- server side ---------------------------------------------------------

    def receive_request(self, info: RequestInfo) -> None:
        """After the server demarshalled an incoming request."""

    def send_reply(self, info: RequestInfo) -> None:
        """Before the reply datagram leaves the server."""


class TracingInterceptor(RequestInterceptor):
    """Writes every hook into the simulator's trace log (category "giop")."""

    def __init__(self, sim) -> None:
        self._sim = sim

    def _emit(self, hook: str, info: RequestInfo) -> None:
        self._sim.trace.emit(
            "giop",
            f"{hook} {info.operation}",
            request_id=info.request_id,
            bytes=info.body_size,
        )

    def send_request(self, info: RequestInfo) -> None:
        self._emit("send_request", info)

    def receive_reply(self, info: RequestInfo) -> None:
        self._emit("receive_reply", info)

    def receive_exception(self, info: RequestInfo) -> None:
        self._emit("receive_exception", info)

    def receive_request(self, info: RequestInfo) -> None:
        self._emit("receive_request", info)

    def send_reply(self, info: RequestInfo) -> None:
        self._emit("send_reply", info)
