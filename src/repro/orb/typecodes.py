"""TypeCodes: runtime descriptions of IDL types.

A :class:`TypeCode` tells the CDR streams how to marshal a value.  The IDL
compiler maps every declared type to a TypeCode; the ``any`` type carries
its TypeCode on the wire (self-describing values), which is what the
checkpoint storage service uses to hold "arbitrary values" as the paper's
proof-of-concept service does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import CdrError


class TCKind(enum.IntEnum):
    """TypeCode kinds (numbering local to this ORB)."""

    NULL = 0
    VOID = 1
    BOOLEAN = 2
    OCTET = 3
    SHORT = 4
    USHORT = 5
    LONG = 6
    ULONG = 7
    LONGLONG = 8
    ULONGLONG = 9
    FLOAT = 10
    DOUBLE = 11
    STRING = 12
    SEQUENCE = 13
    ARRAY = 14
    STRUCT = 15
    ENUM = 16
    EXCEPTION = 17
    ANY = 18
    OBJREF = 19
    OCTETS = 20  # sequence<octet> fast path (bytes)
    UNION = 21


_INTEGER_BOUNDS = {
    TCKind.OCTET: (0, 2**8 - 1),
    TCKind.SHORT: (-(2**15), 2**15 - 1),
    TCKind.USHORT: (0, 2**16 - 1),
    TCKind.LONG: (-(2**31), 2**31 - 1),
    TCKind.ULONG: (0, 2**32 - 1),
    TCKind.LONGLONG: (-(2**63), 2**63 - 1),
    TCKind.ULONGLONG: (0, 2**64 - 1),
}


@dataclass(frozen=True)
class TypeCode:
    """Immutable type descriptor.

    ``name``/``fields``/``members`` are populated per kind:

    * SEQUENCE/ARRAY: ``content`` (element TypeCode), ARRAY also ``length``;
    * STRUCT/EXCEPTION: ``name`` (repository id suffix) and ``fields`` as
      ``(field_name, TypeCode)`` pairs;
    * ENUM: ``name`` and ``members`` (value names in declaration order);
    * OBJREF: ``name`` holds the expected repository id ("" = any object).
    """

    kind: TCKind
    name: str = ""
    content: Optional["TypeCode"] = None
    length: int = 0
    fields: Tuple[Tuple[str, "TypeCode"], ...] = ()
    members: Tuple[str, ...] = ()
    #: UNION only: one case-label value per entry in ``fields``; the entry
    #: at ``default_index`` (if >= 0) is the default branch.
    labels: Tuple = ()
    default_index: int = -1

    def __post_init__(self) -> None:
        if self.kind in (TCKind.SEQUENCE, TCKind.ARRAY) and self.content is None:
            raise CdrError(f"{self.kind.name} TypeCode requires a content type")
        if self.kind is TCKind.ARRAY and self.length <= 0:
            raise CdrError("ARRAY TypeCode requires a positive length")
        if self.kind in (TCKind.STRUCT, TCKind.EXCEPTION, TCKind.UNION) and not self.name:
            raise CdrError(f"{self.kind.name} TypeCode requires a name")
        if self.kind is TCKind.ENUM and not self.members:
            raise CdrError("ENUM TypeCode requires members")
        if self.kind is TCKind.UNION:
            if self.content is None:
                raise CdrError("UNION TypeCode requires a discriminator type")
            if len(self.labels) != len(self.fields):
                raise CdrError("UNION needs one label per case")
            if not -1 <= self.default_index < len(self.fields):
                raise CdrError("UNION default_index out of range")

    # convenient predicates -------------------------------------------------

    @property
    def is_integer(self) -> bool:
        return self.kind in _INTEGER_BOUNDS

    def integer_bounds(self) -> tuple[int, int]:
        return _INTEGER_BOUNDS[self.kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is TCKind.SEQUENCE:
            return f"sequence<{self.content!r}>"
        if self.kind is TCKind.ARRAY:
            return f"{self.content!r}[{self.length}]"
        if self.kind in (TCKind.STRUCT, TCKind.EXCEPTION, TCKind.ENUM, TCKind.UNION):
            return f"{self.kind.name.lower()} {self.name}"
        if self.kind is TCKind.OBJREF:
            return f"Object<{self.name or '*'}>"
        return self.kind.name.lower()


# -- singletons ---------------------------------------------------------------

TC_NULL = TypeCode(TCKind.NULL)
TC_VOID = TypeCode(TCKind.VOID)
TC_BOOLEAN = TypeCode(TCKind.BOOLEAN)
TC_OCTET = TypeCode(TCKind.OCTET)
TC_SHORT = TypeCode(TCKind.SHORT)
TC_USHORT = TypeCode(TCKind.USHORT)
TC_LONG = TypeCode(TCKind.LONG)
TC_ULONG = TypeCode(TCKind.ULONG)
TC_LONGLONG = TypeCode(TCKind.LONGLONG)
TC_ULONGLONG = TypeCode(TCKind.ULONGLONG)
TC_FLOAT = TypeCode(TCKind.FLOAT)
TC_DOUBLE = TypeCode(TCKind.DOUBLE)
TC_STRING = TypeCode(TCKind.STRING)
TC_ANY = TypeCode(TCKind.ANY)
TC_OBJREF = TypeCode(TCKind.OBJREF)
TC_OCTETS = TypeCode(TCKind.OCTETS)


# -- constructors ---------------------------------------------------------------


def sequence(content: TypeCode) -> TypeCode:
    """``sequence<content>`` — unbounded."""
    if content.kind is TCKind.OCTET:
        return TC_OCTETS
    return TypeCode(TCKind.SEQUENCE, content=content)


def array(content: TypeCode, length: int) -> TypeCode:
    """Fixed-length ``content[length]``."""
    return TypeCode(TCKind.ARRAY, content=content, length=length)


def struct(name: str, fields: Sequence[tuple[str, TypeCode]]) -> TypeCode:
    return TypeCode(TCKind.STRUCT, name=name, fields=tuple(fields))


def exception(name: str, fields: Sequence[tuple[str, TypeCode]] = ()) -> TypeCode:
    return TypeCode(TCKind.EXCEPTION, name=name, fields=tuple(fields))


def enum_tc(name: str, members: Sequence[str]) -> TypeCode:
    return TypeCode(TCKind.ENUM, name=name, members=tuple(members))


def union(
    name: str,
    discriminator: TypeCode,
    cases: Sequence[tuple[object, str, TypeCode]],
    default_index: int = -1,
) -> TypeCode:
    """Discriminated union: ``cases`` are (label, field_name, type)."""
    return TypeCode(
        TCKind.UNION,
        name=name,
        content=discriminator,
        fields=tuple((field_name, tc) for _, field_name, tc in cases),
        labels=tuple(label for label, _, _ in cases),
        default_index=default_index,
    )


def objref(repo_id: str = "") -> TypeCode:
    if not repo_id:
        return TC_OBJREF
    return TypeCode(TCKind.OBJREF, name=repo_id)


#: convenient aliases matching IDL spellings
TC_DOUBLE_SEQ = sequence(TC_DOUBLE)
TC_LONG_SEQ = sequence(TC_LONG)
TC_STRING_SEQ = sequence(TC_STRING)
