"""A CORBA-style Object Request Broker on the simulated network.

The subset implemented is the one the paper's runtime support relies on:

* **CDR marshalling** (:mod:`repro.orb.cdr`, :mod:`repro.orb.typecodes`) —
  big-endian Common Data Representation with alignment, typed values, a
  self-describing ``any``, and a fast path for numeric arrays.  Message
  sizes are real and drive the simulated network's transfer times.
* **IORs** (:mod:`repro.orb.ior`) — interoperable object references with a
  stringified ``IOR:`` form, carrying host, port, object key, repository id.
* **An IDL compiler** (:mod:`repro.orb.idl`) — lexer, recursive-descent
  parser and code generator producing Python stubs and skeletons from OMG
  IDL source, the way ``omniidl`` produced C++ stubs for the paper.
* **GIOP-style messaging** (:mod:`repro.orb.giop`) over a datagram
  transport (:mod:`repro.orb.transport`) with reset notifications, so a
  dead server turns into ``COMM_FAILURE`` at the client — the failure
  signal the paper's proxies intercept.
* **ORB core + POA** (:mod:`repro.orb.core`) — object adapters, servant
  activation, request dispatch as host-bound simulation processes (server
  work consumes the host CPU), and system-exception propagation.
* **DII** (:mod:`repro.orb.dii`) — dynamic ``Request`` objects with
  deferred-synchronous invocation, used by the manager to run workers in
  parallel and wrapped by the paper's *request proxies*.
"""

from repro.orb import typecodes
from repro.orb.cdr import CdrInputStream, CdrOutputStream, decode_any, encode_any
from repro.orb.ior import IOR
from repro.orb.core import Orb, OrbConfig, POA, Servant
from repro.orb.dii import Request
from repro.orb.stubs import ObjectStub
from repro.orb.idl import compile_idl
from repro.orb.interceptors import RequestInfo, RequestInterceptor, TracingInterceptor
from repro.orb.forwarding import ForwardingAgent, LocationForward, make_forwarding_servant
from repro.orb.url import parse_corbaloc, parse_corbaname, resolve_corbaname

__all__ = [
    "CdrInputStream",
    "CdrOutputStream",
    "ForwardingAgent",
    "IOR",
    "LocationForward",
    "Orb",
    "OrbConfig",
    "ObjectStub",
    "POA",
    "Request",
    "RequestInfo",
    "RequestInterceptor",
    "Servant",
    "TracingInterceptor",
    "compile_idl",
    "decode_any",
    "encode_any",
    "make_forwarding_servant",
    "parse_corbaloc",
    "parse_corbaname",
    "resolve_corbaname",
    "typecodes",
]
