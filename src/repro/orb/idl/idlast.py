"""Abstract syntax tree of the IDL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# -- type references -----------------------------------------------------------


@dataclass(frozen=True)
class BasicType:
    """A builtin type: boolean/octet/short/long/longlong/ushort/ulong/
    ulonglong/float/double/string/any/Object/void."""

    name: str


@dataclass(frozen=True)
class ScopedName:
    """A possibly-qualified user type name, e.g. ``CosNaming::Name``."""

    parts: Tuple[str, ...]
    absolute: bool = False  # leading ::

    def __str__(self) -> str:
        prefix = "::" if self.absolute else ""
        return prefix + "::".join(self.parts)


@dataclass(frozen=True)
class SequenceType:
    element: "TypeRef"


@dataclass(frozen=True)
class ArrayType:
    """Fixed-length array declarator, e.g. ``double m[4]``."""

    element: "TypeRef"
    length: int


TypeRef = Union[BasicType, ScopedName, SequenceType, ArrayType]


# -- declarations -------------------------------------------------------------


@dataclass
class ParamDecl:
    direction: str  # 'in' | 'out' | 'inout'
    type: TypeRef
    name: str


@dataclass
class OperationDecl:
    name: str
    returns: TypeRef
    params: List[ParamDecl]
    raises: List[ScopedName] = field(default_factory=list)
    oneway: bool = False


@dataclass
class AttributeDecl:
    readonly: bool
    type: TypeRef
    names: List[str] = field(default_factory=list)


@dataclass
class StructDecl:
    name: str
    members: List[Tuple[TypeRef, str]] = field(default_factory=list)


@dataclass
class EnumDecl:
    name: str
    members: List[str] = field(default_factory=list)


@dataclass
class TypedefDecl:
    type: TypeRef
    name: str


@dataclass
class ExceptionDecl:
    name: str
    members: List[Tuple[TypeRef, str]] = field(default_factory=list)


@dataclass
class ConstDecl:
    type: TypeRef
    name: str
    value: object


@dataclass
class UnionCase:
    """One member of a union; ``labels`` holds the case labels (ints,
    bools, or ScopedNames naming enum members); empty = the default."""

    labels: List[object]
    is_default: bool
    type: TypeRef
    name: str


@dataclass
class UnionDecl:
    name: str
    discriminator: TypeRef
    cases: List[UnionCase] = field(default_factory=list)


@dataclass
class InterfaceDecl:
    name: str
    bases: List[ScopedName] = field(default_factory=list)
    body: List[object] = field(default_factory=list)
    forward: bool = False


@dataclass
class ModuleDecl:
    name: str
    body: List[object] = field(default_factory=list)


@dataclass
class Specification:
    """A whole IDL compilation unit."""

    body: List[object] = field(default_factory=list)


Declaration = Union[
    ModuleDecl,
    InterfaceDecl,
    StructDecl,
    EnumDecl,
    TypedefDecl,
    ExceptionDecl,
    ConstDecl,
]
