"""Command-line front end for the IDL compiler.

Usage::

    python -m repro.orb.idl <file.idl> [--fast-path] [-o OUT]

Prints the Python source :func:`repro.orb.idl.generate_source` would
produce for the given IDL file — the omniidl-style way to inspect what
the compiler emits.  ``--fast-path`` appends the AOT marshal/dispatch
layer (flat encoders, request builders, skeleton dispatch tables) to the
output; ``-o`` writes to a file instead of stdout.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.orb.idl import generate_source


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.orb.idl",
        description="Compile an IDL file and print the generated Python source.",
    )
    parser.add_argument("idl_file", help="IDL source file to compile")
    parser.add_argument(
        "--fast-path",
        action="store_true",
        help="also emit the AOT marshal/dispatch fast-path layer",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write generated source here instead of stdout",
    )
    args = parser.parse_args(argv)

    path = Path(args.idl_file)
    try:
        source = path.read_text()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    try:
        generated = generate_source(source, fast_path=args.fast_path)
    # analysis: ignore[EXC002]: CLI boundary — any compile failure becomes a diagnostic plus exit code 1
    except Exception as exc:  # noqa: BLE001
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 1
    if args.output:
        Path(args.output).write_text(generated)
    else:
        sys.stdout.write(generated)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
