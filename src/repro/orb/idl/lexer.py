"""IDL tokenizer.

Produces a flat token stream with source positions.  Handles ``//`` and
``/* */`` comments and skips preprocessor lines (``#include``, ``#pragma``)
the way a real IDL compiler's preprocessor stage would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.errors import IdlSyntaxError

KEYWORDS = frozenset(
    """
    module interface struct enum typedef exception const attribute readonly
    oneway in out inout raises void boolean octet short long unsigned float
    double string sequence any Object TRUE FALSE union switch case default
    """.split()
)

#: multi-character punctuation first so the regex prefers it.
_PUNCTUATION = ("::", "{", "}", "(", ")", "<", ">", ",", ";", ":", "=", "[", "]")

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<preproc>\#[^\n]*)
  | (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>::|[{}()<>,;:=\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'int', 'float', 'string', 'punct', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize IDL ``source``; raises :class:`IdlSyntaxError` on garbage."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise IdlSyntaxError(
                f"unexpected character {source[pos]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        column = pos - line_start + 1
        if kind in ("ws", "line_comment", "block_comment", "preproc"):
            pass  # skipped; only track newlines below
        elif kind == "ident":
            token_kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(token_kind, text, line, column))
        elif kind == "string":
            tokens.append(Token("string", _unescape(text[1:-1]), line, column))
        else:
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens


def _unescape(body: str) -> str:
    return (
        body.replace(r"\\", "\\")
        .replace(r"\"", '"')
        .replace(r"\n", "\n")
        .replace(r"\t", "\t")
    )
