"""Recursive-descent parser for the IDL subset."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import IdlSyntaxError
from repro.orb.idl import idlast as ast
from repro.orb.idl.lexer import Token, tokenize

_BASIC_SINGLE = frozenset(
    ("boolean", "octet", "short", "float", "double", "string", "any", "Object")
)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers --------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _error(self, message: str, token: Optional[Token] = None) -> IdlSyntaxError:
        token = token or self._current
        return IdlSyntaxError(message, token.line, token.column)

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "eof":
            self._pos += 1
        return token

    def _check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (value is None or token.value == value)

    def _accept(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._advance()
        return None

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self._check(kind, value):
            want = value if value is not None else kind
            got = self._current.value or self._current.kind
            raise self._error(f"expected {want!r}, got {got!r}")
        return self._advance()

    def _expect_ident(self) -> str:
        if not self._check("ident"):
            got = self._current.value or self._current.kind
            raise self._error(f"expected identifier, got {got!r}")
        return self._advance().value

    # -- grammar ----------------------------------------------------------------

    def parse_specification(self) -> ast.Specification:
        spec = ast.Specification()
        while not self._check("eof"):
            spec.body.append(self._parse_definition())
        return spec

    def _parse_definition(self):
        if self._check("keyword", "module"):
            return self._parse_module()
        if self._check("keyword", "interface"):
            return self._parse_interface()
        return self._parse_type_dcl()

    def _parse_type_dcl(self):
        if self._check("keyword", "struct"):
            return self._parse_struct()
        if self._check("keyword", "union"):
            return self._parse_union()
        if self._check("keyword", "enum"):
            return self._parse_enum()
        if self._check("keyword", "typedef"):
            return self._parse_typedef()
        if self._check("keyword", "exception"):
            return self._parse_exception()
        if self._check("keyword", "const"):
            return self._parse_const()
        got = self._current.value or self._current.kind
        raise self._error(f"expected a declaration, got {got!r}")

    def _parse_module(self) -> ast.ModuleDecl:
        self._expect("keyword", "module")
        name = self._expect_ident()
        self._expect("punct", "{")
        body = []
        while not self._check("punct", "}"):
            body.append(self._parse_definition())
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.ModuleDecl(name, body)

    def _parse_interface(self) -> ast.InterfaceDecl:
        self._expect("keyword", "interface")
        name = self._expect_ident()
        if self._accept("punct", ";"):
            return ast.InterfaceDecl(name, forward=True)
        bases: list[ast.ScopedName] = []
        if self._accept("punct", ":"):
            bases.append(self._parse_scoped_name())
            while self._accept("punct", ","):
                bases.append(self._parse_scoped_name())
        self._expect("punct", "{")
        body: list[object] = []
        while not self._check("punct", "}"):
            body.append(self._parse_export())
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.InterfaceDecl(name, bases, body)

    def _parse_export(self):
        if self._check("keyword", "struct") or self._check("keyword", "enum") \
                or self._check("keyword", "typedef") \
                or self._check("keyword", "exception") \
                or self._check("keyword", "const"):
            return self._parse_type_dcl()
        if self._check("keyword", "readonly") or self._check("keyword", "attribute"):
            return self._parse_attribute()
        return self._parse_operation()

    def _parse_attribute(self) -> ast.AttributeDecl:
        readonly = self._accept("keyword", "readonly") is not None
        self._expect("keyword", "attribute")
        type_ref = self._parse_type()
        names = [self._expect_ident()]
        while self._accept("punct", ","):
            names.append(self._expect_ident())
        self._expect("punct", ";")
        return ast.AttributeDecl(readonly, type_ref, names)

    def _parse_operation(self) -> ast.OperationDecl:
        oneway = self._accept("keyword", "oneway") is not None
        if self._check("keyword", "void"):
            self._advance()
            returns: ast.TypeRef = ast.BasicType("void")
        else:
            returns = self._parse_type()
        name = self._expect_ident()
        self._expect("punct", "(")
        params: list[ast.ParamDecl] = []
        if not self._check("punct", ")"):
            params.append(self._parse_param())
            while self._accept("punct", ","):
                params.append(self._parse_param())
        self._expect("punct", ")")
        raises: list[ast.ScopedName] = []
        if self._accept("keyword", "raises"):
            self._expect("punct", "(")
            raises.append(self._parse_scoped_name())
            while self._accept("punct", ","):
                raises.append(self._parse_scoped_name())
            self._expect("punct", ")")
        self._expect("punct", ";")
        if oneway and (returns != ast.BasicType("void") or raises):
            raise self._error(
                f"oneway operation {name!r} must return void and raise nothing"
            )
        return ast.OperationDecl(name, returns, params, raises, oneway)

    def _parse_param(self) -> ast.ParamDecl:
        direction_token = self._current
        direction = None
        for candidate in ("in", "out", "inout"):
            if self._accept("keyword", candidate):
                direction = candidate
                break
        if direction is None:
            got = direction_token.value or direction_token.kind
            raise self._error(f"expected parameter direction, got {got!r}")
        type_ref = self._parse_type()
        name = self._expect_ident()
        return ast.ParamDecl(direction, type_ref, name)

    def _parse_struct(self) -> ast.StructDecl:
        self._expect("keyword", "struct")
        name = self._expect_ident()
        self._expect("punct", "{")
        members = self._parse_members()
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.StructDecl(name, members)

    def _parse_exception(self) -> ast.ExceptionDecl:
        self._expect("keyword", "exception")
        name = self._expect_ident()
        self._expect("punct", "{")
        members = self._parse_members()
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.ExceptionDecl(name, members)

    def _parse_members(self) -> list[Tuple[ast.TypeRef, str]]:
        members: list[Tuple[ast.TypeRef, str]] = []
        while not self._check("punct", "}"):
            type_ref = self._parse_type()
            while True:
                name = self._expect_ident()
                members.append((self._maybe_array(type_ref), name))
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ";")
        return members

    def _maybe_array(self, element: ast.TypeRef) -> ast.TypeRef:
        """Apply a trailing fixed-size array declarator, if present."""
        if not self._accept("punct", "["):
            return element
        token = self._current
        if token.kind != "int":
            raise self._error("expected an array length")
        self._advance()
        length = int(token.value, 0)
        if length <= 0:
            raise self._error("array length must be positive")
        self._expect("punct", "]")
        return ast.ArrayType(element, length)

    def _parse_enum(self) -> ast.EnumDecl:
        self._expect("keyword", "enum")
        name = self._expect_ident()
        self._expect("punct", "{")
        members = [self._expect_ident()]
        while self._accept("punct", ","):
            members.append(self._expect_ident())
        self._expect("punct", "}")
        self._expect("punct", ";")
        return ast.EnumDecl(name, members)

    def _parse_typedef(self) -> ast.TypedefDecl:
        self._expect("keyword", "typedef")
        type_ref = self._parse_type()
        name = self._expect_ident()
        type_ref = self._maybe_array(type_ref)
        self._expect("punct", ";")
        return ast.TypedefDecl(type_ref, name)

    def _parse_union(self) -> ast.UnionDecl:
        self._expect("keyword", "union")
        name = self._expect_ident()
        self._expect("keyword", "switch")
        self._expect("punct", "(")
        discriminator = self._parse_type()
        self._expect("punct", ")")
        self._expect("punct", "{")
        cases: list[ast.UnionCase] = []
        seen_default = False
        while not self._check("punct", "}"):
            labels: list[object] = []
            is_default = False
            while True:
                if self._accept("keyword", "case"):
                    labels.append(self._parse_case_label())
                    self._expect("punct", ":")
                elif self._accept("keyword", "default"):
                    if seen_default:
                        raise self._error("union has multiple default cases")
                    is_default = True
                    seen_default = True
                    self._expect("punct", ":")
                else:
                    break
            if not labels and not is_default:
                raise self._error("expected 'case' or 'default' in union body")
            type_ref = self._parse_type()
            member_name = self._expect_ident()
            type_ref = self._maybe_array(type_ref)
            self._expect("punct", ";")
            cases.append(ast.UnionCase(labels, is_default, type_ref, member_name))
        self._expect("punct", "}")
        self._expect("punct", ";")
        if not cases:
            raise self._error(f"union {name!r} has no cases")
        return ast.UnionDecl(name, discriminator, cases)

    def _parse_case_label(self):
        token = self._current
        if token.kind == "int":
            self._advance()
            return int(token.value, 0)
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return token.value == "TRUE"
        if token.kind == "ident" or (token.kind == "punct" and token.value == "::"):
            return self._parse_scoped_name()
        raise self._error(
            f"expected a case label, got {token.value or token.kind!r}"
        )

    def _parse_const(self) -> ast.ConstDecl:
        self._expect("keyword", "const")
        type_ref = self._parse_type()
        name = self._expect_ident()
        self._expect("punct", "=")
        value = self._parse_const_value()
        self._expect("punct", ";")
        return ast.ConstDecl(type_ref, name, value)

    def _parse_const_value(self):
        token = self._current
        if token.kind == "int":
            self._advance()
            return int(token.value, 0)
        if token.kind == "float":
            self._advance()
            return float(token.value)
        if token.kind == "string":
            self._advance()
            return token.value
        if token.kind == "keyword" and token.value in ("TRUE", "FALSE"):
            self._advance()
            return token.value == "TRUE"
        raise self._error(
            f"expected a literal constant, got {token.value or token.kind!r}"
        )

    # -- types -----------------------------------------------------------------

    def _parse_type(self) -> ast.TypeRef:
        token = self._current
        if token.kind == "keyword":
            if token.value == "sequence":
                self._advance()
                self._expect("punct", "<")
                element = self._parse_type()
                self._expect("punct", ">")
                return ast.SequenceType(element)
            if token.value == "unsigned":
                self._advance()
                if self._accept("keyword", "short"):
                    return ast.BasicType("unsigned short")
                self._expect("keyword", "long")
                if self._accept("keyword", "long"):
                    return ast.BasicType("unsigned long long")
                return ast.BasicType("unsigned long")
            if token.value == "long":
                self._advance()
                if self._accept("keyword", "long"):
                    return ast.BasicType("long long")
                return ast.BasicType("long")
            if token.value in _BASIC_SINGLE:
                self._advance()
                return ast.BasicType(token.value)
            if token.value == "void":
                raise self._error("void is only valid as an operation return type")
            raise self._error(f"unsupported type keyword {token.value!r}")
        if token.kind == "ident" or (token.kind == "punct" and token.value == "::"):
            return self._parse_scoped_name()
        raise self._error(f"expected a type, got {token.value or token.kind!r}")

    def _parse_scoped_name(self) -> ast.ScopedName:
        absolute = self._accept("punct", "::") is not None
        parts = [self._expect_ident()]
        while self._accept("punct", "::"):
            parts.append(self._expect_ident())
        return ast.ScopedName(tuple(parts), absolute)


def parse_idl(source: str) -> ast.Specification:
    """Parse IDL source into a :class:`~repro.orb.idl.idlast.Specification`."""
    return _Parser(tokenize(source)).parse_specification()
