"""GIOP location forwarding and the ORB-locator design alternative.

§2 lists "integrating the load distribution mechanism into the ORB itself,
e.g. by replacing the default locator by a locator with an integrated load
distribution strategy" among the designs the paper rejects (for portability
— it "depends on a specific ORB implementation").  The underlying GIOP
mechanism is LOCATION_FORWARD: a server answers a request with a new IOR
and the client ORB transparently retries there.

This module implements both halves so the ablation can compare the
approach fairly:

* servants raise :class:`LocationForward` to redirect a request (handled
  by the ORB core, not sent to the client application);
* :class:`ForwardingAgentServant` is a locator: a fixed "home" reference
  clients bind to once, which forwards every call to the currently best
  replica host according to Winner — load distribution below the naming
  service, exactly the rejected design, now measurable.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import ReproError, TRANSIENT
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.winner.system_manager import SystemManager


class LocationForward(ReproError):
    """Raised by a servant to redirect the current request to ``target``.

    Not an error in the CORBA sense: the client ORB consumes it and
    reissues the request transparently.
    """

    def __init__(self, target: IOR) -> None:
        super().__init__(f"forward to {target}")
        self.target = target


#: client-side bound on chained forwards (defends against forward loops).
MAX_FORWARDS = 8


class ForwardingAgent:
    """Server-side locator state: replica registry + Winner selection.

    Mix into a generated skeleton of the *service's own interface* (so the
    agent's IOR narrows to the service type) via
    :func:`make_forwarding_servant`.
    """

    def __init__(self, system_manager: "SystemManager") -> None:
        self._manager = system_manager
        self._replicas: list[IOR] = []
        self.forwards = 0

    def add_replica(self, ior: IOR) -> None:
        if ior not in self._replicas:
            self._replicas.append(ior)

    def remove_replica(self, ior: IOR) -> None:
        if ior in self._replicas:
            self._replicas.remove(ior)

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def select(self) -> IOR:
        if not self._replicas:
            raise TRANSIENT("forwarding agent has no replicas registered")
        hosts = sorted({ior.host for ior in self._replicas})
        best = self._manager.best_host(candidates=hosts)
        chosen = None
        if best is not None:
            chosen = next(
                (ior for ior in self._replicas if ior.host == best), None
            )
            self._manager.note_placement(best)
        self.forwards += 1
        return chosen if chosen is not None else self._replicas[0]


def make_forwarding_servant(skeleton_class: type) -> type:
    """Build a locator servant class for ``skeleton_class``'s interface.

    Every operation of the interface is implemented as a redirect: the
    client's first call lands on the agent, receives LOCATION_FORWARD to
    the best replica, and the client ORB silently retries there (caching
    nothing — each *new* call to the agent re-selects, so load shifts
    steer subsequent bindings)."""
    namespace: dict = {}

    def __init__(self, system_manager):  # noqa: N807 - class under construction
        ForwardingAgent.__init__(self, system_manager)

    namespace["__init__"] = __init__
    for operation in skeleton_class.__operations__:

        def redirect(self, *args, **kwargs):
            raise LocationForward(self.select())

        redirect.__name__ = operation
        namespace[operation] = redirect
    name = skeleton_class.__name__.replace("Skeleton", "") + "ForwardingAgent"
    return type(name, (ForwardingAgent, skeleton_class), namespace)
