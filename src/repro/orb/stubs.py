"""Client-side stub machinery.

The IDL compiler generates one stub class per interface, derived from
:class:`ObjectStub`.  A stub method marshals its arguments through the ORB
and returns a :class:`~repro.sim.SimFuture`; client code in a simulation
process writes ``result = yield stub.op(args)``.  This mirrors the
synchronous static-invocation path of CORBA (the deferred-synchronous DII
path lives in :mod:`repro.orb.dii`).

The paper's fault-tolerance proxies are "proxy classes derived from the
stub classes"; :func:`repro.ft.proxies.make_ft_proxy` subclasses the
classes defined here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple, TYPE_CHECKING

from repro.errors import BAD_OPERATION
from repro.orb.ior import IOR
from repro.orb.typecodes import TypeCode, TC_VOID

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.orb.dii import Request
    from repro.sim.events import SimFuture

#: user-exception classes by repository id, registered by generated IDL
#: code so replies can rebuild the right exception class at the client.
USER_EXCEPTION_REGISTRY: dict[str, type] = {}

#: generated AOT request builders / argument decoders keyed by the
#: operation's wire signature (OpInfo is a frozen dataclass, so two equal
#: signatures — even from different interfaces — share one coder, which
#: is sound because request bytes depend only on the signature).  The ORB
#: consults these when the marshal_codegen flag is on; see repro.orb.cdr.
GENERATED_REQUEST_ENCODERS: dict["OpInfo", Callable[[tuple], bytes]] = {}
GENERATED_ARG_DECODERS: dict["OpInfo", Callable[[bytes], list]] = {}


def register_generated_ops(
    info: "OpInfo",
    request_encoder: Callable[[tuple], bytes],
    args_decoder: Callable[[bytes], list],
) -> None:
    GENERATED_REQUEST_ENCODERS[info] = request_encoder
    GENERATED_ARG_DECODERS[info] = args_decoder


def generated_request_encoder(info: "OpInfo"):
    return GENERATED_REQUEST_ENCODERS.get(info)


def generated_args_decoder(info: "OpInfo"):
    return GENERATED_ARG_DECODERS.get(info)


def _drop_generated_ops(type_name: str, tc_mentions) -> None:
    """Invalidate op coders whose signature mentions a displaced type
    (called by cdr when a name registration replaces a class)."""
    stale = [
        info
        for info in GENERATED_REQUEST_ENCODERS
        if tc_mentions(info.result, type_name)
        or any(tc_mentions(tc, type_name) for _, tc in info.params)
    ]
    for info in stale:
        del GENERATED_REQUEST_ENCODERS[info]
        GENERATED_ARG_DECODERS.pop(info, None)


#: interface repo id -> set of repo ids it can be narrowed to (itself plus
#: all transitive base interfaces), registered by generated IDL code.
INTERFACE_ANCESTRY: dict[str, frozenset[str]] = {}


def register_user_exception(repo_id: str, cls: type) -> None:
    USER_EXCEPTION_REGISTRY[repo_id] = cls


def register_interface(repo_id: str, base_repo_ids: tuple[str, ...]) -> None:
    """Record an interface's inheritance for narrowing checks."""
    ancestry = {repo_id}
    for base in base_repo_ids:
        ancestry |= INTERFACE_ANCESTRY.get(base, frozenset({base}))
    INTERFACE_ANCESTRY[repo_id] = frozenset(ancestry)


def can_narrow(type_id: str, expected_repo_id: str) -> bool:
    """Whether a reference of ``type_id`` may be narrowed to
    ``expected_repo_id``.  Unknown interfaces narrow optimistically (the
    CORBA unchecked-narrow behaviour); known ones are checked against
    their registered ancestry."""
    if expected_repo_id == ObjectStub.__repo_id__ or type_id == expected_repo_id:
        return True
    ancestry = INTERFACE_ANCESTRY.get(type_id)
    if ancestry is None:
        return True
    return expected_repo_id in ancestry


@dataclass(frozen=True)
class OpInfo:
    """Wire signature of one IDL operation."""

    name: str
    params: Tuple[Tuple[str, TypeCode], ...] = ()
    result: TypeCode = TC_VOID
    raises: Tuple[str, ...] = ()  # user-exception repository ids
    oneway: bool = False

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.params)


class ObjectStub:
    """Base of all generated stubs; usable directly for untyped refs."""

    __repo_id__ = "IDL:omg.org/CORBA/Object:1.0"
    __operations__: dict[str, OpInfo] = {}

    def __init__(self, orb: "Orb", ior: IOR) -> None:
        self._orb = orb
        self._ior = ior
        #: LOCATION_FORWARD target cached per object reference (GIOP
        #: semantics: forwards stick to the reference that received them
        #: and are dropped when the forwarded target fails).
        self._forward_target: Optional[IOR] = None

    # -- identity ------------------------------------------------------------

    @property
    def ior(self) -> IOR:
        return self._ior

    def _is_a(self, repo_id: str) -> bool:
        """Local interface check against the reference's type id."""
        return self._ior.type_id == repo_id or repo_id == ObjectStub.__repo_id__

    def _is_equivalent(self, other: "ObjectStub") -> bool:
        return isinstance(other, ObjectStub) and self._ior == other._ior

    def _rebind(self, ior: IOR) -> None:
        """Point this stub at a different object (used by recovery)."""
        self._ior = ior
        self._forward_target = None

    # -- invocation ------------------------------------------------------------

    def _op_info(self, operation: str) -> OpInfo:
        try:
            return self.__operations__[operation]
        except KeyError:
            raise BAD_OPERATION(
                f"{type(self).__name__} has no operation {operation!r}"
            ) from None

    def _invoke(self, operation: str, args: tuple = ()) -> "SimFuture":
        """Static invocation: marshal, send, return the reply future."""
        return self._orb.invoke(
            self._ior, self._op_info(operation), args, reference=self
        )

    def _create_request(self, operation: str, args: tuple = ()) -> "Request":
        """DII entry point: build a Request object for this operation."""
        from repro.orb.dii import Request

        return Request(
            self._orb, self._ior, self._op_info(operation), args, reference=self
        )

    def _non_existent(self) -> "SimFuture":
        """CORBA ``_non_existent`` ping via LocateRequest; resolves to a
        bool (True = object is gone/unreachable)."""
        return self._orb.locate(self._ior)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self._ior}>"
