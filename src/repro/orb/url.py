"""Interoperable-Naming-Service style object URLs.

CORBA 2.4 introduced human-readable object URLs alongside stringified
IORs:

* ``corbaloc:sim:<host>:<port>/<object_key>`` — directly addresses an
  object in a server process (here: an ORB endpoint on the simulated
  network; the real spec's ``iiop:`` protocol tag becomes ``sim:``);
* ``corbaname:sim:<host>:<port>[/<key>]#<name>`` — addresses a naming
  context and a name to resolve within it.

These make bootstrap references configurable as plain strings — exactly
how omniORB-era deployments pointed clients at their naming service.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

from repro.errors import INV_OBJREF
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb

#: object key used when a corbaname URL omits one (the conventional
#: bootstrap key of the root naming context).
DEFAULT_NAMING_KEY = b"NameService"

_CORBALOC_RE = re.compile(
    r"^corbaloc:sim:(?P<host>[^:/#]+):(?P<port>\d+)/(?P<key>[^#]+)$"
)
_CORBANAME_RE = re.compile(
    r"^corbaname:sim:(?P<host>[^:/#]+):(?P<port>\d+)"
    r"(?:/(?P<key>[^#]+))?#(?P<name>.+)$"
)


def parse_corbaloc(url: str, incarnation: int = 0) -> IOR:
    """Parse a ``corbaloc:`` URL into an (untyped) IOR.

    The URL carries no interface or incarnation information; pass the
    server's incarnation if known, otherwise the reference only works for
    incarnation-0 servers (the common bootstrap case is a well-known port
    bound by the first server process on the host).
    """
    match = _CORBALOC_RE.match(url)
    if match is None:
        raise INV_OBJREF(f"malformed corbaloc URL: {url!r}")
    return IOR(
        type_id="",
        host=match.group("host"),
        port=int(match.group("port")),
        object_key=match.group("key").encode("utf-8"),
        incarnation=incarnation,
    )


def parse_corbaname(url: str, incarnation: int = 0) -> tuple[IOR, str]:
    """Parse a ``corbaname:`` URL into (naming-context IOR, name string)."""
    match = _CORBANAME_RE.match(url)
    if match is None:
        raise INV_OBJREF(f"malformed corbaname URL: {url!r}")
    key = match.group("key")
    context = IOR(
        type_id="IDL:CosNaming/NamingContext:1.0",
        host=match.group("host"),
        port=int(match.group("port")),
        object_key=key.encode("utf-8") if key else DEFAULT_NAMING_KEY,
        incarnation=incarnation,
    )
    return context, match.group("name")


def string_to_object(orb: "Orb", text: str) -> IOR:
    """Extended ``string_to_object``: IOR strings and corbaloc URLs."""
    if text.startswith("IOR:"):
        return IOR.from_string(text)
    if text.startswith("corbaloc:"):
        return parse_corbaloc(text)
    raise INV_OBJREF(
        f"unsupported object reference format: {text[:24]!r} "
        "(expected IOR: or corbaloc:)"
    )


def resolve_corbaname(orb: "Orb", url: str):
    """Generator: resolve a ``corbaname:`` URL to the named object's IOR.

    Usage inside a simulation process::

        ior = yield from resolve_corbaname(orb, "corbaname:sim:ws00:7900#svc")
    """
    from repro.services.naming import idl as naming_idl
    from repro.services.naming.names import to_name

    context_ior, name = parse_corbaname(url)
    stub = orb.stub(context_ior, naming_idl.NamingContextStub)
    result = yield stub.resolve(to_name(name))
    return result
