"""Common Data Representation (CDR) marshalling.

Big-endian, aligned encoding of typed values, as GIOP messages carry them.
The byte counts produced here are *the* message sizes the simulated network
charges for, so marshalling is implemented for real rather than mocked.

Two layers:

* primitive streams (:class:`CdrOutputStream` / :class:`CdrInputStream`)
  with CDR alignment rules;
* typed value coding (:meth:`CdrOutputStream.write_value` /
  :meth:`CdrInputStream.read_value`) driven by
  :class:`~repro.orb.typecodes.TypeCode`, including a self-describing
  ``any`` (:func:`encode_any` / :func:`decode_any`).

Numeric sequences take a vectorized NumPy fast path: a ``sequence<double>``
is written as one buffer, not element-by-element — the optimization guides'
"vectorize the hot loop" rule applied to marshalling, which *is* the hot
loop of an ORB.

Two caches take re-walking out of the hot loop:

* **encoder/decoder plans** — :class:`TypeCode` is a frozen (hashable)
  dataclass, so the kind-dispatch over a typecode tree can be compiled
  once into nested closures and memoized per typecode
  (:func:`encoder_plan` / :func:`decoder_plan`).  ``write_value`` /
  ``read_value`` consult the plan cache unless it is disabled via
  :func:`set_plan_cache_enabled` (the parity tests flip it);
* **:class:`AnyEncodeMemo`** — callers that repeatedly encode the same
  logical value (the checkpoint path encodes the server state after
  every call, and most calls barely change it) get the previous bytes
  back after a structural equality check instead of a full re-encode.
"""

from __future__ import annotations

import struct as _struct
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import CdrError
from repro.orb.ior import IOR
from repro.orb.typecodes import (
    TCKind,
    TypeCode,
    TC_ANY,
    TC_BOOLEAN,
    TC_DOUBLE,
    TC_LONGLONG,
    TC_NULL,
    TC_OCTETS,
    TC_STRING,
    sequence,
)

_PRIMITIVE_FORMATS: dict[TCKind, tuple[str, int]] = {
    TCKind.BOOLEAN: (">B", 1),
    TCKind.OCTET: (">B", 1),
    TCKind.SHORT: (">h", 2),
    TCKind.USHORT: (">H", 2),
    TCKind.LONG: (">i", 4),
    TCKind.ULONG: (">I", 4),
    TCKind.LONGLONG: (">q", 8),
    TCKind.ULONGLONG: (">Q", 8),
    TCKind.FLOAT: (">f", 4),
    TCKind.DOUBLE: (">d", 8),
}

_NUMPY_SEQ_DTYPES: dict[TCKind, str] = {
    TCKind.SHORT: ">i2",
    TCKind.USHORT: ">u2",
    TCKind.LONG: ">i4",
    TCKind.ULONG: ">u4",
    TCKind.LONGLONG: ">i8",
    TCKind.ULONGLONG: ">u8",
    TCKind.FLOAT: ">f4",
    TCKind.DOUBLE: ">f8",
}

#: struct/enum/union classes registered by generated IDL code, keyed by
#: type name, so decoding can rebuild the user-visible Python objects.
_STRUCT_REGISTRY: dict[str, type] = {}
_ENUM_REGISTRY: dict[str, type] = {}
_UNION_REGISTRY: dict[str, type] = {}


def register_struct_class(name: str, cls: type) -> None:
    _invalidate_generated(name, _STRUCT_REGISTRY.get(name), cls)
    _STRUCT_REGISTRY[name] = cls


def register_enum_class(name: str, cls: type) -> None:
    _invalidate_generated(name, _ENUM_REGISTRY.get(name), cls)
    _ENUM_REGISTRY[name] = cls


def register_union_class(name: str, cls: type) -> None:
    _invalidate_generated(name, _UNION_REGISTRY.get(name), cls)
    _UNION_REGISTRY[name] = cls


class GenericUnion:
    """Decoded union whose Python class is not registered locally."""

    def __init__(self, __tc_name__: str, discriminator, value) -> None:
        self.__tc_name__ = __tc_name__
        self.discriminator = discriminator
        self.value = value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GenericUnion)
            and self.__tc_name__ == other.__tc_name__
            and self.discriminator == other.discriminator
            and self.value == other.value
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.__tc_name__}(discriminator={self.discriminator!r}, "
            f"value={self.value!r})"
        )


class GenericStruct:
    """Decoded struct whose Python class is not registered locally."""

    def __init__(self, __tc_name__: str, **fields: Any) -> None:
        self.__tc_name__ = __tc_name__
        self.__dict__.update(fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GenericStruct) and self.__dict__ == other.__dict__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            f"{k}={v!r}" for k, v in self.__dict__.items() if k != "__tc_name__"
        )
        return f"{self.__tc_name__}({body})"


class CdrOutputStream:
    """An aligned big-endian output buffer."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    # -- primitives --------------------------------------------------------

    def align(self, boundary: int) -> None:
        pad = (-len(self._buffer)) % boundary
        if pad:
            self._buffer.extend(b"\x00" * pad)

    def write_raw(self, data: bytes) -> None:
        self._buffer.extend(data)

    def write_primitive(self, kind: TCKind, value: Any) -> None:
        fmt, size = _PRIMITIVE_FORMATS[kind]
        self.align(size)
        try:
            self._buffer.extend(_struct.pack(fmt, value))
        except (_struct.error, TypeError) as exc:
            raise CdrError(f"cannot encode {value!r} as {kind.name}: {exc}") from exc

    def write_boolean(self, value: bool) -> None:
        self.write_primitive(TCKind.BOOLEAN, 1 if value else 0)

    def write_octet(self, value: int) -> None:
        self.write_primitive(TCKind.OCTET, value)

    def write_short(self, value: int) -> None:
        self.write_primitive(TCKind.SHORT, value)

    def write_ushort(self, value: int) -> None:
        self.write_primitive(TCKind.USHORT, value)

    def write_long(self, value: int) -> None:
        self.write_primitive(TCKind.LONG, value)

    def write_ulong(self, value: int) -> None:
        self.write_primitive(TCKind.ULONG, value)

    def write_longlong(self, value: int) -> None:
        self.write_primitive(TCKind.LONGLONG, value)

    def write_ulonglong(self, value: int) -> None:
        self.write_primitive(TCKind.ULONGLONG, value)

    def write_float(self, value: float) -> None:
        self.write_primitive(TCKind.FLOAT, value)

    def write_double(self, value: float) -> None:
        self.write_primitive(TCKind.DOUBLE, value)

    def write_string(self, value: str) -> None:
        """CDR string: ulong byte length including NUL, bytes, NUL."""
        if not isinstance(value, str):
            raise CdrError(f"expected str, got {type(value).__name__}")
        data = value.encode("utf-8")
        self.write_ulong(len(data) + 1)
        self._buffer.extend(data)
        self._buffer.append(0)

    def write_octets(self, value: bytes) -> None:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise CdrError(f"expected bytes, got {type(value).__name__}")
        data = bytes(value)
        self.write_ulong(len(data))
        self._buffer.extend(data)

    def write_ior(self, ior: IOR) -> None:
        if not isinstance(ior, IOR):
            raise CdrError(f"expected IOR, got {type(ior).__name__}")
        self.write_string(ior.type_id)
        self.write_string(ior.host)
        self.write_ulong(ior.port)
        self.write_octets(ior.object_key)
        self.write_ulong(ior.incarnation)

    # -- typed values -----------------------------------------------------------

    def write_value(self, tc: TypeCode, value: Any) -> None:
        if _MARSHAL_CODEGEN_ENABLED:
            encoder = _GENERATED_ENCODERS.get(tc)
            if encoder is not None:
                mark = len(self._buffer)
                try:
                    encoder(self, value)
                # analysis: ignore[EXC002]: any generated-path failure rolls the buffer back and retries interpreted, which raises the canonical CdrError
                except Exception:  # noqa: BLE001
                    del self._buffer[mark:]
                    _CODEGEN_STATS["encoder_fallbacks"] += 1
                else:
                    _CODEGEN_STATS["encoder_hits"] += 1
                    return
        if _PLAN_CACHE_ENABLED:
            encoder_plan(tc)(self, value)
        else:
            self._write_value_slow(tc, value)

    def _write_value_slow(self, tc: TypeCode, value: Any) -> None:
        kind = tc.kind
        if kind in (TCKind.NULL, TCKind.VOID):
            if value is not None:
                raise CdrError(f"{kind.name} carries no value, got {value!r}")
            return
        if kind is TCKind.BOOLEAN:
            self.write_boolean(bool(value))
            return
        if kind in _PRIMITIVE_FORMATS:
            if tc.is_integer:
                self._check_int(tc, value)
            self.write_primitive(kind, value)
            return
        if kind is TCKind.STRING:
            self.write_string(value)
            return
        if kind is TCKind.OCTETS:
            self.write_octets(value)
            return
        if kind is TCKind.SEQUENCE:
            self._write_sequence(tc, value)
            return
        if kind is TCKind.ARRAY:
            self._write_array(tc, value)
            return
        if kind in (TCKind.STRUCT, TCKind.EXCEPTION):
            self._write_struct(tc, value)
            return
        if kind is TCKind.ENUM:
            self._write_enum(tc, value)
            return
        if kind is TCKind.UNION:
            self._write_union(tc, value)
            return
        if kind is TCKind.OBJREF:
            self.write_ior(value)
            return
        if kind is TCKind.ANY:
            self.write_any(value)
            return
        raise CdrError(f"cannot encode TypeCode kind {kind.name}")

    def _check_int(self, tc: TypeCode, value: Any) -> None:
        if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
            raise CdrError(f"expected integer for {tc!r}, got {value!r}")
        lo, hi = tc.integer_bounds()
        if not lo <= int(value) <= hi:
            raise CdrError(f"{value} out of range for {tc!r} [{lo}, {hi}]")

    def _write_sequence(self, tc: TypeCode, value: Any) -> None:
        assert tc.content is not None
        dtype = _NUMPY_SEQ_DTYPES.get(tc.content.kind)
        if dtype is not None:
            arr = np.asarray(value)
            if arr.ndim != 1:
                raise CdrError(
                    f"sequence<{tc.content!r}> expects a 1-D value, got shape {arr.shape}"
                )
            self.write_ulong(arr.shape[0])
            _, size = _PRIMITIVE_FORMATS[tc.content.kind]
            self.align(size)
            try:
                self._buffer.extend(arr.astype(dtype, copy=False).tobytes())
            except (TypeError, ValueError) as exc:
                raise CdrError(f"bad element in sequence: {exc}") from exc
            return
        items = list(value)
        self.write_ulong(len(items))
        for item in items:
            self.write_value(tc.content, item)

    def _write_array(self, tc: TypeCode, value: Any) -> None:
        assert tc.content is not None
        items = list(value)
        if len(items) != tc.length:
            raise CdrError(
                f"array of length {tc.length} got {len(items)} elements"
            )
        for item in items:
            self.write_value(tc.content, item)

    def _write_struct(self, tc: TypeCode, value: Any) -> None:
        for name, field_tc in tc.fields:
            if isinstance(value, dict):
                if name not in value:
                    raise CdrError(f"struct {tc.name} value missing field {name!r}")
                field_value = value[name]
            else:
                try:
                    field_value = getattr(value, name)
                except AttributeError:
                    raise CdrError(
                        f"struct {tc.name} value {value!r} missing field {name!r}"
                    ) from None
            self.write_value(field_tc, field_value)

    def _write_enum(self, tc: TypeCode, value: Any) -> None:
        if isinstance(value, str):
            try:
                index = tc.members.index(value)
            except ValueError:
                raise CdrError(f"{value!r} is not a member of enum {tc.name}") from None
        elif hasattr(value, "value") and isinstance(getattr(value, "value"), int):
            index = value.value
        elif isinstance(value, (int, np.integer)):
            index = int(value)
        else:
            raise CdrError(f"cannot encode {value!r} as enum {tc.name}")
        if not 0 <= index < len(tc.members):
            raise CdrError(f"enum {tc.name} index {index} out of range")
        self.write_ulong(index)

    def _write_union(self, tc: TypeCode, value: Any) -> None:
        try:
            discriminator = value.discriminator
            member = value.value
        except AttributeError:
            raise CdrError(
                f"union {tc.name} value needs .discriminator/.value, "
                f"got {value!r}"
            ) from None
        case_index = _union_case_index(tc, discriminator)
        if case_index is None:
            raise CdrError(
                f"discriminator {discriminator!r} matches no case of union "
                f"{tc.name} and there is no default"
            )
        assert tc.content is not None
        self.write_value(tc.content, discriminator)
        self.write_value(tc.fields[case_index][1], member)

    # -- any -------------------------------------------------------------------

    def write_typecode(self, tc: TypeCode) -> None:
        self.write_octet(int(tc.kind))
        kind = tc.kind
        if kind is TCKind.SEQUENCE:
            assert tc.content is not None
            self.write_typecode(tc.content)
        elif kind is TCKind.ARRAY:
            assert tc.content is not None
            self.write_typecode(tc.content)
            self.write_ulong(tc.length)
        elif kind in (TCKind.STRUCT, TCKind.EXCEPTION):
            self.write_string(tc.name)
            self.write_ulong(len(tc.fields))
            for name, field_tc in tc.fields:
                self.write_string(name)
                self.write_typecode(field_tc)
        elif kind is TCKind.ENUM:
            self.write_string(tc.name)
            self.write_ulong(len(tc.members))
            for member in tc.members:
                self.write_string(member)
        elif kind is TCKind.OBJREF:
            self.write_string(tc.name)
        elif kind is TCKind.UNION:
            self.write_string(tc.name)
            assert tc.content is not None
            self.write_typecode(tc.content)
            self.write_long(tc.default_index)
            self.write_ulong(len(tc.fields))
            for (field_name, field_tc), label in zip(tc.fields, tc.labels):
                self.write_any(label)
                self.write_string(field_name)
                self.write_typecode(field_tc)

    def write_any(self, value: Any) -> None:
        tc, coerced = infer_typecode(value)
        self.write_typecode(tc)
        self.write_value(tc, coerced)


class CdrInputStream:
    """Aligned big-endian reader over a bytes buffer."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def remaining(self) -> int:
        return len(self._data) - self._pos

    # -- primitives ---------------------------------------------------------

    def align(self, boundary: int) -> None:
        self._pos += (-self._pos) % boundary

    def read_raw(self, count: int) -> bytes:
        if self._pos + count > len(self._data):
            raise CdrError(
                f"buffer underrun: need {count} bytes at {self._pos}, "
                f"have {len(self._data)}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_primitive(self, kind: TCKind) -> Any:
        fmt, size = _PRIMITIVE_FORMATS[kind]
        self.align(size)
        (value,) = _struct.unpack(fmt, self.read_raw(size))
        return value

    def read_boolean(self) -> bool:
        return bool(self.read_primitive(TCKind.BOOLEAN))

    def read_octet(self) -> int:
        return self.read_primitive(TCKind.OCTET)

    def read_short(self) -> int:
        return self.read_primitive(TCKind.SHORT)

    def read_ushort(self) -> int:
        return self.read_primitive(TCKind.USHORT)

    def read_long(self) -> int:
        return self.read_primitive(TCKind.LONG)

    def read_ulong(self) -> int:
        return self.read_primitive(TCKind.ULONG)

    def read_longlong(self) -> int:
        return self.read_primitive(TCKind.LONGLONG)

    def read_ulonglong(self) -> int:
        return self.read_primitive(TCKind.ULONGLONG)

    def read_float(self) -> float:
        return self.read_primitive(TCKind.FLOAT)

    def read_double(self) -> float:
        return self.read_primitive(TCKind.DOUBLE)

    def read_string(self) -> str:
        length = self.read_ulong()
        if length == 0:
            raise CdrError("string length 0 is invalid (must include NUL)")
        data = self.read_raw(length)
        if data[-1] != 0:
            raise CdrError("string is not NUL-terminated")
        return data[:-1].decode("utf-8")

    def read_octets(self) -> bytes:
        length = self.read_ulong()
        return self.read_raw(length)

    def read_ior(self) -> IOR:
        type_id = self.read_string()
        host = self.read_string()
        port = self.read_ulong()
        object_key = self.read_octets()
        incarnation = self.read_ulong()
        return IOR(type_id, host, port, object_key, incarnation)

    # -- typed values ------------------------------------------------------------

    def read_value(self, tc: TypeCode) -> Any:
        if _MARSHAL_CODEGEN_ENABLED:
            decoder = _GENERATED_DECODERS.get(tc)
            if decoder is not None:
                mark = self._pos
                try:
                    value = decoder(self)
                # analysis: ignore[EXC002]: any generated-path failure rewinds the cursor and retries interpreted, which raises the canonical CdrError
                except Exception:  # noqa: BLE001
                    self._pos = mark
                    _CODEGEN_STATS["decoder_fallbacks"] += 1
                else:
                    _CODEGEN_STATS["decoder_hits"] += 1
                    return value
        if _PLAN_CACHE_ENABLED:
            return decoder_plan(tc)(self)
        return self._read_value_slow(tc)

    def _read_value_slow(self, tc: TypeCode) -> Any:
        kind = tc.kind
        if kind in (TCKind.NULL, TCKind.VOID):
            return None
        if kind is TCKind.BOOLEAN:
            return self.read_boolean()
        if kind in _PRIMITIVE_FORMATS:
            return self.read_primitive(kind)
        if kind is TCKind.STRING:
            return self.read_string()
        if kind is TCKind.OCTETS:
            return self.read_octets()
        if kind is TCKind.SEQUENCE:
            return self._read_sequence(tc)
        if kind is TCKind.ARRAY:
            assert tc.content is not None
            return [self.read_value(tc.content) for _ in range(tc.length)]
        if kind in (TCKind.STRUCT, TCKind.EXCEPTION):
            return self._read_struct(tc)
        if kind is TCKind.ENUM:
            return self._read_enum(tc)
        if kind is TCKind.UNION:
            return self._read_union(tc)
        if kind is TCKind.OBJREF:
            return self.read_ior()
        if kind is TCKind.ANY:
            return self.read_any()
        raise CdrError(f"cannot decode TypeCode kind {kind.name}")

    def _read_sequence(self, tc: TypeCode) -> Any:
        assert tc.content is not None
        length = self.read_ulong()
        dtype = _NUMPY_SEQ_DTYPES.get(tc.content.kind)
        if dtype is not None:
            _, size = _PRIMITIVE_FORMATS[tc.content.kind]
            self.align(size)
            raw = self.read_raw(length * size)
            # Native byte order for downstream numerics.
            return np.frombuffer(raw, dtype=dtype).astype(dtype[1:], copy=True)
        return [self.read_value(tc.content) for _ in range(length)]

    def _read_struct(self, tc: TypeCode) -> Any:
        fields = {name: self.read_value(ftc) for name, ftc in tc.fields}
        cls = _STRUCT_REGISTRY.get(tc.name)
        if cls is not None:
            return cls(**fields)
        return GenericStruct(tc.name, **fields)

    def _read_enum(self, tc: TypeCode) -> Any:
        index = self.read_ulong()
        if not 0 <= index < len(tc.members):
            raise CdrError(f"enum {tc.name} index {index} out of range")
        cls = _ENUM_REGISTRY.get(tc.name)
        if cls is not None:
            return cls(index)
        return tc.members[index]

    def _read_union(self, tc: TypeCode) -> Any:
        assert tc.content is not None
        discriminator = self.read_value(tc.content)
        case_index = _union_case_index(tc, discriminator)
        if case_index is None:
            raise CdrError(
                f"wire discriminator {discriminator!r} matches no case of "
                f"union {tc.name}"
            )
        value = self.read_value(tc.fields[case_index][1])
        cls = _UNION_REGISTRY.get(tc.name)
        if cls is not None:
            return cls(discriminator, value)
        return GenericUnion(tc.name, discriminator, value)

    # -- any ----------------------------------------------------------------------

    def read_typecode(self) -> TypeCode:
        try:
            kind = TCKind(self.read_octet())
        except ValueError as exc:
            raise CdrError(f"unknown TypeCode kind byte: {exc}") from exc
        if kind is TCKind.SEQUENCE:
            return TypeCode(kind, content=self.read_typecode())
        if kind is TCKind.ARRAY:
            content = self.read_typecode()
            return TypeCode(kind, content=content, length=self.read_ulong())
        if kind in (TCKind.STRUCT, TCKind.EXCEPTION):
            name = self.read_string()
            count = self.read_ulong()
            fields = tuple(
                (self.read_string(), self.read_typecode()) for _ in range(count)
            )
            return TypeCode(kind, name=name, fields=fields)
        if kind is TCKind.ENUM:
            name = self.read_string()
            count = self.read_ulong()
            members = tuple(self.read_string() for _ in range(count))
            return TypeCode(kind, name=name, members=members)
        if kind is TCKind.OBJREF:
            return TypeCode(kind, name=self.read_string())
        if kind is TCKind.UNION:
            name = self.read_string()
            discriminator = self.read_typecode()
            default_index = self.read_long()
            count = self.read_ulong()
            labels = []
            fields = []
            for _ in range(count):
                labels.append(self.read_any())
                field_name = self.read_string()
                fields.append((field_name, self.read_typecode()))
            return TypeCode(
                kind,
                name=name,
                content=discriminator,
                fields=tuple(fields),
                labels=tuple(labels),
                default_index=default_index,
            )
        return TypeCode(kind)

    def read_any(self) -> Any:
        tc = self.read_typecode()
        value = self.read_value(tc)
        return _postprocess_any(tc, value)


def _union_case_index(tc: TypeCode, discriminator: Any) -> Optional[int]:
    """The case index a discriminator selects (explicit label before the
    default branch), or None."""
    for index, label in enumerate(tc.labels):
        if index == tc.default_index:
            continue
        if label == discriminator:
            return index
    if tc.default_index >= 0:
        return tc.default_index
    return None


# -- dynamic typing for any -------------------------------------------------------

_NDARRAY_TC = TypeCode(
    TCKind.STRUCT,
    name="__ndarray__",
    fields=(
        ("shape", sequence(TypeCode(TCKind.ULONGLONG))),
        ("data", sequence(TC_DOUBLE)),
    ),
)

_DICT_ITEM_TC = TypeCode(
    TCKind.STRUCT,
    name="__dict_item__",
    fields=(("key", TC_ANY), ("value", TC_ANY)),
)

_DICT_TC = TypeCode(
    TCKind.STRUCT,
    name="__dict__",
    fields=(("items", sequence(_DICT_ITEM_TC)),),
)


def infer_typecode(value: Any) -> tuple[TypeCode, Any]:
    """Choose a TypeCode for an arbitrary Python value.

    Returns ``(typecode, coerced_value)`` — e.g. an int-dtype ndarray is
    coerced to ``sequence<longlong>`` element values.
    """
    if value is None:
        return TC_NULL, None
    if isinstance(value, bool) or isinstance(value, np.bool_):
        return TC_BOOLEAN, bool(value)
    if isinstance(value, (int, np.integer)):
        return TC_LONGLONG, int(value)
    if isinstance(value, (float, np.floating)):
        return TC_DOUBLE, float(value)
    if isinstance(value, str):
        return TC_STRING, value
    if isinstance(value, (bytes, bytearray, memoryview)):
        return TC_OCTETS, bytes(value)
    if isinstance(value, IOR):
        return TypeCode(TCKind.OBJREF, name=value.type_id), value
    if isinstance(value, np.ndarray):
        flat = np.ascontiguousarray(value, dtype=np.float64).reshape(-1)
        return _NDARRAY_TC, {"shape": list(value.shape), "data": flat}
    if isinstance(value, dict):
        items = [{"key": k, "value": v} for k, v in value.items()]
        return _DICT_TC, {"items": items}
    if isinstance(value, (list, tuple)):
        return sequence(TC_ANY), list(value)
    raise CdrError(
        f"cannot infer a TypeCode for {type(value).__name__}; "
        "supported: None, bool, int, float, str, bytes, IOR, ndarray, "
        "dict, list, tuple"
    )


def _postprocess_any(tc: TypeCode, value: Any) -> Any:
    """Rebuild native Python objects for the reserved struct encodings."""
    if tc.name == "__ndarray__":
        shape = tuple(int(s) for s in np.asarray(value.shape).reshape(-1))
        return np.asarray(value.data, dtype=np.float64).reshape(shape)
    if tc.name == "__dict__":
        return {item.key: item.value for item in value.items}
    return value


def encode_any(value: Any) -> bytes:
    """Encode an arbitrary value self-describingly (used by the checkpoint
    storage service to hold "arbitrary values")."""
    stream = CdrOutputStream()
    stream.write_any(value)
    return stream.getvalue()


def decode_any(data: bytes) -> Any:
    stream = CdrInputStream(data)
    value = stream.read_any()
    if stream.remaining():
        raise CdrError(f"{stream.remaining()} trailing bytes after any value")
    return value


# -- encoder/decoder plan cache ---------------------------------------------------
#
# A plan is the kind-dispatch over one TypeCode tree compiled into nested
# closures: sub-typecode plans are resolved once at compile time, so writing
# a struct of sequences touches no dispatch table per element.  TypeCode is
# a frozen dataclass, hence hashable, hence a cache key.

_PLAN_CACHE_ENABLED = True
_ENCODER_PLANS: dict[TypeCode, Callable] = {}
_DECODER_PLANS: dict[TypeCode, Callable] = {}
_PLAN_STATS = {
    "encoder_plans_compiled": 0,
    "decoder_plans_compiled": 0,
    "encoder_plan_hits": 0,
    "decoder_plan_hits": 0,
    "any_memo_hits": 0,
    "any_memo_misses": 0,
}


def plan_cache_enabled() -> bool:
    return _PLAN_CACHE_ENABLED


def set_plan_cache_enabled(enabled: bool) -> None:
    """Globally toggle the plan cache (``write_value``/``read_value`` fall
    back to the uncached kind-dispatch when off).  Exists for the cache
    on/off parity tests and for apples-to-apples marshalling benches."""
    global _PLAN_CACHE_ENABLED
    _PLAN_CACHE_ENABLED = bool(enabled)


def clear_plan_cache() -> None:
    """Drop every compiled plan and zero the statistics."""
    _ENCODER_PLANS.clear()
    _DECODER_PLANS.clear()
    for key in _PLAN_STATS:
        _PLAN_STATS[key] = 0


def plan_cache_stats() -> dict:
    """A snapshot of plan-cache and any-memo counters."""
    return dict(_PLAN_STATS)


def encoder_plan(tc: TypeCode) -> Callable[[CdrOutputStream, Any], None]:
    plan = _ENCODER_PLANS.get(tc)
    if plan is None:
        plan = _compile_encoder(tc)
        _ENCODER_PLANS[tc] = plan
        _PLAN_STATS["encoder_plans_compiled"] += 1
    else:
        _PLAN_STATS["encoder_plan_hits"] += 1
    return plan


def decoder_plan(tc: TypeCode) -> Callable[[CdrInputStream], Any]:
    plan = _DECODER_PLANS.get(tc)
    if plan is None:
        plan = _compile_decoder(tc)
        _DECODER_PLANS[tc] = plan
        _PLAN_STATS["decoder_plans_compiled"] += 1
    else:
        _PLAN_STATS["decoder_plan_hits"] += 1
    return plan


def _compile_encoder(tc: TypeCode) -> Callable[[CdrOutputStream, Any], None]:
    kind = tc.kind
    if kind in (TCKind.NULL, TCKind.VOID):

        def write_null(stream, value, _kind=kind):
            if value is not None:
                raise CdrError(f"{_kind.name} carries no value, got {value!r}")

        return write_null
    if kind is TCKind.BOOLEAN:
        return lambda stream, value: stream.write_boolean(bool(value))
    if kind in _PRIMITIVE_FORMATS:
        if tc.is_integer:

            def write_int(stream, value, _tc=tc, _kind=kind):
                stream._check_int(_tc, value)
                stream.write_primitive(_kind, value)

            return write_int
        return lambda stream, value, _kind=kind: stream.write_primitive(
            _kind, value
        )
    if kind is TCKind.STRING:
        return lambda stream, value: stream.write_string(value)
    if kind is TCKind.OCTETS:
        return lambda stream, value: stream.write_octets(value)
    if kind is TCKind.SEQUENCE:
        assert tc.content is not None
        content = tc.content
        dtype = _NUMPY_SEQ_DTYPES.get(content.kind)
        if dtype is not None:
            _, size = _PRIMITIVE_FORMATS[content.kind]

            def write_numeric_seq(
                stream, value, _content=content, _dtype=dtype, _size=size
            ):
                arr = np.asarray(value)
                if arr.ndim != 1:
                    raise CdrError(
                        f"sequence<{_content!r}> expects a 1-D value, "
                        f"got shape {arr.shape}"
                    )
                stream.write_ulong(arr.shape[0])
                stream.align(_size)
                try:
                    stream._buffer.extend(arr.astype(_dtype, copy=False).tobytes())
                except (TypeError, ValueError) as exc:
                    raise CdrError(f"bad element in sequence: {exc}") from exc

            return write_numeric_seq
        item_plan = encoder_plan(content)

        def write_seq(stream, value, _item_plan=item_plan):
            items = list(value)
            stream.write_ulong(len(items))
            for item in items:
                _item_plan(stream, item)

        return write_seq
    if kind is TCKind.ARRAY:
        assert tc.content is not None
        item_plan = encoder_plan(tc.content)

        def write_array(stream, value, _item_plan=item_plan, _length=tc.length):
            items = list(value)
            if len(items) != _length:
                raise CdrError(
                    f"array of length {_length} got {len(items)} elements"
                )
            for item in items:
                _item_plan(stream, item)

        return write_array
    if kind in (TCKind.STRUCT, TCKind.EXCEPTION):
        field_plans = tuple(
            (name, encoder_plan(field_tc)) for name, field_tc in tc.fields
        )

        def write_struct(stream, value, _plans=field_plans, _name=tc.name):
            if isinstance(value, dict):
                for field_name, field_plan in _plans:
                    if field_name not in value:
                        raise CdrError(
                            f"struct {_name} value missing field {field_name!r}"
                        )
                    field_plan(stream, value[field_name])
                return
            for field_name, field_plan in _plans:
                try:
                    field_value = getattr(value, field_name)
                except AttributeError:
                    raise CdrError(
                        f"struct {_name} value {value!r} missing field "
                        f"{field_name!r}"
                    ) from None
                field_plan(stream, field_value)

        return write_struct
    if kind is TCKind.ENUM:
        return lambda stream, value, _tc=tc: stream._write_enum(_tc, value)
    if kind is TCKind.UNION:
        # Case selection depends on the runtime discriminator; the member
        # write below re-enters write_value and hits the member's plan.
        return lambda stream, value, _tc=tc: stream._write_union(_tc, value)
    if kind is TCKind.OBJREF:
        return lambda stream, value: stream.write_ior(value)
    if kind is TCKind.ANY:
        return lambda stream, value: stream.write_any(value)

    def write_unsupported(stream, value, _kind=kind):
        raise CdrError(f"cannot encode TypeCode kind {_kind.name}")

    return write_unsupported


def _compile_decoder(tc: TypeCode) -> Callable[[CdrInputStream], Any]:
    kind = tc.kind
    if kind in (TCKind.NULL, TCKind.VOID):
        return lambda stream: None
    if kind is TCKind.BOOLEAN:
        return lambda stream: stream.read_boolean()
    if kind in _PRIMITIVE_FORMATS:
        return lambda stream, _kind=kind: stream.read_primitive(_kind)
    if kind is TCKind.STRING:
        return lambda stream: stream.read_string()
    if kind is TCKind.OCTETS:
        return lambda stream: stream.read_octets()
    if kind is TCKind.SEQUENCE:
        assert tc.content is not None
        content = tc.content
        dtype = _NUMPY_SEQ_DTYPES.get(content.kind)
        if dtype is not None:
            _, size = _PRIMITIVE_FORMATS[content.kind]

            def read_numeric_seq(stream, _dtype=dtype, _size=size):
                length = stream.read_ulong()
                stream.align(_size)
                raw = stream.read_raw(length * _size)
                return np.frombuffer(raw, dtype=_dtype).astype(
                    _dtype[1:], copy=True
                )

            return read_numeric_seq
        item_plan = decoder_plan(content)

        def read_seq(stream, _item_plan=item_plan):
            return [_item_plan(stream) for _ in range(stream.read_ulong())]

        return read_seq
    if kind is TCKind.ARRAY:
        assert tc.content is not None
        item_plan = decoder_plan(tc.content)

        def read_array(stream, _item_plan=item_plan, _length=tc.length):
            return [_item_plan(stream) for _ in range(_length)]

        return read_array
    if kind in (TCKind.STRUCT, TCKind.EXCEPTION):
        field_plans = tuple(
            (name, decoder_plan(field_tc)) for name, field_tc in tc.fields
        )

        def read_struct(stream, _plans=field_plans, _name=tc.name):
            fields = {name: plan(stream) for name, plan in _plans}
            # Class lookup stays at decode time: registration may happen
            # after the plan was compiled.
            cls = _STRUCT_REGISTRY.get(_name)
            if cls is not None:
                return cls(**fields)
            return GenericStruct(_name, **fields)

        return read_struct
    if kind is TCKind.ENUM:
        return lambda stream, _tc=tc: stream._read_enum(_tc)
    if kind is TCKind.UNION:
        return lambda stream, _tc=tc: stream._read_union(_tc)
    if kind is TCKind.OBJREF:
        return lambda stream: stream.read_ior()
    if kind is TCKind.ANY:
        return lambda stream: stream.read_any()

    def read_unsupported(stream, _kind=kind):
        raise CdrError(f"cannot decode TypeCode kind {_kind.name}")

    return read_unsupported


# -- AOT marshal codegen registry ---------------------------------------------------
#
# One level above the plan cache: the IDL compiler emits flat per-type
# ``encode_<Type>``/``decode_<Type>`` functions (no typecode walk, no
# per-field closure hop) and registers them here, keyed by TypeCode.
# ``write_value``/``read_value`` consult this registry first when the
# ``marshal_codegen`` runtime flag is on; any exception from a generated
# coder rolls the stream back and falls through to the interpreted path,
# so error semantics at the API boundary are unchanged.

_MARSHAL_CODEGEN_ENABLED = False
_GENERATED_ENCODERS: dict[TypeCode, Callable[[CdrOutputStream, Any], None]] = {}
_GENERATED_DECODERS: dict[TypeCode, Callable[[CdrInputStream], Any]] = {}
_CODEGEN_STATS: dict[str, Any] = {
    "modules_generated": 0,
    "generation_seconds": 0.0,
    "encoder_hits": 0,
    "encoder_fallbacks": 0,
    "decoder_hits": 0,
    "decoder_fallbacks": 0,
    "request_encoder_hits": 0,
    "request_encoder_fallbacks": 0,
    "arg_decoder_hits": 0,
    "arg_decoder_fallbacks": 0,
    "dispatch_hits": 0,
    "dispatch_fallbacks": 0,
    "reply_encode_fallbacks": 0,
}


class FastPathUnavailable(Exception):
    """Raised by a generated skeleton dispatch function when it cannot
    serve a request (e.g. undecodable arguments).  The ORB falls back to
    the interpreted dispatch, which produces the canonical error — the
    fast path never calls the servant method before this is settled, so
    no side effect runs twice."""


def marshal_codegen_enabled() -> bool:
    return _MARSHAL_CODEGEN_ENABLED


def set_marshal_codegen_enabled(enabled: bool) -> None:
    """Globally toggle the generated-coder fast path.  Registration is
    unconditional (generated modules register at import); this flag only
    gates whether the registries are consulted."""
    global _MARSHAL_CODEGEN_ENABLED
    _MARSHAL_CODEGEN_ENABLED = bool(enabled)


def reset_marshal_codegen_stats() -> None:
    for key in _CODEGEN_STATS:
        _CODEGEN_STATS[key] = 0.0 if key == "generation_seconds" else 0


def codegen_count(stat: str) -> None:
    _CODEGEN_STATS[stat] += 1


def note_generated_module(seconds: float) -> None:
    """Record one fast-path module generation (called by compile_idl)."""
    _CODEGEN_STATS["modules_generated"] += 1
    _CODEGEN_STATS["generation_seconds"] += seconds


def marshal_codegen_stats() -> dict:
    """A snapshot of generated-path counters plus registry sizes."""
    stats: dict[str, Any] = {"enabled": _MARSHAL_CODEGEN_ENABLED}
    stats.update(_CODEGEN_STATS)
    stats["typecode_coders"] = len(_GENERATED_ENCODERS)
    from repro.orb.stubs import GENERATED_REQUEST_ENCODERS

    stats["op_coders"] = len(GENERATED_REQUEST_ENCODERS)
    return stats


def register_generated_coders(
    tc: TypeCode,
    encoder: Callable[[CdrOutputStream, Any], None],
    decoder: Callable[[CdrInputStream], Any],
) -> None:
    """Register flat generated coders for one TypeCode (latest wins, the
    same policy as the name-keyed class registries)."""
    _GENERATED_ENCODERS[tc] = encoder
    _GENERATED_DECODERS[tc] = decoder


def generated_coders() -> dict[TypeCode, tuple[Callable, Callable]]:
    """Registered generated coders by TypeCode (for tests and checkers)."""
    return {
        tc: (enc, _GENERATED_DECODERS[tc])
        for tc, enc in _GENERATED_ENCODERS.items()
    }


def _tc_mentions(tc: TypeCode, name: str) -> bool:
    if tc.name == name:
        return True
    if tc.content is not None and _tc_mentions(tc.content, name):
        return True
    return any(_tc_mentions(ftc, name) for _, ftc in tc.fields)


def _invalidate_generated(name: str, old: Optional[type], new: type) -> None:
    """Drop generated coders that bake in a displaced class.

    Generated decoders construct their module's own classes directly; the
    interpreted path looks classes up by type name at decode time (latest
    registration wins).  When a registration *replaces* a different class
    under the same name, every generated coder whose TypeCode mentions
    that name is stale — drop it so the two paths cannot diverge.  The
    replacing module re-registers its own coders right after this."""
    if old is None or old is new or not _GENERATED_ENCODERS:
        return
    stale = [tc for tc in _GENERATED_ENCODERS if _tc_mentions(tc, name)]
    for tc in stale:
        del _GENERATED_ENCODERS[tc]
        _GENERATED_DECODERS.pop(tc, None)
    from repro.orb import stubs

    stubs._drop_generated_ops(name, _tc_mentions)


# -- unchanged-payload fast path ---------------------------------------------------


def values_equal(a: Any, b: Any) -> bool:
    """Structural equality over the value domain ``any`` can carry.

    ndarray-aware (``==`` on arrays yields an array, so plain comparison
    is unusable), recursive over dicts and sequences; list/tuple compare
    equal element-wise because the wire format does not distinguish them.
    """
    if a is b:
        return True
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if not (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)):
            return False
        return a.shape == b.shape and bool(np.array_equal(a, b))
    if isinstance(a, dict):
        if not isinstance(b, dict) or len(a) != len(b):
            return False
        for key, value in a.items():
            if key not in b or not values_equal(value, b[key]):
                return False
        return True
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            return False
        return all(values_equal(x, y) for x, y in zip(a, b))
    try:
        return bool(a == b)
    # analysis: ignore[EXC002]: exotic __eq__ is treated as unequal — forces a full store, which is always safe
    except Exception:  # noqa: BLE001 - exotic __eq__, treat as unequal
        return False


class AnyEncodeMemo:
    """Memoized :func:`encode_any` for a caller that repeatedly encodes
    the same logical value — the checkpoint path, where consecutive
    server states are often identical or nearly so.

    Holds the last ``(value, bytes)`` pair; a structural-equality hit
    returns the previous bytes without re-walking the value.  The caller
    must not mutate a value after encoding it (checkpoint states are
    fresh objects decoded off the wire, so the proxy path is safe).
    """

    def __init__(self) -> None:
        self._value: Any = None
        self._data: Optional[bytes] = None
        self.hits = 0
        self.misses = 0

    def encode(self, value: Any) -> bytes:
        if self._data is not None and values_equal(self._value, value):
            self.hits += 1
            _PLAN_STATS["any_memo_hits"] += 1
            return self._data
        self.misses += 1
        _PLAN_STATS["any_memo_misses"] += 1
        self._value = value
        self._data = encode_any(value)
        return self._data
