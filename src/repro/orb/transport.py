"""Transport glue between GIOP and the simulated network.

GIOP messages travel as real byte strings in network datagrams.  The one
transport-level mechanism beyond plain delivery is **reset synthesis**: when
a request datagram is dropped (dead host, unbound port, partition at
delivery time), a :class:`~repro.orb.giop.ResetMessage` is injected back to
the caller after one network latency — the TCP-RST / ICMP-unreachable
analogue.  The client ORB maps it to ``COMM_FAILURE``, which is precisely
the failure signal the paper's fault-tolerance proxies rely on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from repro.errors import MARSHAL
from repro.orb import giop

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Datagram, Network
    from repro.sim import Simulator
    from repro.sim.events import SimFuture


def install_reset_synthesis(network: "Network") -> None:
    """Idempotently install the drop listener that synthesizes resets."""
    if getattr(network, "_giop_reset_installed", False):
        return
    network._giop_reset_installed = True  # type: ignore[attr-defined]
    network.add_drop_listener(lambda dgram: _on_drop(network, dgram))


def _on_drop(network: "Network", datagram: "Datagram") -> None:
    payload = datagram.payload
    if not isinstance(payload, (bytes, bytearray)):
        return
    try:
        message = giop.decode_message(bytes(payload))
    except MARSHAL:
        return  # not a GIOP datagram; nothing to synthesize
    if (
        isinstance(message, giop.RequestMessage) and message.response_expected
    ) or isinstance(message, giop.ConnectMessage):
        reset = giop.ResetMessage(
            message.request_id,
            f"peer {datagram.dst_host}:{datagram.dst_port} unreachable",
        )
        raw = giop.encode_message(reset)
        network.inject(
            datagram.dst_host,
            datagram.dst_port,
            message.reply_host,
            message.reply_port,
            raw,
            len(raw),
        )
    elif isinstance(message, giop.LocateRequestMessage):
        reply = giop.LocateReplyMessage(
            message.request_id, giop.LocateStatus.UNKNOWN_OBJECT
        )
        raw = giop.encode_message(reply)
        network.inject(
            datagram.dst_host,
            datagram.dst_port,
            message.reply_host,
            message.reply_port,
            raw,
            len(raw),
        )


# -- client-side connection reuse ---------------------------------------------------


class _Connection:
    """One cached connection: ``established`` resolves with None once the
    handshake completed, or with a SystemException *value* if it failed
    (value, not failure, so joiners awaiting it wake promptly — see
    ``Orb._ensure_connection``)."""

    __slots__ = ("key", "target_host", "established")

    def __init__(
        self, key: tuple, target_host: str, established: "SimFuture"
    ) -> None:
        self.key = key
        self.target_host = target_host
        self.established = established


class ConnectionCache:
    """LRU cache of established GIOP connections, keyed by
    ``(server host, port, incarnation)``.

    With connection reuse on, a request to an endpoint whose connection is
    already established skips the handshake entirely; a request arriving
    while the handshake is still in flight *joins* it (request pipelining)
    instead of opening a second connection.  Entries die on LRU pressure
    and on failure signals — a reset from the endpoint, the host crashing —
    so the next request re-pays the handshake against live state.
    """

    def __init__(self, sim: "Simulator", capacity: int = 32) -> None:
        self._sim = sim
        self.capacity = max(1, capacity)
        self._entries: "OrderedDict[tuple, _Connection]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.opens = 0
        self.handshake_joins = 0
        self.evictions = 0
        self.invalidations = 0
        self.failures = 0

    def bump(self, counter: str) -> None:
        setattr(self, counter, getattr(self, counter) + 1)
        self._sim.obs.metrics.counter(
            f"orb_connection_cache_{counter}_total"
        ).inc()

    # analysis: atomic: the hit path must stay yield-free — reuse adds zero scheduling points
    def lookup(self, key: tuple) -> Optional[_Connection]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    # analysis: atomic: insert + LRU eviction happen before any joiner can observe the entry
    def begin(
        self, key: tuple, target_host: str, established: "SimFuture"
    ) -> _Connection:
        """Insert a connection whose handshake just started."""
        entry = _Connection(key, target_host, established)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.bump("evictions")
        return entry

    def discard(self, key: tuple, entry: Optional[_Connection] = None) -> None:
        """Drop ``key`` — but never a newer entry that replaced ``entry``
        (an evicted-then-reopened connection must not be killed by the
        stale opener's failure path)."""
        current = self._entries.get(key)
        if current is None or (entry is not None and current is not entry):
            return
        del self._entries[key]

    def invalidate_endpoint(self, key: tuple) -> None:
        """Targeted invalidation of one ``(host, port, incarnation)``
        endpoint — used at primary promotion so no cached connection to
        the dead incarnation survives the failover."""
        if self._entries.pop(key, None) is not None:
            self.bump("invalidations")

    def invalidate_host(self, host_name: str) -> None:
        """Failure-driven invalidation: every connection to ``host_name``
        is dropped (reset received or the host crashed)."""
        for key in [
            k for k, e in self._entries.items() if e.target_host == host_name
        ]:
            del self._entries[key]
            self.bump("invalidations")

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict:
        return {
            "enabled": True,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "opens": self.opens,
            "handshake_joins": self.handshake_joins,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "failures": self.failures,
        }
