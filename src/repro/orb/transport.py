"""Transport glue between GIOP and the simulated network.

GIOP messages travel as real byte strings in network datagrams.  The one
transport-level mechanism beyond plain delivery is **reset synthesis**: when
a request datagram is dropped (dead host, unbound port, partition at
delivery time), a :class:`~repro.orb.giop.ResetMessage` is injected back to
the caller after one network latency — the TCP-RST / ICMP-unreachable
analogue.  The client ORB maps it to ``COMM_FAILURE``, which is precisely
the failure signal the paper's fault-tolerance proxies rely on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.orb import giop

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Datagram, Network


def install_reset_synthesis(network: "Network") -> None:
    """Idempotently install the drop listener that synthesizes resets."""
    if getattr(network, "_giop_reset_installed", False):
        return
    network._giop_reset_installed = True  # type: ignore[attr-defined]
    network.add_drop_listener(lambda dgram: _on_drop(network, dgram))


def _on_drop(network: "Network", datagram: "Datagram") -> None:
    payload = datagram.payload
    if not isinstance(payload, (bytes, bytearray)):
        return
    try:
        message = giop.decode_message(bytes(payload))
    except Exception:
        return  # not a GIOP datagram; nothing to synthesize
    if isinstance(message, giop.RequestMessage) and message.response_expected:
        reset = giop.ResetMessage(
            message.request_id,
            f"peer {datagram.dst_host}:{datagram.dst_port} unreachable",
        )
        raw = giop.encode_message(reset)
        network.inject(
            datagram.dst_host,
            datagram.dst_port,
            message.reply_host,
            message.reply_port,
            raw,
            len(raw),
        )
    elif isinstance(message, giop.LocateRequestMessage):
        reply = giop.LocateReplyMessage(
            message.request_id, giop.LocateStatus.UNKNOWN_OBJECT
        )
        raw = giop.encode_message(reply)
        network.inject(
            datagram.dst_host,
            datagram.dst_port,
            message.reply_host,
            message.reply_port,
            raw,
            len(raw),
        )
