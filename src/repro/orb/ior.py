"""Interoperable Object References.

An IOR names one CORBA object: which host and port its server process
listens on, the object key within that server's adapter, and the interface
repository id.  ``incarnation`` distinguishes re-activations after a host
restart so stale references fail cleanly with ``OBJECT_NOT_EXIST`` instead
of hitting an unrelated object.

The stringified form (``IOR:`` + hex of the CDR encoding) round-trips
through :meth:`IOR.to_string` / :meth:`IOR.from_string`, like
``ORB::object_to_string`` in CORBA.
"""

from __future__ import annotations

import binascii
from dataclasses import dataclass

from repro.errors import INV_OBJREF


@dataclass(frozen=True)
class IOR:
    """An interoperable object reference."""

    type_id: str
    host: str
    port: int
    object_key: bytes
    incarnation: int = 0

    def to_string(self) -> str:
        """Stringified reference: ``IOR:`` + hex-encoded CDR body."""
        from repro.orb.cdr import CdrOutputStream

        stream = CdrOutputStream()
        stream.write_ior(self)
        return "IOR:" + binascii.hexlify(stream.getvalue()).decode("ascii")

    @classmethod
    def from_string(cls, text: str) -> "IOR":
        from repro.orb.cdr import CdrInputStream

        if not text.startswith("IOR:"):
            raise INV_OBJREF(f"not a stringified IOR: {text[:16]!r}...")
        try:
            body = binascii.unhexlify(text[4:])
        except (binascii.Error, ValueError) as exc:
            raise INV_OBJREF(f"bad IOR hex payload: {exc}") from exc
        stream = CdrInputStream(body)
        ior = stream.read_ior()
        if stream.remaining():
            raise INV_OBJREF("trailing bytes after IOR body")
        return ior

    def __str__(self) -> str:
        key = self.object_key.decode("latin-1", "replace")
        return f"<IOR {self.type_id} @{self.host}:{self.port}/{key}#{self.incarnation}>"
