"""ORB core: object adapter, request dispatch and static invocation.

One :class:`Orb` instance models one CORBA server/client process resident
on a host.  It owns a listening endpoint on the simulated network, a
:class:`POA` holding activated servants, and the client-side table of
pending calls.

Request handling runs as host-bound simulation processes, so marshalling
and dispatch consume the host's CPU (and die with it on a crash); servant
methods may be plain Python (instantaneous) or generators that yield
simulation futures — typically ``self._host().execute(work)`` for real
compute, which is how the optimization workers burn simulated CPU time.

Failure semantics (the part the paper's fault tolerance builds on):

* request datagram dropped (host down / server process gone / partition at
  delivery) → synthesized reset → ``COMM_FAILURE`` (COMPLETED_NO);
* server host crashes while processing → crash notification after one
  network latency → ``COMM_FAILURE`` (COMPLETED_MAYBE);
* servant deactivated or IOR from a previous server incarnation →
  ``OBJECT_NOT_EXIST``.
"""

from __future__ import annotations

import inspect
import itertools
from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import (
    BAD_OPERATION,
    CdrError,
    COMM_FAILURE,
    CompletionStatus,
    INV_OBJREF,
    MARSHAL,
    NO_IMPLEMENT,
    OBJECT_NOT_EXIST,
    OBJ_ADAPTER,
    ProcessKilled,
    SimulationError,
    SystemException,
    TIMEOUT,
    TRANSIENT,
    UNKNOWN,
    UserException,
)
from repro.orb import cdr, giop
from repro.orb.cdr import CdrInputStream, CdrOutputStream, FastPathUnavailable
from repro.orb.forwarding import LocationForward as _LocationForward
from repro.orb.ior import IOR
from repro.orb.stubs import (
    ObjectStub,
    OpInfo,
    USER_EXCEPTION_REGISTRY,
    generated_args_decoder,
    generated_request_encoder,
)
from repro.orb.transport import ConnectionCache, install_reset_synthesis
from repro.sim.events import SimFuture

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.host import Host
    from repro.cluster.network import Network


@dataclass
class OrbConfig:
    """Cost model and policy knobs of one ORB instance."""

    #: CPU work (seconds on a speed-1 host) per marshal/unmarshal step.
    marshal_fixed_work: float = 50e-6
    #: additional CPU work per payload byte.
    marshal_per_byte_work: float = 5e-9
    #: server-side fixed dispatch work per request (demux, POA lookup).
    dispatch_fixed_work: float = 100e-6
    #: optional round-trip timeout for invocations (None = wait forever,
    #: matching the era's default ORB behaviour).
    request_timeout: Optional[float] = None
    #: timeout for LocateRequest pings (these must always terminate).
    locate_timeout: float = 0.05
    #: round trips paid to set up a connection before a request may travel
    #: (ConnectMessage/Ack exchanges).  0 = connectionless datagrams, the
    #: baseline model — and the default, so existing runs are unchanged.
    connection_handshake_rtts: int = 0
    #: cache established connections per (host, port, incarnation) and
    #: reuse them across requests instead of paying the handshake each
    #: time; off = every request pays ``connection_handshake_rtts``.
    connection_reuse: bool = False
    #: LRU capacity of the connection cache.
    connection_cache_size: int = 32


class Servant:
    """Base class of all IDL skeletons (server-side implementations)."""

    __repo_id__ = "IDL:omg.org/CORBA/Object:1.0"
    __operations__: dict[str, OpInfo] = {}

    _poa: Optional["POA"] = None
    _object_key: Optional[bytes] = None

    def _this(self) -> IOR:
        """The IOR of this activated servant (CORBA's ``_this()``)."""
        if self._poa is None or self._object_key is None:
            raise OBJ_ADAPTER(f"servant {type(self).__name__} is not activated")
        return self._poa.ior_for_key(self._object_key, self.__repo_id__)

    def _host(self) -> "Host":
        """The host this servant runs on (for yielding CPU work)."""
        if self._poa is None:
            raise OBJ_ADAPTER(f"servant {type(self).__name__} is not activated")
        return self._poa.orb.host


class POA:
    """Portable-Object-Adapter subset: an object-key → servant map."""

    def __init__(self, orb: "Orb") -> None:
        self.orb = orb
        self._servants: dict[bytes, Servant] = {}
        self._counter = itertools.count()

    def activate(self, servant: Servant, key: Optional[bytes] = None) -> IOR:
        """Activate ``servant`` and return its IOR."""
        if servant._object_key is not None and servant._poa is self:
            raise OBJ_ADAPTER("servant is already activated")
        if key is None:
            key = f"{type(servant).__name__}:{next(self._counter):06d}".encode()
        if key in self._servants:
            raise OBJ_ADAPTER(f"object key {key!r} already in use")
        self._servants[key] = servant
        servant._poa = self
        servant._object_key = key
        return self.ior_for_key(key, servant.__repo_id__)

    def deactivate(self, servant_or_key: Servant | bytes) -> None:
        key = (
            servant_or_key
            if isinstance(servant_or_key, bytes)
            else servant_or_key._object_key
        )
        if key is None or key not in self._servants:
            raise OBJ_ADAPTER(f"no active object with key {key!r}")
        servant = self._servants.pop(key)
        servant._poa = None
        servant._object_key = None

    def lookup(self, key: bytes) -> Optional[Servant]:
        return self._servants.get(key)

    def ior_for_key(self, key: bytes, type_id: str) -> IOR:
        return IOR(
            type_id=type_id,
            host=self.orb.host.name,
            port=self.orb.port,
            object_key=key,
            incarnation=self.orb.orb_id,
        )

    def __len__(self) -> int:
        return len(self._servants)


class _Pending:
    __slots__ = ("future", "target_host", "kind")

    def __init__(self, future: SimFuture, target_host: str, kind: str) -> None:
        self.future = future
        self.target_host = target_host
        self.kind = kind  # "call", "locate" or "connect"


class CallStats:
    """Aggregated client-side statistics of one operation."""

    __slots__ = ("operation", "calls", "failures", "total_latency", "max_latency")

    def __init__(self, operation: str) -> None:
        self.operation = operation
        self.calls = 0
        self.failures = 0
        self.total_latency = 0.0
        self.max_latency = 0.0

    def record(self, latency: float, failed: bool) -> None:
        self.calls += 1
        if failed:
            self.failures += 1
        self.total_latency += latency
        self.max_latency = max(self.max_latency, latency)

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.calls if self.calls else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CallStats {self.operation}: n={self.calls} "
            f"fail={self.failures} mean={self.mean_latency:.6f}s>"
        )


class Orb:
    """One ORB instance (client and/or server role) on a host."""

    def __init__(
        self,
        host: "Host",
        network: "Network",
        port: Optional[int] = None,
        config: Optional[OrbConfig] = None,
        name: str = "",
    ) -> None:
        self.host = host
        self.network = network
        self.config = config or OrbConfig()
        self.sim = host.sim
        self.name = name or f"orb@{host.name}"
        install_reset_synthesis(network)
        counter = getattr(network, "_orb_id_counter", None)
        if counter is None:
            counter = itertools.count(1)
            network._orb_id_counter = counter  # type: ignore[attr-defined]
        self.orb_id = next(counter)
        self.port = port if port is not None else network.ephemeral_port(host.name)
        self.inbox = network.bind(host, self.port)
        self.poa = POA(self)
        self._pending: dict[int, _Pending] = {}
        self._request_ids = itertools.count(1)
        self._watched_hosts: set[str] = set()
        self._shut_down = False
        self._dispatcher = host.spawn(self._dispatch_loop(), name=f"{self.name}:disp")
        host.on_crash(lambda _h: self._fail_local_pending())
        #: counters for reports
        self.requests_sent = 0
        self.requests_served = 0
        #: per-operation client-side statistics (the instrumentation an
        #: ORB's interceptors would provide): operation -> CallStats.
        self.call_stats: dict[str, CallStats] = {}
        #: portable-interceptor-style request interceptors.
        self.interceptors: list = []
        #: in-flight server dispatches by (client host, client port,
        #: request id), so CancelRequest can abort them.
        self._inflight_serves: dict[tuple[str, int, int], Any] = {}
        self.requests_cancelled = 0
        #: client-side connection cache (None unless reuse is enabled).
        self.connections: Optional[ConnectionCache] = (
            ConnectionCache(self.sim, capacity=self.config.connection_cache_size)
            if self.config.connection_reuse
            else None
        )
        #: ConnectMessage/Ack exchanges this ORB initiated.
        self.handshakes_sent = 0
        #: service contexts of the request currently being dispatched —
        #: valid only during the synchronous prefix of a servant method
        #: call (set immediately before the method is invoked, consumed
        #: before its first yield).
        self.current_service_contexts: tuple = ()

    def add_request_interceptor(self, interceptor) -> None:
        """Register a :class:`repro.orb.interceptors.RequestInterceptor`."""
        self.interceptors.append(interceptor)

    def _intercept(self, hook: str, info) -> None:
        for interceptor in self.interceptors:
            getattr(interceptor, hook)(info)

    # -- lifecycle --------------------------------------------------------------

    @property
    def running(self) -> bool:
        return not self._shut_down and self.host.up

    def shutdown(self) -> None:
        """Stop this server process: unbind the port, kill the dispatcher.

        Clients with outstanding calls receive resets (their requests now
        drop) — modelling "a crashed server process" distinct from a whole
        host crash, one of the error cases §3 lists.
        """
        if self._shut_down:
            return
        self._shut_down = True
        if self.network.is_bound(self.host.name, self.port):
            self.network.unbind(self.host.name, self.port)
        self._dispatcher.kill()
        self._fail_local_pending()
        if self.connections is not None:
            self.connections.clear()

    def _fail_local_pending(self) -> None:
        pending, self._pending = self._pending, {}
        for entry in pending.values():
            entry.future.try_fail(
                COMM_FAILURE(
                    f"ORB {self.name} shut down with call in flight",
                    completed=CompletionStatus.COMPLETED_MAYBE,
                )
            )

    # -- object references ---------------------------------------------------------

    def object_to_string(self, ior: IOR) -> str:
        return ior.to_string()

    def string_to_object(self, text: str) -> IOR:
        """Parse a stringified IOR or a ``corbaloc:`` URL."""
        from repro.orb.url import string_to_object

        return string_to_object(self, text)

    def stub(self, ior: IOR, stub_class: type = ObjectStub) -> Any:
        """Narrow an IOR to a typed stub instance.

        Narrowing to the reference's own interface or any registered base
        interface succeeds; a known-incompatible narrow raises
        ``INV_OBJREF``; unknown interfaces narrow optimistically.
        """
        from repro.orb.stubs import can_narrow

        expected = getattr(stub_class, "__repo_id__", ObjectStub.__repo_id__)
        if not can_narrow(ior.type_id, expected):
            raise INV_OBJREF(
                f"cannot narrow {ior.type_id} reference to {expected}"
            )
        return stub_class(self, ior)

    # -- client side -------------------------------------------------------------

    def invoke(
        self,
        ior: IOR,
        info: OpInfo,
        args: tuple,
        reference=None,
        service_contexts: tuple = (),
    ) -> SimFuture:
        """Invoke ``info`` on the object ``ior``; returns the result future.

        ``reference`` is the client-side object reference (stub/proxy), if
        any — it carries the per-reference LOCATION_FORWARD cache.
        ``service_contexts`` are extra GIOP service contexts shipped with
        the request (beyond those interceptors attach) — the replication
        layer uses them to carry logical request ids for duplicate
        suppression.
        """
        if len(args) != len(info.params):
            raise MARSHAL(
                f"{info.name} expects {len(info.params)} arguments, got {len(args)}"
            )
        outer = self.sim.future(label=f"call:{info.name}@{ior.host}")
        process = self.host.spawn(
            self._invoke_proc(ior, info, args, outer, reference, service_contexts),
            name=f"call:{info.name}",
        )

        def propagate(proc_future: SimFuture) -> None:
            if proc_future.failed and outer.is_pending:
                outer.try_fail(proc_future.exception)  # type: ignore[arg-type]

        process.add_done_callback(propagate)

        started = self.sim.now
        stats = self.call_stats.get(info.name)
        if stats is None:
            stats = self.call_stats[info.name] = CallStats(info.name)
        outer.add_done_callback(
            lambda f: self._record_call_outcome(info.name, stats, started, f)
        )
        return outer

    def _record_call_outcome(
        self, operation: str, stats: CallStats, started: float, future: SimFuture
    ) -> None:
        latency = self.sim.now - started
        stats.record(latency, future.failed)
        metrics = self.sim.obs.metrics
        metrics.histogram(
            "orb_call_latency_seconds",
            operation=operation,
            host=self.host.name,
        ).observe(latency)
        if future.failed:
            metrics.counter(
                "orb_call_failures_total",
                operation=operation,
                host=self.host.name,
            ).inc()

    def locate(self, ior: IOR) -> SimFuture:
        """LocateRequest ping; resolves to True when the object is
        reachable and active, False otherwise. Never fails."""
        outer = self.sim.future(label=f"locate@{ior.host}")
        process = self.host.spawn(self._locate_proc(ior, outer), name="locate")
        process.add_done_callback(
            lambda p: outer.try_succeed(False) if p.failed else None
        )
        return outer

    def _marshal_work(self, nbytes: int) -> float:
        cfg = self.config
        return cfg.marshal_fixed_work + cfg.marshal_per_byte_work * nbytes

    def _encode_args(self, info: OpInfo, args: tuple) -> bytes:
        if cdr.marshal_codegen_enabled():
            encoder = generated_request_encoder(info)
            if encoder is not None:
                try:
                    body = encoder(args)
                # analysis: ignore[EXC002]: generated-path failure falls through to the interpreted encoder, which raises the canonical MARSHAL
                except Exception:  # noqa: BLE001
                    cdr.codegen_count("request_encoder_fallbacks")
                else:
                    cdr.codegen_count("request_encoder_hits")
                    return body
        stream = CdrOutputStream()
        for (param_name, tc), value in zip(info.params, args):
            try:
                stream.write_value(tc, value)
            except CdrError as exc:
                raise MARSHAL(
                    f"{info.name}: cannot marshal parameter {param_name!r}: {exc}"
                ) from exc
        return stream.getvalue()

    def _decode_args(self, info: OpInfo, body: bytes) -> list:
        if cdr.marshal_codegen_enabled():
            decoder = generated_args_decoder(info)
            if decoder is not None:
                try:
                    args = decoder(body)
                # analysis: ignore[EXC002]: generated-path failure falls through to the interpreted decoder, which raises the canonical CdrError
                except Exception:  # noqa: BLE001
                    cdr.codegen_count("arg_decoder_fallbacks")
                else:
                    cdr.codegen_count("arg_decoder_hits")
                    return args
        stream = CdrInputStream(body)
        return [stream.read_value(tc) for _, tc in info.params]

    def _invoke_proc(
        self,
        ior: IOR,
        info: OpInfo,
        args: tuple,
        outer: SimFuture,
        reference=None,
        extra_contexts: tuple = (),
    ):
        from repro.orb.forwarding import MAX_FORWARDS

        body = self._encode_args(info, args)
        yield self.host.execute(self._marshal_work(len(body)))

        cached_forward = getattr(reference, "_forward_target", None)
        target = cached_forward if cached_forward is not None else ior
        using_cached = cached_forward is not None
        for _hop in range(MAX_FORWARDS + 1):
            request_id = next(self._request_ids)
            service_contexts: tuple = tuple(extra_contexts)
            if self.interceptors:
                from repro.orb.interceptors import RequestInfo

                # send_request runs before the message is built so that
                # interceptors can attach service contexts to the wire
                # (e.g. the observability layer's trace context).
                send_info = RequestInfo(
                    operation=info.name,
                    request_id=request_id,
                    target=target,
                    body_size=len(body),
                    response_expected=not info.oneway,
                    attrs={"request_marshal_work": self._marshal_work(len(body))},
                )
                self._intercept("send_request", send_info)
                service_contexts = service_contexts + tuple(
                    send_info.service_contexts
                )
            message = giop.RequestMessage(
                request_id=request_id,
                response_expected=not info.oneway,
                object_key=target.object_key,
                operation=info.name,
                target_incarnation=target.incarnation,
                reply_host=self.host.name,
                reply_port=self.port,
                body=body,
                service_contexts=service_contexts,
            )
            raw = giop.encode_message(message)
            self.requests_sent += 1

            try:
                self.network.host(target.host)
            except Exception:
                outer.try_fail(
                    INV_OBJREF(f"IOR names unknown host {target.host!r}")
                )
                return

            if self.config.connection_handshake_rtts > 0:
                try:
                    yield from self._ensure_connection(target)
                except SystemException as exc:
                    self._intercept_outcome(info.name, request_id, exc)
                    if using_cached:
                        # Could not even connect to the forwarded target:
                        # drop the cache and retry at the original IOR.
                        if reference is not None:
                            reference._forward_target = None
                        using_cached = False
                        target = ior
                        continue
                    outer.try_fail(exc)
                    return

            if info.oneway:
                self.network.send(
                    self.host, self.port, target.host, target.port, raw, len(raw)
                )
                outer.try_succeed(None)
                return

            inner = self.sim.future(label=f"reply:{request_id}")
            self._pending[request_id] = _Pending(inner, target.host, "call")
            self._watch_host(target.host)
            self.network.send(
                self.host, self.port, target.host, target.port, raw, len(raw)
            )

            if self.config.request_timeout is not None:
                winner = yield self.sim.any_of(
                    [inner, self.sim.timeout(self.config.request_timeout)]
                )
                if winner[0] == 1:
                    self._pending.pop(request_id, None)
                    # GIOP CancelRequest: tell the server we gave up so it
                    # can stop working on our behalf.
                    cancel = giop.encode_message(
                        giop.CancelRequestMessage(request_id)
                    )
                    self.network.send(
                        self.host,
                        self.port,
                        target.host,
                        target.port,
                        cancel,
                        len(cancel),
                    )
                    timeout_exc = TIMEOUT(
                        f"{info.name} timed out after "
                        f"{self.config.request_timeout}s",
                        completed=CompletionStatus.COMPLETED_MAYBE,
                    )
                    self._intercept_outcome(info.name, request_id, timeout_exc)
                    outer.try_fail(timeout_exc)
                    return
                reply = winner[1]
            else:
                try:
                    reply = yield inner
                except SystemException as exc:
                    self._intercept_outcome(info.name, request_id, exc)
                    if using_cached:
                        # The forwarded target died: drop the cache and
                        # fall back to the original reference once.
                        if reference is not None:
                            reference._forward_target = None
                        using_cached = False
                        target = ior
                        continue
                    outer.try_fail(exc)
                    return

            yield self.host.execute(self._marshal_work(len(reply.body)))
            if using_cached and reply.status is giop.ReplyStatus.SYSTEM_EXCEPTION:
                decoded = giop.decode_system_exception(reply.body)
                if isinstance(decoded, (OBJECT_NOT_EXIST, TRANSIENT)):
                    # The cached forward points at a dead object: fall back.
                    self._intercept_outcome(info.name, request_id, decoded)
                    if reference is not None:
                        reference._forward_target = None
                    using_cached = False
                    target = ior
                    continue
            if reply.status is giop.ReplyStatus.LOCATION_FORWARD:
                # Transparent retry at the forwarded reference; cache it
                # on the object reference (GIOP client behaviour).  The
                # hop's interceptor round is closed as a received reply.
                self._intercept_outcome(info.name, request_id, None)
                try:
                    target = CdrInputStream(reply.body).read_ior()
                except CdrError as exc:
                    outer.try_fail(
                        MARSHAL(f"bad LOCATION_FORWARD body: {exc}")
                    )
                    return
                using_cached = False
                if reference is not None:
                    reference._forward_target = target
                continue
            self._deliver_reply(info, reply, outer, request_id)
            return
        outer.try_fail(
            TRANSIENT(
                f"{info.name}: more than {MAX_FORWARDS} chained location "
                "forwards (forwarding loop?)"
            )
        )

    def _intercept_outcome(
        self,
        operation: str,
        request_id: int,
        exception: Optional[BaseException],
        attrs: Optional[dict] = None,
    ) -> None:
        if not self.interceptors:
            return
        from repro.orb.interceptors import RequestInfo

        info = RequestInfo(
            operation=operation,
            request_id=request_id,
            exception=exception,
            attrs=attrs or {},
        )
        self._intercept(
            "receive_reply" if exception is None else "receive_exception", info
        )

    def _deliver_reply(
        self,
        info: OpInfo,
        reply: giop.ReplyMessage,
        outer: SimFuture,
        request_id: int,
    ) -> None:
        def fail(exc: BaseException) -> None:
            self._intercept_outcome(info.name, request_id, exc)
            outer.try_fail(exc)

        # The reply-unmarshal CPU charge (paid just before this call, in
        # _invoke_proc) lands *inside* the client span; tag it so the
        # critical-path analyzer can split marshalling out of transport.
        unmarshal = {"unmarshal_work": self._marshal_work(len(reply.body))}
        if reply.status is giop.ReplyStatus.NO_EXCEPTION:
            stream = CdrInputStream(reply.body)
            try:
                result = stream.read_value(info.result)
            except CdrError as exc:
                fail(MARSHAL(f"bad reply body for {info.name}: {exc}"))
                return
            self._intercept_outcome(info.name, request_id, None, attrs=unmarshal)
            outer.try_succeed(result)
        elif reply.status is giop.ReplyStatus.USER_EXCEPTION:
            stream = CdrInputStream(reply.body)
            repo_id = stream.read_string()
            cls = USER_EXCEPTION_REGISTRY.get(repo_id)
            if cls is None:
                fail(UNKNOWN(f"unregistered user exception {repo_id}"))
                return
            decoded = stream.read_value(cls.__tc__)
            kwargs = {name: getattr(decoded, name) for name in cls.__fields__}
            fail(cls(**kwargs))
        else:
            fail(giop.decode_system_exception(reply.body))

    # -- connection setup --------------------------------------------------------

    def _ensure_connection(self, target: IOR):
        """Have a usable connection to ``target`` before the request travels.

        With reuse off every request pays the full handshake.  With reuse
        on, an established cached connection is free (no yields at all on
        this path), and a handshake already in flight to the same endpoint
        is *joined* — the request pipelines behind the opener instead of
        opening a second connection.  Raises ``COMM_FAILURE``
        (COMPLETED_NO) if the connection cannot be set up.
        """
        cache = self.connections
        if cache is None:
            yield from self._handshake(target)
            return
        key = (target.host, target.port, target.incarnation)
        entry = cache.lookup(key)
        if entry is not None:
            if entry.established.is_pending:
                cache.bump("handshake_joins")
                outcome = yield entry.established
                if isinstance(outcome, SystemException):
                    raise outcome
                return
            if not isinstance(entry.established.value, SystemException):
                cache.bump("hits")
                return
            # A failed entry the opener has not discarded yet: re-open.
            cache.discard(key, entry)
        # analysis: atomic-begin(connect-miss-to-open)
        # No yield between deciding "miss" and registering the in-flight
        # entry: a second caller slipping in here would open a duplicate
        # handshake instead of joining this one.
        cache.bump("misses")
        entry = cache.begin(
            key,
            target.host,
            self.sim.future(label=f"conn:{target.host}:{target.port}"),
        )
        # analysis: atomic-end(connect-miss-to-open)
        try:
            yield from self._handshake(target)
        except SystemException as exc:
            cache.discard(key, entry)
            cache.bump("failures")
            # Resolve with the exception as a *value* so joiners (and the
            # kernel) see a clean resolution; they re-raise it themselves.
            entry.established.try_succeed(exc)
            raise
        cache.bump("opens")
        entry.established.try_succeed(None)

    def _handshake(self, target: IOR):
        """Pay the connection-setup cost: one ConnectMessage/Ack exchange
        per configured round trip, each bounded by ``locate_timeout``."""
        for _ in range(self.config.connection_handshake_rtts):
            request_id = next(self._request_ids)
            raw = giop.encode_message(
                giop.ConnectMessage(request_id, self.host.name, self.port)
            )
            inner = self.sim.future(label=f"connect:{request_id}")
            self._pending[request_id] = _Pending(inner, target.host, "connect")
            self._watch_host(target.host)
            self.handshakes_sent += 1
            self.network.send(
                self.host, self.port, target.host, target.port, raw, len(raw)
            )
            winner = yield self.sim.any_of(
                [inner, self.sim.timeout(self.config.locate_timeout)]
            )
            if winner[0] == 1:
                self._pending.pop(request_id, None)
                raise COMM_FAILURE(
                    f"connection setup to {target.host}:{target.port} "
                    "timed out",
                    completed=CompletionStatus.COMPLETED_NO,
                )
            # Reset/crash resolves the connect future with the exception
            # as a value (see _dispatch_loop) so the failure is prompt.
            if isinstance(winner[1], SystemException):
                raise winner[1]

    def _locate_proc(self, ior: IOR, outer: SimFuture):
        request_id = next(self._request_ids)
        message = giop.LocateRequestMessage(
            request_id=request_id,
            object_key=ior.object_key,
            target_incarnation=ior.incarnation,
            reply_host=self.host.name,
            reply_port=self.port,
        )
        raw = giop.encode_message(message)
        inner = self.sim.future(label=f"locate:{request_id}")
        self._pending[request_id] = _Pending(inner, ior.host, "locate")
        try:
            self.network.send(self.host, self.port, ior.host, ior.port, raw, len(raw))
        except SimulationError:
            # own host crashed mid-probe or the peer name is unknown:
            # treat as "object is not there" rather than a client error.
            self._pending.pop(request_id, None)
            outer.try_succeed(False)
            return
        winner = yield self.sim.any_of(
            [inner, self.sim.timeout(self.config.locate_timeout)]
        )
        if winner[0] == 1:
            self._pending.pop(request_id, None)
            outer.try_succeed(False)
            return
        outer.try_succeed(winner[1] is giop.LocateStatus.OBJECT_HERE)

    def _watch_host(self, host_name: str) -> None:
        if host_name in self._watched_hosts:
            return
        self._watched_hosts.add(host_name)
        target = self.network.host(host_name)

        def on_crash(_host) -> None:
            # Peer-death notification reaches us after one network latency.
            self.sim.schedule(
                self.network.latency, lambda: self._fail_pending_to(host_name)
            )

        target.on_crash(on_crash)

    def _fail_pending_to(self, host_name: str) -> None:
        if self.connections is not None:
            self.connections.invalidate_host(host_name)
        for request_id in [
            rid for rid, p in self._pending.items() if p.target_host == host_name
        ]:
            entry = self._pending.pop(request_id)
            if entry.kind == "locate":
                entry.future.try_succeed(giop.LocateStatus.UNKNOWN_OBJECT)
            elif entry.kind == "connect":
                entry.future.try_succeed(
                    COMM_FAILURE(
                        f"host {host_name} crashed during connection setup",
                        completed=CompletionStatus.COMPLETED_NO,
                    )
                )
            else:
                entry.future.try_fail(
                    COMM_FAILURE(
                        f"host {host_name} crashed during call",
                        completed=CompletionStatus.COMPLETED_MAYBE,
                    )
                )

    # -- server side ----------------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            datagram = yield self.inbox.get()
            try:
                message = giop.decode_message(bytes(datagram.payload))
            except MARSHAL:
                self.sim.trace.emit("orb", f"{self.name}: undecodable datagram")
                continue
            if isinstance(message, giop.RequestMessage):
                process = self.host.spawn(
                    self._serve(message, len(datagram.payload)),
                    name=f"{self.name}:serve:{message.operation}",
                )
                key = (message.reply_host, message.reply_port, message.request_id)
                self._inflight_serves[key] = process
                process.add_done_callback(
                    lambda _p, key=key: self._inflight_serves.pop(key, None)
                )
            elif isinstance(message, giop.CancelRequestMessage):
                key = (
                    datagram.src_host,
                    datagram.src_port,
                    message.request_id,
                )
                process = self._inflight_serves.pop(key, None)
                if process is not None and process.is_pending:
                    self.requests_cancelled += 1
                    process.kill()
            elif isinstance(message, giop.ReplyMessage):
                entry = self._pending.pop(message.request_id, None)
                if entry is not None:
                    entry.future.try_succeed(message)
            elif isinstance(message, giop.ResetMessage):
                entry = self._pending.pop(message.request_id, None)
                if entry is not None:
                    if self.connections is not None:
                        # A reset proves the endpoint is gone: any cached
                        # connection to that host is dead too.
                        self.connections.invalidate_host(entry.target_host)
                    if entry.kind == "locate":
                        entry.future.try_succeed(giop.LocateStatus.UNKNOWN_OBJECT)
                    elif entry.kind == "connect":
                        entry.future.try_succeed(
                            COMM_FAILURE(
                                f"connection refused: {message.reason}",
                                completed=CompletionStatus.COMPLETED_NO,
                            )
                        )
                    else:
                        entry.future.try_fail(
                            COMM_FAILURE(
                                f"connection reset: {message.reason}",
                                completed=CompletionStatus.COMPLETED_NO,
                            )
                        )
            elif isinstance(message, giop.ConnectMessage):
                # Accepting a connection is pure wire protocol: ack it
                # straight from the dispatch loop (no CPU charged), like
                # a kernel-level SYN/ACK.
                ack = giop.encode_message(
                    giop.ConnectAckMessage(message.request_id)
                )
                self.network.send(
                    self.host,
                    self.port,
                    message.reply_host,
                    message.reply_port,
                    ack,
                    len(ack),
                )
            elif isinstance(message, giop.ConnectAckMessage):
                entry = self._pending.pop(message.request_id, None)
                if entry is not None:
                    entry.future.try_succeed(None)
            elif isinstance(message, giop.LocateRequestMessage):
                self._serve_locate(message)
            elif isinstance(message, giop.LocateReplyMessage):
                entry = self._pending.pop(message.request_id, None)
                if entry is not None:
                    entry.future.try_succeed(message.status)

    def _serve_locate(self, message: giop.LocateRequestMessage) -> None:
        servant = self.poa.lookup(message.object_key)
        here = servant is not None and message.target_incarnation == self.orb_id
        reply = giop.LocateReplyMessage(
            message.request_id,
            giop.LocateStatus.OBJECT_HERE if here else giop.LocateStatus.UNKNOWN_OBJECT,
        )
        raw = giop.encode_message(reply)
        self.network.send(
            self.host, self.port, message.reply_host, message.reply_port, raw, len(raw)
        )

    def _serve(self, message: giop.RequestMessage, wire_size: int):
        cfg = self.config
        dispatch_started = self.sim.now
        yield self.host.execute(
            cfg.dispatch_fixed_work + cfg.marshal_per_byte_work * wire_size
        )
        self.requests_served += 1

        status = giop.ReplyStatus.NO_EXCEPTION
        reply_body = b""
        try:
            servant = self.poa.lookup(message.object_key)
            if servant is None or message.target_incarnation != self.orb_id:
                raise OBJECT_NOT_EXIST(
                    f"no active object for key {message.object_key!r} "
                    f"(incarnation {message.target_incarnation} vs {self.orb_id})",
                    completed=CompletionStatus.COMPLETED_NO,
                )
            info = servant.__operations__.get(message.operation)
            if info is None:
                raise BAD_OPERATION(
                    f"{type(servant).__name__} has no operation "
                    f"{message.operation!r}",
                    completed=CompletionStatus.COMPLETED_NO,
                )
            handled = False
            fast = None
            if cdr.marshal_codegen_enabled():
                table = getattr(type(servant), "__fastdispatch__", None)
                if table is not None:
                    fast = table.get(message.operation)
            if fast is not None:
                hook = None
                if self.interceptors:

                    def hook() -> None:
                        from repro.orb.interceptors import RequestInfo

                        self._intercept(
                            "receive_request",
                            RequestInfo(
                                operation=message.operation,
                                request_id=message.request_id,
                                object_key=message.object_key,
                                body_size=len(message.body),
                                response_expected=message.response_expected,
                                service_contexts=list(message.service_contexts),
                            ),
                        )

                # Same synchronous-prefix invariant as the interpreted
                # branch below: the generated dispatch never yields before
                # the servant method runs.
                self.current_service_contexts = message.service_contexts
                try:
                    gen, fast_body, pending = fast(servant, message.body, hook)
                except FastPathUnavailable:
                    # Raised strictly before the servant method ran; the
                    # interpreted dispatch below redoes decode + interceptor
                    # (the hook did not fire) and raises the canonical error.
                    cdr.codegen_count("dispatch_fallbacks")
                else:
                    cdr.codegen_count("dispatch_hits")
                    handled = True
                    if gen is not None:
                        result = yield from gen
                        stream = CdrOutputStream()
                        try:
                            stream.write_value(info.result, result)
                        except CdrError as exc:
                            raise MARSHAL(
                                f"{info.name}: cannot marshal result "
                                f"{result!r}: {exc}"
                            ) from exc
                        reply_body = stream.getvalue()
                    elif fast_body is not None:
                        reply_body = fast_body
                    else:
                        # Servant already ran but the generated reply encode
                        # declined; marshal the pending result interpreted.
                        cdr.codegen_count("reply_encode_fallbacks")
                        stream = CdrOutputStream()
                        try:
                            stream.write_value(info.result, pending)
                        except CdrError as exc:
                            raise MARSHAL(
                                f"{info.name}: cannot marshal result "
                                f"{pending!r}: {exc}"
                            ) from exc
                        reply_body = stream.getvalue()
            if not handled:
                try:
                    args = self._decode_args(info, message.body)
                except CdrError as exc:
                    raise MARSHAL(
                        f"cannot unmarshal request for {info.name}: {exc}",
                        completed=CompletionStatus.COMPLETED_NO,
                    ) from exc
                if self.interceptors:
                    from repro.orb.interceptors import RequestInfo

                    self._intercept(
                        "receive_request",
                        RequestInfo(
                            operation=message.operation,
                            request_id=message.request_id,
                            object_key=message.object_key,
                            body_size=len(message.body),
                            response_expected=message.response_expected,
                            service_contexts=list(message.service_contexts),
                        ),
                    )
                method = getattr(servant, message.operation, None)
                if method is None or not callable(method):
                    raise NO_IMPLEMENT(
                        f"{type(servant).__name__}.{message.operation} "
                        "not implemented",
                        completed=CompletionStatus.COMPLETED_NO,
                    )
                # Valid only for the synchronous prefix of the call: there
                # is no yield between here and the method's first statement,
                # so a replicated servant can capture its request-id context
                # before any other dispatch runs.
                self.current_service_contexts = message.service_contexts
                result = method(*args)
                if inspect.isgenerator(result):
                    result = yield from result
                stream = CdrOutputStream()
                try:
                    stream.write_value(info.result, result)
                except CdrError as exc:
                    raise MARSHAL(
                        f"{info.name}: cannot marshal result {result!r}: {exc}"
                    ) from exc
                reply_body = stream.getvalue()
        except _LocationForward as forward:
            status = giop.ReplyStatus.LOCATION_FORWARD
            stream = CdrOutputStream()
            stream.write_ior(forward.target)
            reply_body = stream.getvalue()
        except UserException as exc:
            status = giop.ReplyStatus.USER_EXCEPTION
            stream = CdrOutputStream()
            stream.write_string(exc.__repo_id__)
            stream.write_value(type(exc).__tc__, exc.fields)
            reply_body = stream.getvalue()
        # analysis: ignore[EXC003]: marshalled into the SYSTEM_EXCEPTION reply — propagates to the client
        except SystemException as exc:
            status = giop.ReplyStatus.SYSTEM_EXCEPTION
            reply_body = giop.encode_system_exception(exc)
        except ProcessKilled:
            raise
        # analysis: ignore[EXC002]: CORBA-mandated mapping — a servant bug becomes an UNKNOWN reply
        except Exception as exc:  # noqa: BLE001 - servant bug -> UNKNOWN
            self.sim.trace.emit(
                "orb",
                f"{self.name}: servant raised {type(exc).__name__}",
                operation=message.operation,
            )
            status = giop.ReplyStatus.SYSTEM_EXCEPTION
            reply_body = giop.encode_system_exception(
                UNKNOWN(f"servant raised {type(exc).__name__}: {exc}")
            )

        self.sim.obs.metrics.histogram(
            "orb_dispatch_seconds",
            operation=message.operation,
            host=self.host.name,
        ).observe(self.sim.now - dispatch_started)
        if not message.response_expected:
            return
        yield self.host.execute(self._marshal_work(len(reply_body)))
        if self.interceptors:
            from repro.orb.interceptors import RequestInfo

            self._intercept(
                "send_reply",
                RequestInfo(
                    operation=message.operation,
                    request_id=message.request_id,
                    object_key=message.object_key,
                    body_size=len(reply_body),
                    attrs={
                        "reply_marshal_work": self._marshal_work(len(reply_body))
                    },
                ),
            )
        reply = giop.ReplyMessage(message.request_id, status, reply_body)
        raw = giop.encode_message(reply)
        self.network.send(
            self.host, self.port, message.reply_host, message.reply_port, raw, len(raw)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Orb {self.name} port={self.port} servants={len(self.poa)}>"
