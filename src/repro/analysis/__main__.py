"""Entry point for ``python -m repro.analysis``."""

import sys

from repro.analysis.cli import run

if __name__ == "__main__":
    sys.exit(run())
