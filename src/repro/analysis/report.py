"""Human and JSON rendering of an :class:`AnalysisResult`."""

from __future__ import annotations

import json
from collections import Counter
from typing import Optional, Sequence

from repro.analysis.cache import CacheStats
from repro.analysis.findings import AnalysisResult


def render_text(result: AnalysisResult, verbose: bool = False) -> str:
    """The human report: findings grouped in file order, then a summary."""
    lines: list[str] = []
    for finding in result.findings:
        lines.append(finding.render())
    if verbose and result.baselined:
        lines.append("")
        lines.append("baselined (justified in the suppression file):")
        for finding in result.baselined:
            lines.append(f"  {finding.render()}")
    if verbose and result.suppressed:
        lines.append("")
        lines.append("suppressed inline (# analysis: ignore[...]):")
        for finding in result.suppressed:
            lines.append(f"  {finding.render()}")
    if result.stale_baseline:
        lines.append("")
        lines.append(
            "stale baseline entries (match nothing in the tree — remove them):"
        )
        for entry in result.stale_baseline:
            lines.append(
                f"  {entry.get('code', '?')} {entry.get('path', '?')} "
                f"[{entry.get('context', '')}] {entry.get('fingerprint')}"
            )
    lines.append("")
    lines.append(summary_line(result))
    return "\n".join(lines)


def summary_line(result: AnalysisResult) -> str:
    by_code = Counter(finding.code for finding in result.findings)
    breakdown = (
        " (" + ", ".join(f"{code} x{n}" for code, n in sorted(by_code.items())) + ")"
        if by_code
        else ""
    )
    return (
        f"{len(result.findings)} finding(s){breakdown}: "
        f"{len(result.errors)} error(s), {len(result.warnings)} warning(s); "
        f"{len(result.baselined)} baselined, {len(result.suppressed)} "
        f"suppressed inline; {result.files_checked} file(s), "
        f"checkers: {', '.join(result.checkers_run)}"
    )


def render_cache_line(stats: CacheStats) -> str:
    if stats.full_hit:
        return "cache: full-run hit (analysis replayed without re-parsing)"
    return (
        f"cache: {stats.hits} hit(s), {stats.misses} miss(es) "
        f"({stats.hit_rate:.0%} hit rate)"
    )


def render_json(
    result: AnalysisResult,
    strict: bool = False,
    cache_stats: Optional[CacheStats] = None,
) -> str:
    payload = {
        "version": 1,
        "summary": {
            "findings": len(result.findings),
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "baselined": len(result.baselined),
            "suppressed": len(result.suppressed),
            "stale_baseline": len(result.stale_baseline),
            "files_checked": result.files_checked,
            "checkers": list(result.checkers_run),
            "exit_code": result.exit_code(strict=strict),
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "baselined": [finding.to_dict() for finding in result.baselined],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "stale_baseline": result.stale_baseline,
        "cache": (
            cache_stats.to_dict()
            if cache_stats is not None
            else CacheStats().to_dict()
        ),
    }
    return json.dumps(payload, indent=2) + "\n"


def render_catalog(catalog: dict[str, dict[str, str]]) -> str:
    lines: list[str] = []
    for checker_name, codes in catalog.items():
        lines.append(f"{checker_name}:")
        for code, description in sorted(codes.items()):
            lines.append(f"  {code}  {description}")
    return "\n".join(lines)


def render_findings_table(findings: Sequence) -> str:
    """Compact one-line-per-finding view (used by the example script)."""
    return "\n".join(finding.render() for finding in findings)
