"""Finding and severity types shared by every checker.

A :class:`Finding` is one defect report: a stable code (``DET001``,
``IDL003``, ...), the file/line it anchors to, and a *fingerprint* that
identifies the finding across unrelated line drift — the fingerprint hashes
the code, path, enclosing definition and message, but **not** the line
number, so re-formatting a file does not invalidate baseline entries.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is meaningful (ERROR > WARNING)."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One static-analysis defect report.

    :param code: stable finding code, e.g. ``"DET001"``.
    :param message: human-readable defect statement (must not embed line
        numbers — the baseline fingerprint hashes it).
    :param path: repo-relative posix path of the file.
    :param line: 1-based line the finding anchors to.
    :param severity: :class:`Severity` of the defect.
    :param checker: name of the checker that produced it.
    :param context: enclosing qualified name (``Class.method`` or module
        symbol) — part of the fingerprint, keeps baselines line-stable.
    """

    code: str
    message: str
    path: str
    line: int
    severity: Severity = Severity.ERROR
    checker: str = ""
    context: str = ""
    column: int = 0

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        raw = "|".join((self.code, self.path, self.context, self.message))
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "severity": str(self.severity),
            "checker": self.checker,
            "context": self.context,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        ctx = f" [{self.context}]" if self.context else ""
        return f"{where}: {self.code} {self.severity}: {self.message}{ctx}"


@dataclass
class AnalysisResult:
    """Everything one analysis run produced, pre-sorted for reporting."""

    findings: list[Finding] = field(default_factory=list)
    #: findings silenced by an inline ``# analysis: ignore[...]`` directive.
    suppressed: list[Finding] = field(default_factory=list)
    #: findings matched by a checked-in baseline entry.
    baselined: list[Finding] = field(default_factory=list)
    #: baseline entries that matched nothing (stale — candidates for removal).
    stale_baseline: list[dict] = field(default_factory=list)
    files_checked: int = 0
    checkers_run: tuple[str, ...] = ()

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity >= Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == Severity.WARNING]

    def exit_code(self, strict: bool = False) -> int:
        """0 = clean; 1 = actionable findings.  ``--strict`` also fails on
        warnings and on stale baseline entries (a stale entry means the
        baseline no longer describes the tree)."""
        if self.errors:
            return 1
        if strict and (self.warnings or self.stale_baseline):
            return 1
        return 0
