"""``python -m repro.analysis`` — the project's static-analysis gate.

Typical invocations::

    PYTHONPATH=src python -m repro.analysis                 # default tree, report
    PYTHONPATH=src python -m repro.analysis --strict        # CI gate (warnings fail)
    PYTHONPATH=src python -m repro.analysis --json out.json # machine report
    PYTHONPATH=src python -m repro.analysis --write-baseline  # (re)seed baseline
    PYTHONPATH=src python -m repro.analysis --list-checkers   # the catalog
"""

from __future__ import annotations

import argparse
import hashlib
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.cache import AnalysisCache
from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.findings import AnalysisResult, Finding
from repro.analysis.framework import checker_catalog, run_checkers
from repro.analysis.report import (
    render_cache_line,
    render_catalog,
    render_json,
    render_text,
)
from repro.analysis.source import (
    Project,
    discover_python_files,
    find_repo_root,
)

BASELINE_FILENAME = "analysis-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Project-specific static analysis: determinism lint, IDL "
            "conformance, yield-point/atomicity races, exception safety."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyse (default: the src/repro "
        "tree plus benchmarks/ and examples/)",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-hash keyed incremental cache directory; unchanged "
        "files and file sets reuse previous results",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root for relative paths (default: auto-detected)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"suppression baseline (default: <root>/{BASELINE_FILENAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file even if present",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit "
        "(justifications start as TODO placeholders that must be edited)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write a structured JSON report to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings and stale baseline entries, not just errors",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated finding codes or prefixes (e.g. DET,IDL003)",
    )
    parser.add_argument(
        "--no-semantic",
        action="store_true",
        help="skip checks that compile the IDL toolchain (pure-AST mode)",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print the checker/finding-code catalog and exit",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list baselined and inline-suppressed findings",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    checkers = [checker_cls() for checker_cls in ALL_CHECKERS]
    if args.list_checkers:
        print(render_catalog(checker_catalog(checkers)))
        return 0

    root = (args.root or find_repo_root(Path.cwd())).resolve()
    paths = [p.resolve() for p in args.paths]
    if not paths:
        default_tree = root / "src" / "repro"
        if not default_tree.is_dir():
            import repro

            default_tree = Path(repro.__file__).parent
            root = find_repo_root(default_tree)
        paths = [default_tree]
        # the scoped families also gate the runnable entry points.
        for extra in ("benchmarks", "examples"):
            extra_tree = root / extra
            if extra_tree.is_dir():
                paths.append(extra_tree)

    semantic = not args.no_semantic
    select = _parse_select(args.select)
    file_paths = discover_python_files(paths, root)

    cache: Optional[AnalysisCache] = None
    if args.cache is not None:
        cache = AnalysisCache(args.cache)
        cache.set_file_set(
            {
                _cli_relpath(path, root): hashlib.sha256(
                    path.read_bytes()
                ).hexdigest()
                for path in file_paths
            }
        )

    baseline_path = args.baseline or (root / BASELINE_FILENAME)
    baseline: Optional[Baseline] = None
    if args.write_baseline:
        project = Project.from_files(file_paths, root=root, semantic=semantic)
        result = run_checkers(
            project, checkers, baseline=None, select=select, cache=cache
        )
        baseline_path.write_text(
            Baseline.render(result.findings), encoding="utf-8"
        )
        print(
            f"wrote {len(result.findings)} suppression(s) to {baseline_path}; "
            "edit the TODO justifications before committing"
        )
        return 0
    if not args.no_baseline and baseline_path.exists():
        try:
            baseline = Baseline.load(baseline_path)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    cached = cache.load_full(semantic, select) if cache is not None else None
    if cached is not None:
        # Identical tree + checkers: replay without parsing.  Only the
        # baseline (which changes independently of the tree) is re-applied.
        kept, suppressed = cached
        result = _classify_cached(
            kept, suppressed, baseline, select, len(file_paths), checkers
        )
    else:
        project = Project.from_files(file_paths, root=root, semantic=semantic)
        result = run_checkers(
            project, checkers, baseline=baseline, select=select, cache=cache
        )
        if cache is not None:
            pre_baseline = sorted(
                [*result.findings, *result.baselined],
                key=lambda f: (f.path, f.line, f.code),
            )
            cache.store_full(semantic, select, pre_baseline, result.suppressed)

    print(render_text(result, verbose=args.verbose))
    if cache is not None:
        print(render_cache_line(cache.stats))
    if args.json is not None:
        payload = render_json(
            result,
            strict=args.strict,
            cache_stats=cache.stats if cache is not None else None,
        )
        if str(args.json) == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")
    return result.exit_code(strict=args.strict)


def _cli_relpath(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _classify_cached(
    kept: list[Finding],
    suppressed: list[Finding],
    baseline: Optional[Baseline],
    select: Optional[list[str]],
    files_checked: int,
    checkers: list,
) -> AnalysisResult:
    """Re-apply the baseline over a replayed full-run cache entry."""
    result = AnalysisResult(
        files_checked=files_checked,
        checkers_run=tuple(checker.name for checker in checkers),
    )
    result.suppressed = list(suppressed)
    matched: set[str] = set()
    for finding in kept:
        if baseline is not None and baseline.matches(finding):
            matched.add(finding.fingerprint)
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    if baseline is not None:
        stale = baseline.unmatched(matched)
        if select:
            wanted = {code.strip().upper() for code in select}
            stale = [
                entry
                for entry in stale
                if str(entry.get("code", "")) in wanted
                or str(entry.get("code", "")).rstrip("0123456789") in wanted
            ]
        result.stale_baseline = stale
    return result


def _parse_select(select: Optional[str]) -> Optional[list[str]]:
    if not select:
        return None
    return [code.strip().upper() for code in select.split(",") if code.strip()]


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    semantic: bool = True,
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Programmatic entry point: run every checker over ``paths``."""
    project = Project.from_paths(paths, root=root, semantic=semantic)
    checkers = [checker_cls() for checker_cls in ALL_CHECKERS]
    return run_checkers(project, checkers, baseline=baseline)
