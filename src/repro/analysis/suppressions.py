"""Structured ``# analysis:`` comment directives.

Supported directives (one per comment, anywhere a comment is legal):

``# analysis: ignore[CODE1,CODE2]: justification``
    Silence the listed finding codes on this line *and* the line directly
    below it (so a directive can sit on its own line above long statements).
    The justification text is mandatory — an ignore without one is itself
    reported as ``ANA001``.

``# analysis: file-ignore[CODE]: justification``
    Silence a code for the whole file (same justification rule).

``# analysis: atomic: reason``
    Declares the next/same-line ``def`` atomic with respect to the
    cooperative scheduler: the function must not be a generator and must
    not transitively call one (checked by the atomicity checker).

``# analysis: atomic-begin(name)`` / ``# analysis: atomic-end(name)``
    Brackets a declared-atomic region inside a generator function: no
    yield points may occur between the markers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_IGNORE_RE = re.compile(
    r"^#\s*analysis:\s*(file-)?ignore\[([A-Z0-9,\s]+)\]\s*:?\s*(.*)$"
)
_ATOMIC_FN_RE = re.compile(r"^#\s*analysis:\s*atomic\s*(?:$|:\s*(.*)$)")
_ATOMIC_BEGIN_RE = re.compile(r"^#\s*analysis:\s*atomic-begin\(([\w.-]+)\)")
_ATOMIC_END_RE = re.compile(r"^#\s*analysis:\s*atomic-end\(([\w.-]+)\)")
#: anchored at the start of the comment token, so prose that merely
#: *mentions* a directive (docs, this file) is not parsed as one.
_ANY_DIRECTIVE_RE = re.compile(r"^#\s*analysis:")


@dataclass
class IgnoreDirective:
    line: int
    codes: tuple[str, ...]
    justification: str
    file_level: bool = False


@dataclass
class AtomicMarker:
    """A whole-function ``atomic`` mark or a begin/end region bracket."""

    line: int
    kind: str  # "function" | "begin" | "end"
    name: str = ""
    reason: str = ""


@dataclass
class Directives:
    """All ``# analysis:`` directives of one source file."""

    ignores: list[IgnoreDirective] = field(default_factory=list)
    atomic_markers: list[AtomicMarker] = field(default_factory=list)
    #: lines whose directive could not be parsed (reported as ANA001).
    malformed: list[tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, code: str, line: int) -> IgnoreDirective | None:
        """The directive silencing ``code`` at ``line``, if any."""
        for directive in self.ignores:
            if code not in directive.codes:
                continue
            if directive.file_level:
                return directive
            if directive.line in (line, line - 1):
                return directive
        return None


def parse_directives(comments: dict[int, str]) -> Directives:
    """Extract directives from a ``{line: comment_text}`` map."""
    out = Directives()
    for line, text in sorted(comments.items()):
        if not _ANY_DIRECTIVE_RE.search(text):
            continue
        match = _IGNORE_RE.search(text)
        if match:
            file_level = bool(match.group(1))
            codes = tuple(
                code.strip()
                for code in match.group(2).split(",")
                if code.strip()
            )
            justification = match.group(3).strip()
            if not codes or not justification or justification.upper().startswith("TODO"):
                out.malformed.append(
                    (line, "ignore directive needs codes and a justification")
                )
                continue
            out.ignores.append(
                IgnoreDirective(line, codes, justification, file_level)
            )
            continue
        match = _ATOMIC_BEGIN_RE.search(text)
        if match:
            out.atomic_markers.append(AtomicMarker(line, "begin", match.group(1)))
            continue
        match = _ATOMIC_END_RE.search(text)
        if match:
            out.atomic_markers.append(AtomicMarker(line, "end", match.group(1)))
            continue
        match = _ATOMIC_FN_RE.search(text)
        if match:
            out.atomic_markers.append(
                AtomicMarker(line, "function", reason=(match.group(1) or "").strip())
            )
            continue
        out.malformed.append((line, f"unrecognised analysis directive: {text.strip()}"))
    return out
