"""Project-wide call-graph, lock and field-access infrastructure.

This module is the shared semantic substrate of the interprocedural
checkers: the atomicity family (ATM), the race/lockset family (RACE) and
the typestate lifecycle family (LIF) all reason over the same function
index, the same confident-only call resolution, and the same may-yield
fixpoint.  It grew out of the atomicity checker when the race checkers
arrived — the model is checker-agnostic:

* :class:`FunctionCollector` extracts one :class:`FunctionInfo` per
  function/method (own scope only — nested defs are separate entries),
  recording yield points, call sites and statement-ordered lock events;
* :class:`CallGraph` indexes every collected function, resolves calls
  *confidently only* (``self.m()`` through the enclosing class and its
  project-visible bases, bare names through the defining module and
  explicit imports; anything ambiguous resolves to nothing), and runs the
  may-yield fixpoint — a function may yield iff it is a generator or
  confidently reaches one;
* :func:`scan_access_events` lowers one function body into a linear,
  execution-ordered stream of lock acquire/release, ``self.<field>``
  read/write, yield-point and call events — the input the lockset
  inference consumes.

Over-approximation is deliberately avoided everywhere: a call that cannot
be resolved with confidence contributes no edges, no locks and no yields.
Suppressions should silence real findings, not analysis guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.source import Project, SourceFile

#: callees whose call-expression arguments are handed to the scheduler
#: for *later* execution — constructing a generator inline for them is
#: not an inline yield point.
SCHEDULER_HANDOFF = frozenset({"spawn", "schedule", "schedule_at"})

#: container methods that mutate the receiver in place — a call
#: ``self.f.append(x)`` is a *write* to the shared state behind ``self.f``.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


@dataclass
class CallSite:
    """One call expression inside a function's own scope."""

    kind: str  # "self" | "name" | "attr"
    name: str
    line: int
    under_yield: bool
    #: dotted import resolution for kind == "name" (may equal name).
    dotted: str = ""
    #: the call is an argument of a spawn/schedule — it only *creates* the
    #: generator; the scheduler runs it outside this scope.
    deferred: bool = False
    #: dotted receiver text for kind == "attr"/"self" calls
    #: (``self.breakers`` for ``self.breakers.allow(...)``); best-effort.
    receiver: str = ""


@dataclass
class LockEvent:
    op: str  # "acquire" | "release" | "call"
    name: str  # lock name, or callee name for "call"
    line: int
    call: Optional[CallSite] = None


@dataclass
class FunctionInfo:
    source: SourceFile
    node: ast.AST
    qualname: str
    class_name: Optional[str]
    is_generator: bool = False
    yield_lines: list[int] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    lock_events: list[LockEvent] = field(default_factory=list)
    may_yield: bool = False
    #: one callee responsible for may_yield (for witness chains).
    witness: Optional["FunctionInfo"] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def chain(self) -> str:
        """Human witness path from this function to a generator."""
        parts = [self.qualname]
        seen = {id(self)}
        current = self.witness
        while current is not None and id(current) not in seen:
            parts.append(current.qualname)
            seen.add(id(current))
            current = current.witness
        return " -> ".join(parts)


@dataclass
class ClassInfo:
    name: str
    bases: list[str]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


def receiver_text(node: ast.expr) -> str:
    """Dotted receiver of an attribute call, best-effort (``""`` if not a
    simple ``name.attr.attr`` chain)."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    parts.append(current.id)
    parts.reverse()
    return ".".join(parts)


class FunctionCollector:
    """Extracts per-function info (own scope only) from one module."""

    def __init__(self, source: SourceFile, lock_names: frozenset[str]) -> None:
        self.source = source
        self.lock_names = lock_names
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        #: ids of Call nodes passed as arguments to spawn/schedule — they
        #: construct a generator for the scheduler, they don't run inline.
        self._deferred_ids: set[int] = set()

    def collect(self) -> None:
        assert self.source.tree is not None
        self._visit_body(self.source.tree.body, prefix="", class_info=None)

    def _visit_body(
        self,
        body: list[ast.stmt],
        prefix: str,
        class_info: Optional[ClassInfo],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}" if prefix else node.name
                info = FunctionInfo(
                    source=self.source,
                    node=node,
                    qualname=qual,
                    class_name=class_info.name if class_info else None,
                )
                self._scan_function(node, info)
                self.functions.append(info)
                if class_info is not None:
                    class_info.methods[node.name] = info
            elif isinstance(node, ast.ClassDef):
                bases = [self._base_name(base) for base in node.bases]
                cls = ClassInfo(name=node.name, bases=[b for b in bases if b])
                self.classes.append(cls)
                self._visit_body(node.body, prefix=node.name, class_info=cls)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                # classes/functions nested in control flow at module level
                for child_body in stmt_bodies(node):
                    self._visit_body(child_body, prefix, class_info)

    @staticmethod
    def _base_name(base: ast.expr) -> str:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return ""

    # -- per-function scan (own scope: nested defs are boundaries) ---------------

    def _scan_function(self, fn: ast.AST, info: FunctionInfo) -> None:
        nested: list[tuple[ast.AST, FunctionInfo]] = []

        def walk(node: ast.AST, under_yield: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    if not isinstance(child, ast.Lambda):
                        qual = f"{info.qualname}.<locals>.{child.name}"
                        sub = FunctionInfo(
                            source=self.source,
                            node=child,
                            qualname=qual,
                            class_name=info.class_name,
                        )
                        nested.append((child, sub))
                    continue
                if isinstance(child, (ast.Yield, ast.YieldFrom)):
                    info.is_generator = True
                    info.yield_lines.append(child.lineno)
                    walk(child, under_yield=True)
                    continue
                if isinstance(child, ast.Call):
                    self._note_call(child, info, under_yield)
                walk(child, under_yield=False)

        walk(fn, under_yield=False)
        self._scan_lock_events(fn, info)
        for child, sub in nested:
            self._scan_function(child, sub)
            self.functions.append(sub)

    def _note_call(
        self, node: ast.Call, info: FunctionInfo, under_yield: bool
    ) -> None:
        func = node.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if callee in SCHEDULER_HANDOFF:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Call):
                    self._deferred_ids.add(id(arg))
        deferred = id(node) in self._deferred_ids
        if isinstance(func, ast.Name):
            info.calls.append(
                CallSite(
                    kind="name",
                    name=func.id,
                    line=node.lineno,
                    under_yield=under_yield,
                    dotted=self.source.import_aliases.get(func.id, func.id),
                    deferred=deferred,
                )
            )
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in (
                "self",
                "cls",
            ):
                kind = "self"
            else:
                kind = "attr"
            info.calls.append(
                CallSite(
                    kind=kind,
                    name=func.attr,
                    line=node.lineno,
                    under_yield=under_yield,
                    deferred=deferred,
                    receiver=receiver_text(func.value),
                )
            )

    # -- lock events in statement order -------------------------------------------

    def _scan_lock_events(self, fn: ast.AST, info: FunctionInfo) -> None:
        if not self.lock_names:
            return

        def lock_of(call: ast.Call) -> Optional[str]:
            func = call.func
            if not isinstance(func, ast.Attribute):
                return None
            if func.attr not in ("acquire", "release"):
                return None
            target = func.value
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            return name if name in self.lock_names else None

        def scan_expr(node: ast.AST) -> None:
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                lock = lock_of(child)
                if lock is not None:
                    op = child.func.attr  # type: ignore[union-attr]
                    info.lock_events.append(LockEvent(op, lock, child.lineno))
                elif isinstance(child.func, (ast.Name, ast.Attribute)):
                    site = call_site_of(child, self.source)
                    if site is not None:
                        info.lock_events.append(
                            LockEvent("call", site.name, child.lineno, call=site)
                        )

        def scan_body(body: list[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.With):
                    held: list[str] = []
                    for item in stmt.items:
                        expr = item.context_expr
                        name = None
                        if isinstance(expr, ast.Name):
                            name = expr.id
                        elif isinstance(expr, ast.Attribute):
                            name = expr.attr
                        if name in self.lock_names:
                            info.lock_events.append(
                                LockEvent("acquire", name, stmt.lineno)
                            )
                            held.append(name)
                        else:
                            scan_expr(expr)
                    scan_body(stmt.body)
                    for name in reversed(held):
                        info.lock_events.append(
                            LockEvent(
                                "release",
                                name,
                                getattr(stmt, "end_lineno", stmt.lineno)
                                or stmt.lineno,
                            )
                        )
                    continue
                for expr in stmt_exprs(stmt):
                    scan_expr(expr)
                for body_part in stmt_bodies(stmt):
                    scan_body(body_part)

        scan_body(getattr(fn, "body", []))


def call_site_of(node: ast.Call, source: SourceFile) -> Optional[CallSite]:
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite(
            kind="name",
            name=func.id,
            line=node.lineno,
            under_yield=False,
            dotted=source.import_aliases.get(func.id, func.id),
        )
    if isinstance(func, ast.Attribute):
        kind = (
            "self"
            if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls")
            else "attr"
        )
        return CallSite(
            kind=kind,
            name=func.attr,
            line=node.lineno,
            under_yield=False,
            receiver=receiver_text(func.value),
        )
    return None


def stmt_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """Expression roots of a statement, excluding nested statement bodies."""
    out: list[ast.AST] = []
    for fieldname, value in ast.iter_fields(stmt):
        if fieldname in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.expr))
    return out


def stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for fieldname in ("body", "orelse", "finalbody"):
        value = getattr(stmt, fieldname, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


class CallGraph:
    """Project-wide index with confident-only call resolution."""

    def __init__(self, project: Project) -> None:
        self.functions: list[FunctionInfo] = []
        self.classes: dict[str, list[ClassInfo]] = {}
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.lock_names = discover_lock_names(project)
        for source in project.files:
            if source.tree is None:
                continue
            collector = FunctionCollector(source, self.lock_names)
            collector.collect()
            self.functions.extend(collector.functions)
            for cls in collector.classes:
                self.classes.setdefault(cls.name, []).append(cls)
            for fn in collector.functions:
                self.by_name.setdefault(fn.name, []).append(fn)
                if "." not in fn.qualname:
                    self.module_functions[(source.relpath, fn.qualname)] = fn
        self._compute_may_yield()

    # -- resolution ---------------------------------------------------------------

    def resolve(self, caller: FunctionInfo, site: CallSite) -> list[FunctionInfo]:
        if site.kind == "name":
            local = self.module_functions.get((caller.source.relpath, site.name))
            if local is not None:
                return [local]
            dotted = site.dotted
            if dotted and "." in dotted:
                module_path, func_name = dotted.rsplit(".", 1)
                suffix = module_path.replace(".", "/") + ".py"
                for (relpath, name), fn in self.module_functions.items():
                    if name == func_name and relpath.endswith(suffix):
                        return [fn]
            return []
        if site.kind == "self" and caller.class_name:
            return self._resolve_method(caller.class_name, site.name, set())
        return []

    def _resolve_method(
        self, class_name: str, method: str, seen: set[str]
    ) -> list[FunctionInfo]:
        if class_name in seen:
            return []
        seen.add(class_name)
        out: list[FunctionInfo] = []
        for cls in self.classes.get(class_name, []):
            if method in cls.methods:
                out.append(cls.methods[method])
                continue
            for base in cls.bases:
                out.extend(self._resolve_method(base, method, seen))
        return out

    def reachable_from(self, start: FunctionInfo) -> Iterator[FunctionInfo]:
        """``start`` and every function it confidently reaches (BFS)."""
        seen: set[int] = {id(start)}
        queue: list[FunctionInfo] = [start]
        while queue:
            fn = queue.pop(0)
            yield fn
            for site in fn.calls:
                for target in self.resolve(fn, site):
                    if id(target) not in seen:
                        seen.add(id(target))
                        queue.append(target)

    # -- may-yield fixpoint ---------------------------------------------------------

    def _compute_may_yield(self) -> None:
        for fn in self.functions:
            fn.may_yield = fn.is_generator
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if fn.may_yield:
                    continue
                for site in fn.calls:
                    if site.deferred:
                        continue
                    for target in self.resolve(fn, site):
                        if target.may_yield:
                            fn.may_yield = True
                            fn.witness = target
                            changed = True
                            break
                    if fn.may_yield:
                        break

    def transitive_locks(self) -> dict[int, set[str]]:
        """``id(fn) -> locks fn acquires, directly or via confident calls``."""
        acquired: dict[int, set[str]] = {
            id(fn): {
                event.name for event in fn.lock_events if event.op == "acquire"
            }
            for fn in self.functions
        }
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                mine = acquired[id(fn)]
                for event in fn.lock_events:
                    if event.op != "call" or event.call is None:
                        continue
                    for target in self.resolve(fn, event.call):
                        extra = acquired[id(target)] - mine
                        if extra:
                            mine |= extra
                            changed = True
        return acquired


def discover_lock_names(project: Project) -> frozenset[str]:
    """Attribute/variable names assigned a ``Lock(...)`` anywhere."""
    names: set[str] = set()
    for source in project.files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if not callee.endswith("Lock"):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def function_at_marker(
    functions: list[FunctionInfo], marker_line: int
) -> Optional[FunctionInfo]:
    """The function a same-line / line-above ``# analysis:`` marker names."""
    for fn in functions:
        node = fn.node
        candidates = {node.lineno, node.lineno - 1}
        for decorator in getattr(node, "decorator_list", []):
            candidates.add(decorator.lineno - 1)
        if marker_line in candidates or marker_line + 1 in {node.lineno}:
            return fn
    return None


def atomic_function_ids(
    source: SourceFile, functions: list[FunctionInfo]
) -> set[int]:
    """ids of functions in ``source`` declared ``# analysis: atomic``."""
    out: set[int] = set()
    local = [fn for fn in functions if fn.source is source]
    for marker in source.directives.atomic_markers:
        if marker.kind != "function":
            continue
        fn = function_at_marker(local, marker.line)
        if fn is not None:
            out.add(id(fn))
    return out


def atomic_regions(source: SourceFile) -> list[tuple[int, int]]:
    """Paired ``atomic-begin``/``atomic-end`` line ranges in ``source``.

    Unbalanced markers are the atomicity checker's problem (ATM004); here
    they simply produce no region.
    """
    open_regions: dict[str, int] = {}
    spans: list[tuple[int, int]] = []
    for marker in source.directives.atomic_markers:
        if marker.kind == "begin":
            open_regions[marker.name] = marker.line
        elif marker.kind == "end":
            begin = open_regions.pop(marker.name, None)
            if begin is not None:
                spans.append((begin, marker.line))
    return spans


# -- execution-ordered access events ------------------------------------------------


@dataclass
class AccessEvent:
    """One step of a function body, in (approximate) execution order."""

    kind: str  # "acquire" | "release" | "read" | "write" | "yield" | "call"
    name: str  # lock name, field name, or callee name
    line: int
    call: Optional[CallSite] = None


def scan_access_events(
    fn_node: ast.AST,
    source: SourceFile,
    lock_names: frozenset[str],
) -> list[AccessEvent]:
    """Lower one function body to a linear stream of lock, ``self.<field>``
    access, yield-point and call events.

    The stream is execution-ordered *per statement* (an assignment's value
    is scanned before its targets, a ``with`` releases at block exit);
    branches are concatenated rather than forked — the lockset analyses
    on top are path-insensitive by design.
    """
    events: list[AccessEvent] = []

    def lock_of(call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in ("acquire", "release"):
            return None
        target = func.value
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        return name if name in lock_names else None

    def self_field(node: ast.expr) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("self", "cls")
        ):
            return node.attr
        return None

    def scan_expr(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested scopes are separate functions
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                scan_expr(node.value)
            events.append(AccessEvent("yield", "", node.lineno))
            return
        if isinstance(node, ast.Call):
            lock = lock_of(node)
            if lock is not None:
                op = node.func.attr  # type: ignore[union-attr]
                events.append(AccessEvent(op, lock, node.lineno))
                return
            func = node.func
            mutated = (
                self_field(func.value)
                if isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                else None
            )
            # receiver first (a read of the binding), then arguments,
            # then the mutation and the call itself.
            scan_expr(func)
            for arg in node.args:
                scan_expr(arg)
            for keyword in node.keywords:
                scan_expr(keyword.value)
            if mutated is not None:
                events.append(AccessEvent("write", mutated, node.lineno))
            if isinstance(func, (ast.Name, ast.Attribute)):
                site = call_site_of(node, source)
                if site is not None:
                    events.append(
                        AccessEvent("call", site.name, node.lineno, call=site)
                    )
            return
        field_name = self_field(node)
        if field_name is not None:
            ctx = getattr(node, "ctx", None)
            if isinstance(ctx, ast.Load):
                events.append(AccessEvent("read", field_name, node.lineno))
            elif isinstance(ctx, (ast.Store, ast.Del)):
                events.append(AccessEvent("write", field_name, node.lineno))
            # still scan the value side of deeper chains (self handled above)
            return
        for child in ast.iter_child_nodes(node):
            scan_expr(child)

    def scan_target(node: ast.expr) -> None:
        field_name = self_field(node)
        if field_name is not None:
            events.append(AccessEvent("write", field_name, node.lineno))
            return
        if isinstance(node, ast.Subscript):
            # ``self.f[k] = v`` reads the binding, writes the contents.
            base_field = self_field(node.value)
            scan_expr(node.slice)
            if base_field is not None:
                events.append(AccessEvent("read", base_field, node.lineno))
                events.append(AccessEvent("write", base_field, node.lineno))
            else:
                scan_expr(node.value)
            return
        if isinstance(node, ast.Attribute):
            scan_expr(node.value)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                scan_target(element)
            return
        if isinstance(node, ast.Starred):
            scan_target(node.value)

    def scan_body(body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.With):
                held: list[str] = []
                for item in stmt.items:
                    expr = item.context_expr
                    name: Optional[str] = None
                    if isinstance(expr, ast.Name):
                        name = expr.id
                    elif isinstance(expr, ast.Attribute):
                        name = expr.attr
                    if name in lock_names:
                        events.append(
                            AccessEvent("acquire", name, stmt.lineno)
                        )
                        held.append(name)
                    else:
                        scan_expr(expr)
                scan_body(stmt.body)
                end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
                for name in reversed(held):
                    events.append(AccessEvent("release", name, end))
                continue
            if isinstance(stmt, ast.Assign):
                scan_expr(stmt.value)
                for target in stmt.targets:
                    scan_target(target)
            elif isinstance(stmt, ast.AugAssign):
                scan_expr(stmt.value)
                field_name = self_field(stmt.target)
                if field_name is not None:
                    events.append(
                        AccessEvent("read", field_name, stmt.lineno)
                    )
                    events.append(
                        AccessEvent("write", field_name, stmt.lineno)
                    )
                else:
                    scan_target(stmt.target)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    scan_expr(stmt.value)
                scan_target(stmt.target)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    scan_target(target)
            else:
                for expr in stmt_exprs(stmt):
                    scan_expr(expr)
            for body_part in stmt_bodies(stmt):
                scan_body(body_part)

    scan_body(getattr(fn_node, "body", []))
    return events
