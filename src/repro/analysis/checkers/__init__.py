"""The checker families shipped with ``repro.analysis``."""

from repro.analysis.checkers.atomicity import AtomicityChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exceptions import ExceptionSafetyChecker
from repro.analysis.checkers.idlconf import IdlConformanceChecker

#: registration order is report order.
ALL_CHECKERS = (
    DeterminismChecker,
    IdlConformanceChecker,
    AtomicityChecker,
    ExceptionSafetyChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "AtomicityChecker",
    "DeterminismChecker",
    "ExceptionSafetyChecker",
    "IdlConformanceChecker",
]
