"""The checker families shipped with ``repro.analysis``."""

from repro.analysis.checkers.atomicity import AtomicityChecker
from repro.analysis.checkers.confflags import ConfigFlagChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.exceptions import ExceptionSafetyChecker
from repro.analysis.checkers.idlconf import IdlConformanceChecker
from repro.analysis.checkers.lifecycle import LifecycleChecker
from repro.analysis.checkers.races import RaceChecker

#: registration order is report order.
ALL_CHECKERS = (
    DeterminismChecker,
    IdlConformanceChecker,
    AtomicityChecker,
    RaceChecker,
    LifecycleChecker,
    ConfigFlagChecker,
    ExceptionSafetyChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "AtomicityChecker",
    "ConfigFlagChecker",
    "DeterminismChecker",
    "ExceptionSafetyChecker",
    "IdlConformanceChecker",
    "LifecycleChecker",
    "RaceChecker",
]
