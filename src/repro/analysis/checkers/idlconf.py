"""IDL conformance checker (IDL).

The paper's whole fault-tolerance story rests on one contract: the system's
behaviour is *defined by its IDL*.  Servants must implement every declared
operation (the generated skeleton default raises ``NO_IMPLEMENT`` — drift
only surfaces at runtime, on the unlucky call), and an FT proxy must
intercept **every** operation of its interface, or the un-intercepted call
silently bypasses recovery and checkpointing.  This checker makes both
machine-checked:

IDL001  servant class missing an IDL operation;
IDL002  servant method arity disagrees with the IDL signature;
IDL003  FT proxy does not intercept an IDL operation;
IDL004  embedded IDL fails to parse;
IDL005  compiled stub operation table disagrees with the IDL AST
        (semantic toolchain cross-check);
IDL006  generated fast-path marshal/dispatch tables disagree with the
        IDL — a compiled type has no registered AOT coders, an operation
        has no generated request builder / dispatch entry, or the emitted
        module trips the determinism lint (wall clock, unseeded entropy).

Discovery is convention-based: any module-level ``NAME_IDL = \"\"\"...\"\"\"``
constant is parsed with the project's own :mod:`repro.orb.idl.parser`; any
class deriving from ``<Interface>Skeleton`` is a servant of that interface;
any class named ``*FtProxy`` (or deriving from a ``*Stub`` alongside a
proxy base) is a hand-written proxy.  When semantic checks are enabled the
checker additionally compiles every discovered IDL document and runs
:func:`repro.ft.proxies.make_ft_proxy` over each interface, verifying the
generated proxy intercepts the full operation table — including the
delta-store surface (``store_delta``) added in PR 3.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker
from repro.analysis.source import Project, SourceFile
from repro.errors import IdlError
from repro.orb.idl import idlast
from repro.orb.idl.parser import parse_idl

#: the checkpoint/recovery machinery itself — never wrapped by proxies.
CHECKPOINT_OPERATIONS = frozenset({"get_checkpoint", "restore_from"})


@dataclass
class IdlOperation:
    name: str
    nparams: int
    #: method name a proxy must define (attribute accessors are exposed
    #: as ``get_x``/``set_x`` on stubs and proxies).
    proxy_name: str
    #: method name a servant must define ("" = skeleton provides a
    #: default, e.g. attribute accessors backed by getattr/setattr).
    servant_name: str


@dataclass
class IdlInterface:
    name: str
    doc: "IdlDocument"
    bases: list[str] = field(default_factory=list)
    own_operations: list[IdlOperation] = field(default_factory=list)

    def all_operations(
        self, registry: dict[str, "IdlInterface"]
    ) -> list[IdlOperation]:
        seen: dict[str, IdlOperation] = {}
        for base in self.bases:
            base_iface = registry.get(base)
            if base_iface is not None and base_iface is not self:
                for op in base_iface.all_operations(registry):
                    seen[op.name] = op
        for op in self.own_operations:
            seen[op.name] = op
        return list(seen.values())


@dataclass
class IdlDocument:
    source: SourceFile
    line: int
    constant_name: str
    text: str
    interfaces: dict[str, IdlInterface] = field(default_factory=dict)


def _operations_of(node: idlast.InterfaceDecl, iface: IdlInterface) -> None:
    for member in node.body:
        if isinstance(member, idlast.OperationDecl):
            iface.own_operations.append(
                IdlOperation(
                    name=member.name,
                    nparams=len(member.params),
                    proxy_name=member.name,
                    servant_name=member.name,
                )
            )
        elif isinstance(member, idlast.AttributeDecl):
            for attr_name in member.names:
                iface.own_operations.append(
                    IdlOperation(
                        name=f"_get_{attr_name}",
                        nparams=0,
                        proxy_name=f"get_{attr_name}",
                        servant_name="",
                    )
                )
                if not member.readonly:
                    iface.own_operations.append(
                        IdlOperation(
                            name=f"_set_{attr_name}",
                            nparams=1,
                            proxy_name=f"set_{attr_name}",
                            servant_name="",
                        )
                    )


def _walk_interfaces(body: list, doc: IdlDocument) -> None:
    for node in body:
        if isinstance(node, idlast.ModuleDecl):
            _walk_interfaces(node.body, doc)
        elif isinstance(node, idlast.InterfaceDecl) and not node.forward:
            iface = IdlInterface(
                name=node.name,
                doc=doc,
                bases=[base.parts[-1] for base in node.bases],
            )
            _operations_of(node, iface)
            doc.interfaces[node.name] = iface


class IdlConformanceChecker(Checker):
    name = "idl-conformance"
    codes = {
        "IDL001": "servant class missing an IDL operation",
        "IDL002": "servant method arity disagrees with the IDL",
        "IDL003": "FT proxy does not intercept an IDL operation",
        "IDL004": "embedded IDL fails to parse",
        "IDL005": "compiled stub operation table disagrees with the IDL",
        "IDL006": "generated fast-path tables disagree with the IDL",
    }
    # IDL constants, servants and proxies all live in the package tree;
    # benchmarks/examples subclass stubs without owning any IDL contract.
    default_scope = ("repro/",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        documents = self._discover_idl(project, findings)
        registry: dict[str, IdlInterface] = {}
        for doc in documents:
            registry.update(doc.interfaces)
        findings.extend(self._check_servants(project, registry))
        findings.extend(self._check_handwritten_proxies(project, registry))
        if project.semantic:
            findings.extend(self._check_semantic(documents, registry))
        return findings

    # -- discovery -------------------------------------------------------------

    def _discover_idl(
        self, project: Project, findings: list[Finding]
    ) -> list[IdlDocument]:
        documents: list[IdlDocument] = []
        for source in self.scoped_files(project):
            for node in source.tree.body:
                if (
                    not isinstance(node, pyast.Assign)
                    or len(node.targets) != 1
                    or not isinstance(node.targets[0], pyast.Name)
                    or not node.targets[0].id.endswith("_IDL")
                    or not isinstance(node.value, pyast.Constant)
                    or not isinstance(node.value.value, str)
                ):
                    continue
                doc = IdlDocument(
                    source=source,
                    line=node.lineno,
                    constant_name=node.targets[0].id,
                    text=node.value.value,
                )
                try:
                    spec = parse_idl(doc.text)
                except IdlError as exc:
                    findings.append(
                        self.finding(
                            "IDL004",
                            f"{doc.constant_name} does not parse: {exc}",
                            source,
                            node,
                            context=doc.constant_name,
                        )
                    )
                    continue
                _walk_interfaces(spec.body, doc)
                documents.append(doc)
        return documents

    # -- servant conformance ------------------------------------------------------

    def _check_servants(
        self, project: Project, registry: dict[str, IdlInterface]
    ) -> list[Finding]:
        findings: list[Finding] = []
        class_index = _class_index(project)
        for source in self.scoped_files(project):
            for node in pyast.walk(source.tree):
                if not isinstance(node, pyast.ClassDef):
                    continue
                iface = _servant_interface(node, registry)
                if iface is None:
                    continue
                methods = _methods_with_inherited(node, class_index)
                for op in iface.all_operations(registry):
                    if not op.servant_name:
                        continue  # skeleton supplies attribute accessors
                    method = methods.get(op.servant_name)
                    if method is None:
                        findings.append(
                            self.finding(
                                "IDL001",
                                f"servant {node.name} does not implement "
                                f"{iface.name}.{op.servant_name} — the "
                                "skeleton default raises NO_IMPLEMENT at "
                                "runtime",
                                source,
                                node,
                                context=node.name,
                            )
                        )
                        continue
                    problem = _arity_mismatch(method, op.nparams)
                    if problem:
                        findings.append(
                            self.finding(
                                "IDL002",
                                f"servant {node.name}.{op.servant_name} "
                                f"{problem}; the IDL declares "
                                f"{op.nparams} parameter(s)",
                                source,
                                method,
                                context=f"{node.name}.{op.servant_name}",
                            )
                        )
        return findings

    # -- hand-written proxy conformance ---------------------------------------------

    def _check_handwritten_proxies(
        self, project: Project, registry: dict[str, IdlInterface]
    ) -> list[Finding]:
        findings: list[Finding] = []
        class_index = _class_index(project)
        for source in self.scoped_files(project):
            for node in pyast.walk(source.tree):
                if not isinstance(node, pyast.ClassDef):
                    continue
                iface = _proxy_interface(node, registry)
                if iface is None:
                    continue
                methods = _methods_with_inherited(
                    node, class_index, stop_at_stub=True
                )
                for op in iface.all_operations(registry):
                    if op.name in CHECKPOINT_OPERATIONS:
                        continue
                    if op.proxy_name not in methods:
                        findings.append(
                            self.finding(
                                "IDL003",
                                f"FT proxy {node.name} does not intercept "
                                f"{iface.name}.{op.proxy_name}; the call "
                                "would bypass recovery and checkpointing",
                                source,
                                node,
                                context=node.name,
                            )
                        )
        return findings

    # -- semantic cross-checks (compile the toolchain) --------------------------------

    def _check_semantic(
        self,
        documents: list[IdlDocument],
        registry: dict[str, IdlInterface],
    ) -> list[Finding]:
        from repro.ft.proxies import make_ft_proxy
        from repro.orb.idl import compile_idl
        from repro.orb.stubs import INTERFACE_ANCESTRY, USER_EXCEPTION_REGISTRY

        # Re-compiling live IDL registers fresh exception/interface classes
        # in the ORB's global registries, displacing the ones the running
        # code raises and catches — analysis must leave the runtime
        # untouched, so snapshot and restore them.
        saved_exceptions = dict(USER_EXCEPTION_REGISTRY)
        saved_ancestry = dict(INTERFACE_ANCESTRY)
        try:
            return self._check_semantic_inner(
                documents, registry, compile_idl, make_ft_proxy
            )
        finally:
            USER_EXCEPTION_REGISTRY.clear()
            USER_EXCEPTION_REGISTRY.update(saved_exceptions)
            INTERFACE_ANCESTRY.clear()
            INTERFACE_ANCESTRY.update(saved_ancestry)

    def _check_semantic_inner(
        self,
        documents: list[IdlDocument],
        registry: dict[str, IdlInterface],
        compile_idl: Callable[..., Any],
        make_ft_proxy: Callable[[type], type],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for doc in documents:
            try:
                namespace = compile_idl(doc.text, name=doc.constant_name.lower())
            except IdlError as exc:
                findings.append(
                    self.finding(
                        "IDL004",
                        f"{doc.constant_name} fails to compile: {exc}",
                        doc.source,
                        doc.line,
                        context=doc.constant_name,
                    )
                )
                continue
            for iface in doc.interfaces.values():
                stub_cls = getattr(namespace, f"{iface.name}Stub", None)
                if stub_cls is None:
                    findings.append(
                        self.finding(
                            "IDL005",
                            f"compiling {doc.constant_name} produced no "
                            f"{iface.name}Stub",
                            doc.source,
                            doc.line,
                            context=iface.name,
                        )
                    )
                    continue
                expected = {
                    op.name: op.nparams
                    for op in iface.all_operations(registry)
                }
                table = stub_cls.__operations__
                for op_name, nparams in sorted(expected.items()):
                    info = table.get(op_name)
                    if info is None:
                        findings.append(
                            self.finding(
                                "IDL005",
                                f"stub {iface.name}Stub has no entry for "
                                f"IDL operation {op_name}",
                                doc.source,
                                doc.line,
                                context=iface.name,
                            )
                        )
                    elif len(info.params) != nparams:
                        findings.append(
                            self.finding(
                                "IDL005",
                                f"stub {iface.name}Stub.{op_name} carries "
                                f"{len(info.params)} parameter(s), IDL "
                                f"declares {nparams}",
                                doc.source,
                                doc.line,
                                context=iface.name,
                            )
                        )
                proxy_cls = make_ft_proxy(stub_cls)
                findings.extend(
                    check_proxy_coverage(
                        stub_cls,
                        proxy_cls,
                        source=doc.source,
                        line=doc.line,
                        checker=self,
                        interface=iface.name,
                    )
                )
            findings.extend(self._check_fast_path(doc, namespace))
        return findings

    # -- AOT fast-path cross-checks (IDL006) ---------------------------------------

    def _check_fast_path(self, doc: IdlDocument, namespace: Any) -> list[Finding]:
        """Cross-check the generated AOT marshal/dispatch tables.

        ``compile_idl`` (fast_path default) registers flat coders keyed by
        the TypeCode trees built from the parsed AST; every compiled value
        type must have a coder pair, every operation a request builder,
        argument decoder and skeleton dispatch entry, and the emitted
        module itself must pass the determinism lint (no wall clock or
        unseeded entropy baked into generated code)."""
        from pathlib import Path

        from repro.analysis.checkers.determinism import DeterminismChecker
        from repro.orb import cdr
        from repro.orb.stubs import (
            generated_args_decoder,
            generated_request_encoder,
        )

        findings: list[Finding] = []
        coders = cdr.generated_coders()
        for attr, value in sorted(vars(namespace).items()):
            if attr.startswith("__") or not isinstance(value, type):
                continue
            typecode = getattr(value, "__tc__", None)
            if typecode is None:
                continue
            if typecode not in coders:
                findings.append(
                    self.finding(
                        "IDL006",
                        f"{doc.constant_name}: compiled type {attr} has no "
                        "registered generated fast-path coders",
                        doc.source,
                        doc.line,
                        context=attr,
                    )
                )
        for iface in sorted(doc.interfaces):
            stub_cls = getattr(namespace, f"{iface}Stub", None)
            skel_cls = getattr(namespace, f"{iface}Skeleton", None)
            if stub_cls is None or skel_cls is None:
                continue  # IDL005 already covers the missing class
            dispatch = getattr(skel_cls, "__fastdispatch__", None) or {}
            for op_name, info in sorted(stub_cls.__operations__.items()):
                if (
                    generated_request_encoder(info) is None
                    or generated_args_decoder(info) is None
                ):
                    findings.append(
                        self.finding(
                            "IDL006",
                            f"{doc.constant_name}: no generated request "
                            f"builder/arg decoder for {iface}.{op_name}",
                            doc.source,
                            doc.line,
                            context=iface,
                        )
                    )
                if op_name not in dispatch:
                    findings.append(
                        self.finding(
                            "IDL006",
                            f"{doc.constant_name}: skeleton dispatch table "
                            f"is missing {iface}.{op_name}",
                            doc.source,
                            doc.line,
                            context=iface,
                        )
                    )
        generated = SourceFile.from_text(
            namespace.__source__,
            Path(f"{doc.source.relpath}::{doc.constant_name}"),
            Path("."),
        )
        if generated.tree is not None:
            stub_project = Project(root=Path("."), files=[generated], semantic=False)
            for det in DeterminismChecker().check_file(generated, stub_project):
                findings.append(
                    self.finding(
                        "IDL006",
                        f"generated module for {doc.constant_name} fails "
                        f"the determinism lint: {det.code} at generated "
                        f"line {det.line}: {det.message}",
                        doc.source,
                        doc.line,
                        context=doc.constant_name,
                    )
                )
        return findings


def check_proxy_coverage(
    stub_cls: type,
    proxy_cls: type,
    source: Optional[SourceFile] = None,
    line: int = 1,
    checker: Optional[Checker] = None,
    interface: str = "",
) -> list[Finding]:
    """Verify ``proxy_cls`` intercepts every operation of ``stub_cls``.

    An operation is *intercepted* when the attribute the client calls is
    defined by the proxy side of the MRO — i.e. not inherited unchanged
    from the stub.  Exposed as a standalone function so tests (and other
    tools) can run the proxy contract against any stub/proxy pair.
    """
    produced = checker or IdlConformanceChecker()
    findings: list[Finding] = []
    stub_classes = set(stub_cls.__mro__)
    for op_name in stub_cls.__operations__:
        if op_name in CHECKPOINT_OPERATIONS:
            continue
        if op_name.startswith("_get_"):
            method = f"get_{op_name[5:]}"
        elif op_name.startswith("_set_"):
            method = f"set_{op_name[5:]}"
        else:
            method = op_name
        intercepted = any(
            method in cls.__dict__
            for cls in proxy_cls.__mro__
            if cls not in stub_classes
        )
        if not intercepted:
            name = interface or stub_cls.__name__
            finding = Finding(
                code="IDL003",
                message=(
                    f"FT proxy {proxy_cls.__name__} does not intercept "
                    f"{name}.{method}; the call would bypass recovery "
                    "and checkpointing"
                ),
                path=source.relpath if source else "<runtime>",
                line=line,
                severity=Severity.ERROR,
                checker=produced.name,
                context=name,
            )
            findings.append(finding)
    return findings


# -- AST helpers -------------------------------------------------------------------


def _base_names(node: pyast.ClassDef) -> list[str]:
    names: list[str] = []
    for base in node.bases:
        if isinstance(base, pyast.Name):
            names.append(base.id)
        elif isinstance(base, pyast.Attribute):
            names.append(base.attr)
    return names


def _servant_interface(
    node: pyast.ClassDef, registry: dict[str, IdlInterface]
) -> Optional[IdlInterface]:
    for base in _base_names(node):
        if base.endswith("Skeleton"):
            iface = registry.get(base[: -len("Skeleton")])
            if iface is not None:
                return iface
    return None


def _proxy_interface(
    node: pyast.ClassDef, registry: dict[str, IdlInterface]
) -> Optional[IdlInterface]:
    bases = _base_names(node)
    stub_iface: Optional[IdlInterface] = None
    for base in bases:
        if base.endswith("Stub"):
            stub_iface = registry.get(base[: -len("Stub")])
    if stub_iface is None:
        return None
    looks_like_proxy = node.name.endswith("FtProxy") or any(
        "Proxy" in base for base in bases if not base.endswith("Stub")
    )
    return stub_iface if looks_like_proxy else None


def _class_index(project: Project) -> dict[str, list[pyast.ClassDef]]:
    index: dict[str, list[pyast.ClassDef]] = {}
    for source in project.files:
        if source.tree is None:
            continue
        for node in pyast.walk(source.tree):
            if isinstance(node, pyast.ClassDef):
                index.setdefault(node.name, []).append(node)
    return index


def _methods_with_inherited(
    node: pyast.ClassDef,
    class_index: dict[str, list[pyast.ClassDef]],
    stop_at_stub: bool = False,
    _seen: Optional[set[str]] = None,
) -> dict[str, pyast.FunctionDef]:
    """Methods of ``node`` plus statically-visible project base classes.

    ``stop_at_stub`` prevents the walk from descending into generated
    stub/skeleton bases (they provide *defaults*, not interceptions).
    """
    seen = _seen if _seen is not None else set()
    if node.name in seen:
        return {}
    seen.add(node.name)
    methods: dict[str, pyast.FunctionDef] = {}
    for base in _base_names(node):
        if stop_at_stub and (base.endswith("Stub") or base.endswith("Skeleton")):
            continue
        for base_node in class_index.get(base, []):
            for name, method in _methods_with_inherited(
                base_node, class_index, stop_at_stub, seen
            ).items():
                methods.setdefault(name, method)
    for child in node.body:
        if isinstance(child, (pyast.FunctionDef, pyast.AsyncFunctionDef)):
            methods[child.name] = child  # type: ignore[assignment]
    return methods


def _arity_mismatch(method: pyast.FunctionDef, nparams: int) -> str:
    """'' when the method accepts self + nparams positionals, else why not."""
    args = method.args
    if args.vararg is not None:
        return ""
    positional = len(args.posonlyargs) + len(args.args)
    required = positional - len(args.defaults)
    accepted_low = required
    accepted_high = positional
    want = nparams + 1  # + self
    if accepted_low <= want <= accepted_high:
        return ""
    declared = positional - 1
    return f"accepts {declared} parameter(s)"
