"""Exception-safety lint (EXC).

The SLS CORBA experience report attributes most production incidents to
silently swallowed failures: a handler that catches too much (or catches a
communication failure and does nothing) converts a recoverable fault into
silent state divergence.  Three codes:

EXC001  bare ``except:`` — catches ``SystemExit``/``KeyboardInterrupt`` too;
EXC002  ``except Exception`` / ``BaseException`` that neither re-raises nor
        carries a justification;
EXC003  a ``CommFailure``/``TRANSIENT``-class error swallowed outside the
        designated recovery handlers (``ft/recovery.py``) — recoverable
        failures must either propagate, reach a recovery coordinator, or
        document why dropping them is safe.

A handler counts as *propagating* when its body re-raises (any ``raise``),
feeds the caught exception into a failure sink (``try_fail``,
``mark_error``, ``set_exception``, ``_finish_failure``, ...) — the
future-based equivalent of re-raising in this codebase — or *aggregates*
it into a variable the enclosing function later raises (the quorum-write
pattern: ``last_error = exc`` in the loop, ``raise RecoveryError(...)
from last_error`` after it).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker
from repro.analysis.source import Project, SourceFile

#: exception names that represent recoverable communication failures.
RECOVERABLE_NAMES = frozenset(
    {
        "COMM_FAILURE",
        "CommFailure",
        "TRANSIENT",
        "OBJECT_NOT_EXIST",
        "TIMEOUT",
        "SystemException",
        "RECOVERABLE",
        "HOST_BLAMING",
    }
)

#: attribute calls that count as propagating the caught exception.
FAILURE_SINKS = frozenset(
    {
        "try_fail",
        "fail",
        "mark_error",
        "set_exception",
        "_note_persist_failure",
        "_finish_failure",
    }
)

#: files whose whole job is deciding what to do with recoverable failures.
DESIGNATED_HANDLER_FILES = ("repro/ft/recovery.py",)


def _handler_type_names(handler: ast.ExceptHandler) -> list[str]:
    """Exception class names a handler catches (last dotted segment)."""
    names: list[str] = []

    def add(node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
        elif isinstance(node, ast.Tuple):
            for element in node.elts:
                add(element)
        elif isinstance(node, ast.Starred):
            add(node.value)

    if handler.type is not None:
        add(handler.type)
    return names


def _aggregated_names(handler: ast.ExceptHandler) -> set[str]:
    """Names the handler assigns the caught exception to (``last_error = exc``)."""
    caught = handler.name
    if caught is None:
        return set()
    names: set[str] = set()
    for node in ast.walk(handler):
        if not isinstance(node, ast.Assign):
            continue
        uses_caught = any(
            isinstance(ref, ast.Name) and ref.id == caught
            for ref in ast.walk(node.value)
        )
        if not uses_caught:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _raise_referenced_names(scope: ast.AST) -> set[str]:
    """Names referenced by any ``raise`` in ``scope`` (value or cause),
    excluding nested function bodies."""
    names: set[str] = set()

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Raise):
                for part in (child.exc, child.cause):
                    if part is None:
                        continue
                    for ref in ast.walk(part):
                        if isinstance(ref, ast.Name):
                            names.add(ref.id)
                        elif isinstance(ref, ast.Attribute):
                            names.add(ref.attr)
            walk(child)

    walk(scope)
    return names


def _propagates(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or feeds a failure sink."""
    caught = handler.name  # may be None
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr not in FAILURE_SINKS:
                continue
            if caught is None:
                return True
            for arg in node.args:
                for name in ast.walk(arg):
                    if isinstance(name, ast.Name) and name.id == caught:
                        return True
    return False


class ExceptionSafetyChecker(Checker):
    name = "exception-safety"
    codes = {
        "EXC001": "bare except",
        "EXC002": "overbroad except without re-raise or justification",
        "EXC003": "recoverable comm failure swallowed outside designated handlers",
    }
    default_scope = ("repro/", "benchmarks/", "examples/")

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        assert source.tree is not None
        findings: list[Finding] = []
        designated = any(
            source.relpath.endswith(path) for path in DESIGNATED_HANDLER_FILES
        )
        raise_names_of = self._scope_raise_names(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(
                        "EXC001",
                        "bare 'except:' catches SystemExit and "
                        "KeyboardInterrupt; name the exceptions",
                        source,
                        node,
                    )
                )
                continue
            names = _handler_type_names(node)
            propagates = _propagates(node) or bool(
                _aggregated_names(node) & raise_names_of.get(id(node), set())
            )
            if not propagates and (
                "Exception" in names or "BaseException" in names
            ):
                findings.append(
                    self.finding(
                        "EXC002",
                        "except clause catches Exception without re-raising; "
                        "narrow it or justify with an ignore directive",
                        source,
                        node,
                    )
                )
            if (
                not designated
                and not propagates
                and any(name in RECOVERABLE_NAMES for name in names)
            ):
                caught = sorted(set(names) & RECOVERABLE_NAMES)
                findings.append(
                    self.finding(
                        "EXC003",
                        f"recoverable failure ({', '.join(caught)}) is "
                        "swallowed here; propagate it, route it to recovery, "
                        "or document why dropping it is safe",
                        source,
                        node,
                        severity=Severity.WARNING,
                    )
                )
        return findings

    @staticmethod
    def _scope_raise_names(tree: ast.Module) -> dict[int, set[str]]:
        """``id(handler) -> names raised by its innermost enclosing scope``.

        Feeds the aggregate-then-raise rule: ``last_error = exc`` counts as
        propagation when the same function later does ``raise ...`` with (or
        from) that variable.
        """
        out: dict[int, set[str]] = {}
        cache: dict[int, set[str]] = {}

        def names_for(scope: ast.AST) -> set[str]:
            if id(scope) not in cache:
                cache[id(scope)] = _raise_referenced_names(scope)
            return cache[id(scope)]

        def walk(node: ast.AST, scope: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(child, child)
                    continue
                if isinstance(child, ast.ExceptHandler):
                    out[id(child)] = names_for(scope)
                walk(child, scope)

        walk(tree, tree)
        return out
