"""Typestate lifecycle analysis for protocol objects (LIF).

The runtime has several objects whose API is a *protocol*: an opening
call puts them in an intermediate state that some closing call must
resolve, or the object silently degrades — a circuit breaker that is
probed but never told the outcome stops adapting, a pipelined checkpoint
that is begun but never drained loses the tail of the update stream on
failover, a connection-cache entry that is begun but never resolved
wedges every later caller on a future that cannot complete.

Each protocol is a declarative :class:`ProtocolSpec`: the *begin* method
names, the receiver markers that identify the protocol object (so a
stray ``begin()`` on an unrelated object is not claimed), the *sink*
method names that resolve the intermediate state, and how to check:

``reach``    from the function containing the begin call, some sink call
             must be reachable along confident call-graph edges — the
             opener is responsible for (transitively) resolving;
``project``  the class defining the begin must also define a sink, and at
             least one confident call to that sink must exist somewhere
             in the project — the machinery has an exercised exit path.

Codes:

LIF001  ``CircuitBreaker.allow()`` outcome never recorded;
LIF002  pipelined-checkpoint begin with no reachable drain/shutdown;
LIF003  ``ConnectionCache.begin`` never resolved to commit-or-invalidate.

Functions on the protocol class itself (a class defining the sinks) are
exempt — the facade forwarding ``allow`` is not a leaked protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.callgraph import CallGraph, FunctionInfo
from repro.analysis.findings import Finding
from repro.analysis.framework import Checker
from repro.analysis.source import Project


@dataclass(frozen=True)
class ProtocolSpec:
    """One begin-must-reach-sink protocol, declaratively."""

    code: str
    label: str
    #: method names that open the protocol.
    begin: frozenset[str]
    #: lowercase substrings, one of which must appear in the receiver
    #: text for a call to be claimed by this protocol (``frozenset()``
    #: claims any receiver).  Calls with unresolvable receiver text are
    #: skipped — confident-only, like call resolution.
    receiver_markers: frozenset[str]
    #: method names that resolve the intermediate state.
    sinks: frozenset[str]
    mode: str  # "reach" | "project"


PROTOCOLS: tuple[ProtocolSpec, ...] = (
    ProtocolSpec(
        code="LIF001",
        label="circuit breaker probe",
        begin=frozenset({"allow"}),
        receiver_markers=frozenset({"breaker"}),
        sinks=frozenset({"record_success", "record_failure"}),
        mode="reach",
    ),
    ProtocolSpec(
        code="LIF002",
        label="pipelined checkpoint",
        begin=frozenset({"_checkpoint_pipelined"}),
        receiver_markers=frozenset(),
        sinks=frozenset({"drain_checkpoints", "_drain_pipeline"}),
        mode="project",
    ),
    ProtocolSpec(
        code="LIF003",
        label="connection-cache entry",
        begin=frozenset({"begin"}),
        receiver_markers=frozenset({"cache", "connection"}),
        sinks=frozenset({"discard", "try_succeed", "invalidate", "commit"}),
        mode="reach",
    ),
)


class LifecycleChecker(Checker):
    name = "lifecycle"
    codes = {
        "LIF001": "circuit-breaker allow() outcome never recorded",
        "LIF002": "pipelined-checkpoint begin with no reachable drain path",
        "LIF003": "connection-cache begin never resolved",
    }
    default_scope = (
        "repro/ft/",
        "repro/orb/",
        "repro/services/",
        "repro/cluster/",
        "repro/winner/",
        "repro/sim/",
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project)
        scoped = [fn for fn in graph.functions if self.applies_to(fn.source)]
        findings: list[Finding] = []
        for spec in PROTOCOLS:
            if spec.mode == "reach":
                findings.extend(self._check_reach(spec, graph, scoped))
            else:
                findings.extend(self._check_project_mode(spec, graph, scoped))
        return findings

    # -- reach mode: opener must (transitively) call a sink ----------------------

    def _check_reach(
        self,
        spec: ProtocolSpec,
        graph: CallGraph,
        scoped: list[FunctionInfo],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fn in scoped:
            if self._defines_sink(graph, fn.class_name, spec):
                continue  # the protocol object itself / its facade
            for site in fn.calls:
                if site.name not in spec.begin or site.kind == "name":
                    continue
                if spec.receiver_markers:
                    receiver = site.receiver.lower()
                    if not receiver or not any(
                        marker in receiver for marker in spec.receiver_markers
                    ):
                        continue
                if self._sink_reachable(graph, fn, spec.sinks):
                    continue
                findings.append(
                    self.finding(
                        spec.code,
                        f"{spec.label} opened via {site.name}() in "
                        f"{fn.qualname} but no "
                        f"{'/'.join(sorted(spec.sinks))} call is reachable "
                        "from it — the protocol object is left in its "
                        "intermediate state",
                        fn.source,
                        site.line,
                        context=fn.qualname,
                    )
                )
        return findings

    @staticmethod
    def _sink_reachable(
        graph: CallGraph, start: FunctionInfo, sinks: frozenset[str]
    ) -> bool:
        for fn in graph.reachable_from(start):
            for site in fn.calls:
                if site.name in sinks:
                    return True
        return False

    @staticmethod
    def _defines_sink(
        graph: CallGraph, class_name: str | None, spec: ProtocolSpec
    ) -> bool:
        if class_name is None:
            return False
        for cls in graph.classes.get(class_name, []):
            if spec.sinks & cls.methods.keys():
                return True
        return False

    # -- project mode: the machinery must have an exercised exit path ------------

    def _check_project_mode(
        self,
        spec: ProtocolSpec,
        graph: CallGraph,
        scoped: list[FunctionInfo],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for fn in scoped:
            if fn.name not in spec.begin or fn.class_name is None:
                continue
            sink_defined = self._defines_sink(graph, fn.class_name, spec)
            sink_called = sink_defined and self._sink_called_anywhere(
                graph, fn.class_name, spec.sinks
            )
            if sink_defined and sink_called:
                continue
            problem = (
                "the class defines no "
                f"{'/'.join(sorted(spec.sinks))} sink"
                if not sink_defined
                else "no call anywhere in the project resolves to its "
                f"{'/'.join(sorted(spec.sinks))} sink"
            )
            findings.append(
                self.finding(
                    spec.code,
                    f"{spec.label} machinery {fn.qualname} has no exercised "
                    f"exit path: {problem} — state opened here can never "
                    "be drained",
                    fn.source,
                    fn.node.lineno,
                    context=fn.qualname,
                )
            )
        return findings

    @staticmethod
    def _sink_called_anywhere(
        graph: CallGraph, class_name: str, sinks: frozenset[str]
    ) -> bool:
        for caller in graph.functions:
            for site in caller.calls:
                if site.name not in sinks:
                    continue
                for target in graph.resolve(caller, site):
                    if target.class_name == class_name:
                        return True
        return False
