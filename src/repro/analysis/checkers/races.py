"""Interprocedural shared-state race inference (RACE).

The atomicity checker verifies *declared* critical sections; this family
*infers* protection, RacerD/Eraser-style, so unannotated shared state is
covered too.  The model: the simulator is cooperative, so two processes
can only interleave at yield points — a field is racy when one process
can observe or modify it in the window another process opened by yielding
mid-update.  Protection comes from sim ``Lock``s held across the window,
or from declared-atomic scopes (which the ATM family proves yield-free).

For every class in the deterministic core the checker computes, per
``self.<field>`` access, the *lockset* — locks held at the access point,
both locally (``with lock:`` / ``acquire()``...``release()`` in statement
order) and interprocedurally (locks every confident caller is known to
hold when the enclosing helper runs — the caller-context fixpoint).

RACE001  inconsistent locksets: the same field is guarded by different
         locks in different methods, so neither lock actually excludes
         the other path;
RACE002  stale read: a field is read before a yield point and written
         after it in the same function with no lock or atomic scope
         spanning the window — the scheduler can interleave a concurrent
         update between the read and the write (lost update);
RACE003  a lock is acquired on a yielding path without ``with`` or an
         immediate ``try/finally`` release — an exception thrown into
         the generator leaves the lock held forever;
RACE004  unprotected write: a field some method accesses under a lock is
         written elsewhere with no lock held, bypassing the exclusion the
         lock was meant to provide.

``__init__``/``__post_init__`` run before the object is shared and are
exempt; accesses inside declared-atomic functions or regions are exempt
(the ATM family proves those scopes indivisible).  Resolution stays
confident-only — an unresolvable call contributes no locks and no edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.analysis.callgraph import (
    AccessEvent,
    CallGraph,
    FunctionInfo,
    atomic_function_ids,
    atomic_regions,
    scan_access_events,
    stmt_bodies,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import Checker
from repro.analysis.source import Project

#: constructors that run before the object escapes to other processes.
CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


@dataclass
class FieldAccess:
    """One ``self.<field>`` access with its inferred lockset."""

    field: str
    kind: str  # "read" | "write"
    line: int
    fn: FunctionInfo
    locks: frozenset[str]
    #: inside a declared-atomic function or atomic-begin/end region.
    atomic: bool
    #: enclosing method is a constructor (object not yet shared).
    construction: bool


class RaceChecker(Checker):
    name = "races"
    codes = {
        "RACE001": "field guarded by inconsistent locksets across methods",
        "RACE002": "read-yield-write window on a shared field (stale read)",
        "RACE003": "lock acquired on a yielding path without guaranteed release",
        "RACE004": "unprotected write to a field other methods access under a lock",
    }
    #: the deterministic core — the state the paper's FT and load-balancing
    #: guarantees depend on.
    default_scope = (
        "repro/ft/",
        "repro/orb/",
        "repro/services/",
        "repro/cluster/",
        "repro/winner/",
        "repro/sim/",
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project)
        accesses, fn_events = self._collect_accesses(project, graph)
        findings: list[Finding] = []
        findings.extend(self._check_locksets(accesses))
        findings.extend(self._check_stale_windows(project, graph, fn_events))
        findings.extend(self._check_release_paths(project, graph))
        return findings

    # -- access collection + caller-context lock inference -----------------------

    def _collect_accesses(
        self, project: Project, graph: CallGraph
    ) -> tuple[
        dict[tuple[str, str, str], list[FieldAccess]],
        dict[int, list[AccessEvent]],
    ]:
        """Every ``self.<field>`` access in scope, with effective locksets.

        Returns the accesses grouped by (file, class, field) plus the raw
        per-function event streams (keyed by ``id(fn)``) so the stale-
        window pass reuses one scan.
        """
        fn_events: dict[int, list[AccessEvent]] = {}
        atomic_fns: set[int] = set()
        regions: dict[str, list[tuple[int, int]]] = {}
        scoped = [fn for fn in graph.functions if self.applies_to(fn.source)]
        for source in self.scoped_files(project):
            atomic_fns |= atomic_function_ids(
                source, [fn for fn in scoped if fn.source is source]
            )
            regions[source.relpath] = atomic_regions(source)
        for fn in scoped:
            fn_events[id(fn)] = scan_access_events(
                fn.node, fn.source, graph.lock_names
            )

        held_in = self._caller_context_locks(graph, fn_events)

        accesses: dict[tuple[str, str, str], list[FieldAccess]] = {}
        for fn in scoped:
            if fn.class_name is None:
                continue
            base_locks = held_in.get(id(fn)) or frozenset()
            spans = regions.get(fn.source.relpath, [])
            in_construction = fn.name in CONSTRUCTION_METHODS
            fn_atomic = id(fn) in atomic_fns
            held: list[str] = list(base_locks)
            for event in fn_events[id(fn)]:
                if event.kind == "acquire":
                    held.append(event.name)
                elif event.kind == "release":
                    if event.name in held:
                        held.remove(event.name)
                elif event.kind in ("read", "write"):
                    in_region = any(
                        begin <= event.line <= end for begin, end in spans
                    )
                    key = (fn.source.relpath, fn.class_name, event.name)
                    accesses.setdefault(key, []).append(
                        FieldAccess(
                            field=event.name,
                            kind=event.kind,
                            line=event.line,
                            fn=fn,
                            locks=frozenset(held),
                            atomic=fn_atomic or in_region,
                            construction=in_construction,
                        )
                    )
        return accesses, fn_events

    @staticmethod
    def _caller_context_locks(
        graph: CallGraph, fn_events: dict[int, list[AccessEvent]]
    ) -> dict[int, frozenset[str]]:
        """``id(fn) -> locks every confident caller holds at every call``.

        A helper that is only ever invoked with ``self._lock`` held is as
        protected as inline code under the lock; the intersection over all
        call sites (iterated to a fixpoint for helper chains) makes that
        explicit.  Functions with no confident in-scope callers get the
        empty set — they are potential entry points.
        """
        held_in: dict[int, Optional[frozenset[str]]] = {
            id(fn): None for fn in graph.functions
        }
        for _ in range(len(graph.functions)):
            changed = False
            for fn in graph.functions:
                events = fn_events.get(id(fn))
                if events is None:
                    continue
                base = held_in[id(fn)] or frozenset()
                held: list[str] = list(base)
                for event in events:
                    if event.kind == "acquire":
                        held.append(event.name)
                    elif event.kind == "release":
                        if event.name in held:
                            held.remove(event.name)
                    elif event.kind == "call" and event.call is not None:
                        if event.call.deferred:
                            context: frozenset[str] = frozenset()
                        else:
                            context = frozenset(held)
                        for target in graph.resolve(fn, event.call):
                            current = held_in[id(target)]
                            narrowed = (
                                context
                                if current is None
                                else current & context
                            )
                            if narrowed != current:
                                held_in[id(target)] = narrowed
                                changed = True
            if not changed:
                break
        return {
            key: value for key, value in held_in.items() if value
        }

    # -- RACE001 / RACE004 --------------------------------------------------------

    def _check_locksets(
        self,
        accesses: dict[tuple[str, str, str], list[FieldAccess]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for (_, class_name, field_name), field_accesses in sorted(
            accesses.items()
        ):
            live = [
                a
                for a in field_accesses
                if not a.construction and not a.atomic
            ]
            locked = [a for a in live if a.locks]
            if not locked:
                continue
            common = frozenset.intersection(*(a.locks for a in locked))
            if not common:
                a, b = self._disjoint_pair(locked)
                findings.append(
                    self.finding(
                        "RACE001",
                        f"field self.{field_name} of {class_name} has "
                        "inconsistent lock protection: guarded by "
                        f"{{{', '.join(sorted(a.locks))}}} in {a.fn.qualname} "
                        f"but by {{{', '.join(sorted(b.locks))}}} in "
                        f"{b.fn.qualname} — neither lock excludes the other "
                        "path",
                        locked[0].fn.source,
                        locked[0].line,
                        context=locked[0].fn.qualname,
                    )
                )
                continue
            lock_label = ", ".join(sorted(common))
            holder = locked[0].fn.qualname
            for access in live:
                if access.kind != "write" or access.locks & common:
                    continue
                findings.append(
                    self.finding(
                        "RACE004",
                        f"write to self.{field_name} in {access.fn.qualname} "
                        f"without holding {{{lock_label}}}, which {holder} "
                        "holds when accessing it — the write can land inside "
                        "another process's critical section",
                        access.fn.source,
                        access.line,
                        context=access.fn.qualname,
                    )
                )
        return findings

    @staticmethod
    def _disjoint_pair(
        locked: list[FieldAccess],
    ) -> tuple[FieldAccess, FieldAccess]:
        for a in locked:
            for b in locked:
                if not (a.locks & b.locks):
                    return a, b
        return locked[0], locked[-1]

    # -- RACE002: read .. yield .. write windows ----------------------------------

    def _check_stale_windows(
        self,
        project: Project,
        graph: CallGraph,
        fn_events: dict[int, list[AccessEvent]],
    ) -> list[Finding]:
        findings: list[Finding] = []
        atomic_fns: set[int] = set()
        regions: dict[str, list[tuple[int, int]]] = {}
        for source in self.scoped_files(project):
            local = [
                fn
                for fn in graph.functions
                if fn.source is source
            ]
            atomic_fns |= atomic_function_ids(source, local)
            regions[source.relpath] = atomic_regions(source)

        for fn in graph.functions:
            events = fn_events.get(id(fn))
            if (
                events is None
                or not fn.is_generator
                or fn.class_name is None
                or fn.name in CONSTRUCTION_METHODS
                or id(fn) in atomic_fns
            ):
                continue
            spans = regions.get(fn.source.relpath, [])
            held: list[str] = []
            #: field -> line of the most recent unprotected read that no
            #: yield has intervened after ... until promoted below.
            last_read: dict[str, int] = {}
            #: field -> read line, armed by an unprotected yield.
            stale: dict[str, int] = {}
            reported: set[str] = set()
            for event in events:
                if event.kind == "acquire":
                    held.append(event.name)
                elif event.kind == "release":
                    if event.name in held:
                        held.remove(event.name)
                elif event.kind == "read":
                    if not held and not _in_spans(spans, event.line):
                        last_read[event.name] = event.line
                        # a fresh read supersedes the pre-yield one
                        stale.pop(event.name, None)
                elif event.kind == "yield":
                    if not held and not _in_spans(spans, event.line):
                        for field_name, line in last_read.items():
                            stale.setdefault(field_name, line)
                        last_read.clear()
                elif event.kind == "write":
                    read_line = stale.pop(event.name, None)
                    last_read.pop(event.name, None)
                    if (
                        read_line is not None
                        and not held
                        and not _in_spans(spans, event.line)
                        and event.name not in reported
                    ):
                        reported.add(event.name)
                        findings.append(
                            self.finding(
                                "RACE002",
                                f"self.{event.name} is read before a yield "
                                f"point and written after it in "
                                f"{fn.qualname} with no lock or atomic "
                                "scope spanning the window — a concurrent "
                                "process can update it during the wait, so "
                                "the write clobbers that update (stale "
                                "read)",
                                fn.source,
                                event.line,
                                context=fn.qualname,
                            )
                        )
        return findings

    # -- RACE003: release-on-all-paths --------------------------------------------

    def _check_release_paths(
        self, project: Project, graph: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        if not graph.lock_names:
            return findings
        for fn in graph.functions:
            if not self.applies_to(fn.source) or not fn.may_yield:
                continue
            node = fn.node
            findings.extend(
                self._scan_acquires(
                    getattr(node, "body", []), fn, graph.lock_names, frozenset()
                )
            )
        return findings

    def _scan_acquires(
        self,
        body: list[ast.stmt],
        fn: FunctionInfo,
        lock_names: frozenset[str],
        guarded: frozenset[str],
    ) -> list[Finding]:
        """Report acquires in ``body`` with no structural release guarantee.

        ``guarded`` carries locks released by an enclosing ``try``'s
        ``finally`` — acquires of those inside that try body are safe.
        """
        findings: list[Finding] = []
        for index, stmt in enumerate(body):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            lock = _acquired_lock(stmt, lock_names)
            if (
                lock is not None
                and lock not in guarded
                and not _released_by_next(body, index, lock)
            ):
                findings.append(
                    self.finding(
                        "RACE003",
                        f"lock {lock} is acquired on a yielding path in "
                        f"{fn.qualname} without a with-block or a "
                        "try/finally release — an exception thrown into "
                        "the generator strands the lock held forever",
                        fn.source,
                        stmt.lineno,
                        context=fn.qualname,
                    )
                )
            if isinstance(stmt, ast.Try) and stmt.finalbody:
                inner = guarded | _released_locks(stmt.finalbody, lock_names)
                findings.extend(
                    self._scan_acquires(stmt.body, fn, lock_names, inner)
                )
                for handler in stmt.handlers:
                    findings.extend(
                        self._scan_acquires(
                            handler.body, fn, lock_names, guarded
                        )
                    )
                for part in (stmt.orelse, stmt.finalbody):
                    findings.extend(
                        self._scan_acquires(part, fn, lock_names, guarded)
                    )
            else:
                for child_body in stmt_bodies(stmt):
                    findings.extend(
                        self._scan_acquires(
                            child_body, fn, lock_names, guarded
                        )
                    )
        return findings


def _in_spans(spans: list[tuple[int, int]], line: int) -> bool:
    return any(begin <= line <= end for begin, end in spans)


def _acquired_lock(
    stmt: ast.stmt, lock_names: frozenset[str]
) -> Optional[str]:
    """The lock a statement acquires via ``.acquire()``, if any.

    ``with lock:`` blocks release structurally and are not reported;
    acquires nested inside a ``try`` body are checked against that same
    try's ``finally`` by the caller's recursion.
    """
    roots: list[ast.AST] = []
    if isinstance(stmt, ast.Expr):
        roots.append(stmt.value)
    elif isinstance(stmt, ast.Assign):
        roots.append(stmt.value)
    for root in roots:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                target = node.func.value
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if name in lock_names:
                    return name
    return None


def _released_by_next(
    body: list[ast.stmt], acquire_index: int, lock: str
) -> bool:
    """The statement after the acquire is a ``try`` whose ``finally``
    releases ``lock`` — the classic sim-lock idiom."""
    if acquire_index + 1 >= len(body):
        return False
    nxt = body[acquire_index + 1]
    if not isinstance(nxt, ast.Try) or not nxt.finalbody:
        return False
    return lock in _released_locks(nxt.finalbody, frozenset({lock}))


def _released_locks(
    body: list[ast.stmt], lock_names: frozenset[str]
) -> frozenset[str]:
    """Locks released by ``.release()`` calls anywhere in ``body``."""
    released: set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
            ):
                target = node.func.value
                name = (
                    target.id
                    if isinstance(target, ast.Name)
                    else target.attr
                    if isinstance(target, ast.Attribute)
                    else None
                )
                if name is not None and name in lock_names:
                    released.add(name)
    return frozenset(released)
