"""RuntimeConfig flag and report-counter hygiene (CFG).

The runtime's fast paths are all opt-in: the paper-faithful protocol is
the default and a ``RuntimeConfig`` flag turns each optimisation on.
That contract is what keeps every benchmark an apples-to-apples
comparison against the paper — and it erodes silently: a flag that
defaults on changes the baseline for every experiment, a flag nobody
consults is dead configuration surface, and a ``runtime_report`` counter
nothing ever formats or asserts on is observability that quietly rotted.

CFG001  a fast-path flag (a ``bool`` field whose doc comment marks it as
        a fast path / off-by-default optimisation) defaults to ``True``;
CFG002  a config field is never consulted anywhere in the project
        outside the config module itself (``validate()`` reading its own
        field does not count as the runtime consulting it);
CFG003  report-shape drift around ``runtime_report``: a formatter
        consumes a section key the report never produces (ERROR — that
        is a latent ``KeyError``), or a produced counter key is neither
        formatted nor referenced anywhere else in the project (WARNING —
        an orphan counter).

The config class is found structurally (a class named ``RuntimeConfig``),
not by path, so violation fixtures exercise the checker without
replicating the repo layout; the same goes for ``runtime_report``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker
from repro.analysis.source import Project, SourceFile

CONFIG_CLASS = "RuntimeConfig"
REPORT_FUNCTION = "runtime_report"

#: lowercase doc-comment fragments that mark a flag as a fast path whose
#: paper-faithful default is *off*.
FAST_PATH_MARKERS = ("fast path", "off = the paper", "off by default")


class ConfigFlagChecker(Checker):
    name = "confflags"
    codes = {
        "CFG001": "fast-path config flag does not default off",
        "CFG002": "config field never consulted outside the config module",
        "CFG003": "runtime_report shape drift (missing or orphan counter)",
    }
    default_scope = ("repro/",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        scoped = self.scoped_files(project)
        config = self._find_config(scoped)
        if config is not None:
            source, class_node = config
            findings.extend(
                self._check_flags(source, class_node, scoped)
            )
        report = self._find_report(scoped)
        if report is not None:
            source, fn_node = report
            findings.extend(self._check_report(source, fn_node, scoped))
        return findings

    # -- CFG001 / CFG002: flag defaults and consultation --------------------------

    @staticmethod
    def _find_config(
        scoped: list[SourceFile],
    ) -> Optional[tuple[SourceFile, ast.ClassDef]]:
        for source in scoped:
            assert source.tree is not None
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
                    return source, node
        return None

    def _check_flags(
        self,
        source: SourceFile,
        class_node: ast.ClassDef,
        scoped: list[SourceFile],
    ) -> list[Finding]:
        findings: list[Finding] = []
        fields: list[tuple[str, ast.AnnAssign]] = []
        for stmt in class_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                fields.append((stmt.target.id, stmt))

        for name, stmt in fields:
            if (
                self._is_bool_flag(stmt)
                and self._is_fast_path(source, stmt)
                and not self._defaults_false(stmt)
            ):
                findings.append(
                    self.finding(
                        "CFG001",
                        f"fast-path flag {CONFIG_CLASS}.{name} must default "
                        "off: the paper-faithful protocol is the baseline "
                        "and every optimisation is opt-in",
                        source,
                        stmt.lineno,
                        context=f"{CONFIG_CLASS}.{name}",
                    )
                )
            if not self._consulted(name, source, scoped):
                findings.append(
                    self.finding(
                        "CFG002",
                        f"config field {CONFIG_CLASS}.{name} is never "
                        "consulted outside the config module — dead "
                        "configuration surface (either wire it up or "
                        "remove it)",
                        source,
                        stmt.lineno,
                        severity=Severity.WARNING,
                        context=f"{CONFIG_CLASS}.{name}",
                    )
                )
        return findings

    @staticmethod
    def _is_bool_flag(stmt: ast.AnnAssign) -> bool:
        annotation = stmt.annotation
        return isinstance(annotation, ast.Name) and annotation.id == "bool"

    @staticmethod
    def _defaults_false(stmt: ast.AnnAssign) -> bool:
        return (
            isinstance(stmt.value, ast.Constant) and stmt.value.value is False
        )

    @staticmethod
    def _is_fast_path(source: SourceFile, stmt: ast.AnnAssign) -> bool:
        """The field's doc-comment block carries a fast-path marker.

        The block is the contiguous run of comment lines directly above
        the field, plus a trailing comment on the field's own line.
        """
        block: list[str] = []
        line = stmt.lineno - 1
        while line in source.comments:
            block.append(source.comments[line])
            line -= 1
        trailing = source.comments.get(stmt.lineno)
        if trailing:
            block.append(trailing)
        text = " ".join(block).lower()
        return any(marker in text for marker in FAST_PATH_MARKERS)

    @staticmethod
    def _consulted(
        name: str, config_source: SourceFile, scoped: list[SourceFile]
    ) -> bool:
        for source in scoped:
            if source is config_source or source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == name
                    and isinstance(node.ctx, ast.Load)
                ):
                    return True
        return False

    # -- CFG003: runtime_report shape ---------------------------------------------

    @staticmethod
    def _find_report(
        scoped: list[SourceFile],
    ) -> Optional[tuple[SourceFile, ast.FunctionDef]]:
        for source in scoped:
            assert source.tree is not None
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == REPORT_FUNCTION
                ):
                    return source, node
        return None

    def _check_report(
        self,
        source: SourceFile,
        fn_node: ast.FunctionDef,
        scoped: list[SourceFile],
    ) -> list[Finding]:
        produced = self._produced_sections(fn_node)
        consumed = self._consumed_keys(source, fn_node)
        findings: list[Finding] = []

        for section, key, line in sorted(consumed):
            keys = produced.get(section)
            if keys is not None and key not in keys:
                findings.append(
                    self.finding(
                        "CFG003",
                        f"formatter reads key '{key}' from report section "
                        f"'{section}', which {REPORT_FUNCTION} never "
                        "produces — a latent KeyError on the render path",
                        source,
                        line,
                        context=f"{REPORT_FUNCTION}:{section}",
                    )
                )

        consumed_by_section: dict[str, set[str]] = {}
        for section, key, _ in consumed:
            consumed_by_section.setdefault(section, set()).add(key)
        for section, keys in sorted(produced.items()):
            for key, line in sorted(keys.items()):
                if key in consumed_by_section.get(section, set()):
                    continue
                if self._string_appears_elsewhere(key, source, scoped):
                    continue
                findings.append(
                    self.finding(
                        "CFG003",
                        f"counter '{key}' in report section '{section}' is "
                        "produced but never formatted or referenced "
                        "anywhere in the project — an orphan counter "
                        "nothing can observe",
                        source,
                        line,
                        severity=Severity.WARNING,
                        context=f"{REPORT_FUNCTION}:{section}",
                    )
                )
        return findings

    @staticmethod
    def _produced_sections(
        fn_node: ast.FunctionDef,
    ) -> dict[str, dict[str, int]]:
        """``{section: {key: line}}`` for statically-known report sections.

        Sections whose value is a dict literal (inline or via a local
        variable assigned one) are analysable; dynamically-built sections
        (snapshots, setdefault accumulation) are skipped — confident-only,
        like everything else in the analysis.
        """
        locals_: dict[str, ast.Dict] = {}
        dynamic: set[str] = set()
        for node in ast.walk(fn_node):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.Dict) and value.keys:
                locals_[target.id] = value
            else:
                # A branch rebinding the name to anything non-literal
                # (a snapshot call, an empty accumulator) makes the
                # section's shape dynamic — skip it entirely.
                dynamic.add(target.id)
        for name in dynamic:
            locals_.pop(name, None)

        returned: Optional[ast.Dict] = None
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Return) and isinstance(
                node.value, ast.Dict
            ):
                returned = node.value
        if returned is None:
            return {}

        produced: dict[str, dict[str, int]] = {}
        for key_node, value in zip(returned.keys, returned.values):
            if not (
                isinstance(key_node, ast.Constant)
                and isinstance(key_node.value, str)
            ):
                continue
            section = key_node.value
            literal: Optional[ast.Dict] = None
            if isinstance(value, ast.Dict) and value.keys:
                literal = value
            elif isinstance(value, ast.Name):
                literal = locals_.get(value.id)
            if literal is None:
                continue
            keys: dict[str, int] = {}
            for inner_key in literal.keys:
                if isinstance(inner_key, ast.Constant) and isinstance(
                    inner_key.value, str
                ):
                    keys[inner_key.value] = inner_key.lineno
            produced[section] = keys
        return produced

    @staticmethod
    def _consumed_keys(
        source: SourceFile, report_fn: ast.FunctionDef
    ) -> set[tuple[str, str, int]]:
        """``(section, key, line)`` reads in the report module's *other*
        functions, via ``var = report["section"]`` / ``var['key']`` and
        ``report.get("section")`` / ``var.get('key')`` tracking."""
        assert source.tree is not None
        consumed: set[tuple[str, str, int]] = set()
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.FunctionDef) or node is report_fn:
                continue
            sections: dict[str, str] = {}
            for stmt in ast.walk(node):
                if not (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    continue
                section = _subscript_or_get_key(stmt.value)
                if section is not None:
                    sections[stmt.targets[0].id] = section
            for expr in ast.walk(node):
                key = _subscript_or_get_key(expr)
                if key is None:
                    continue
                base = _base_name(expr)
                if base is not None and base in sections:
                    consumed.add((sections[base], key, expr.lineno))
        return consumed

    @staticmethod
    def _string_appears_elsewhere(
        key: str, report_source: SourceFile, scoped: list[SourceFile]
    ) -> bool:
        for source in scoped:
            if source is report_source or source.tree is None:
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Constant) and node.value == key:
                    return True
        return False


def _subscript_or_get_key(node: ast.AST) -> Optional[str]:
    """The string key of ``x["key"]`` or ``x.get("key", ...)``, else None."""
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    ):
        return node.slice.value
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
        and node.args
        and isinstance(node.args[0], ast.Constant)
        and isinstance(node.args[0].value, str)
    ):
        return node.args[0].value
    return None


def _base_name(node: ast.AST) -> Optional[str]:
    """The receiver Name of a subscript/.get consumption, if simple."""
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return node.value.id
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
    ):
        return node.func.value.id
    return None
