"""Determinism lint (DET).

The whole reproduction — Fig. 3 / Table 1 goldens, the chaos matrix, the
pinned benchmark gates — is only trustworthy because a simulation run is a
pure function of its seed.  This checker flags the ways wall-clock time and
process-salted entropy leak into simulated code:

DET001  wall-clock reads (``time.time``, ``datetime.now``, ...), both
        direct calls and references that capture the function as a value
        (``clock = time.perf_counter``);
DET002  unseeded / process-global randomness (bare ``random.*``,
        ``numpy.random.*`` module-level state, ``uuid4``, ``os.urandom``);
DET003  ``id()`` / ``hash()`` used as an ordering key (both are salted or
        allocation-dependent across processes);
DET004  iterating a ``set`` where order can leak into results (string
        hashing is randomized per process, so set order is not stable).

Scope: the deterministic core (``sim``, ``cluster``, ``orb``, ``ft``,
``winner``, ``services``, ``chaos``) plus ``obs`` — exporters that
legitimately stamp wall-clock metadata, and the kernel profiler in
``repro.obs.profile`` whose whole point is measuring host CPU cost (its
reads are observational only: no value ever feeds back into simulated
state), carry inline ``# analysis: ignore[DET001]: ...`` allowlist
entries with the justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker
from repro.analysis.source import Project, SourceFile

#: functions whose return value is the host wall clock / monotonic clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random constructors that are fine *when given a seed argument*.
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.PCG64",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)

#: always-nondeterministic entropy sources.
_ENTROPY = frozenset(
    {"uuid.uuid1", "uuid.uuid4", "os.urandom", "os.getrandom"}
)

#: builtins that consume an iterable without caring about its order.
_ORDER_INSENSITIVE = frozenset(
    {
        "sorted",
        "sum",
        "len",
        "min",
        "max",
        "any",
        "all",
        "set",
        "frozenset",
    }
)

#: builtins that materialize iteration order into an ordered result.
_ORDER_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismChecker(Checker):
    name = "determinism"
    codes = {
        "DET001": "wall-clock read inside simulated code",
        "DET002": "unseeded or process-global randomness",
        "DET003": "id()/hash() used as an ordering key",
        "DET004": "set iteration order can leak into results",
    }
    default_scope = (
        "repro/sim/",
        "repro/cluster/",
        "repro/orb/",
        "repro/ft/",
        "repro/winner/",
        "repro/services/",
        "repro/chaos/",
        "repro/obs/",
        # runnable entry points drive the sim too: a wall-clock read or
        # unseeded RNG there breaks reproducibility just as surely.
        "benchmarks/",
        "examples/",
    )

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        assert source.tree is not None
        findings: list[Finding] = []
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(source.tree):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(source, node))
            findings.extend(self._check_sort_key(source, node))
        findings.extend(self._check_clock_references(source, parents))
        findings.extend(self._check_set_iteration(source, parents))
        return findings

    # -- DET001 / DET002 -----------------------------------------------------------

    def _check_call(
        self, source: SourceFile, node: ast.Call
    ) -> Iterable[Finding]:
        fullname = source.resolve_call_name(node.func)
        if not fullname:
            return
        if fullname in _WALL_CLOCK:
            yield self.finding(
                "DET001",
                f"call to {fullname}() reads the wall clock; simulated "
                "code must use sim.now",
                source,
                node,
            )
            return
        if fullname in _ENTROPY:
            yield self.finding(
                "DET002",
                f"{fullname}() draws OS entropy; derive values from "
                "sim.rng(...) / rng_stream(...) instead",
                source,
                node,
            )
            return
        if fullname in _SEEDABLE_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self.finding(
                    "DET002",
                    f"{fullname}() without a seed draws OS entropy; pass "
                    "an explicit seed or SeedSequence",
                    source,
                    node,
                )
            return
        if fullname in ("random.Random", "random.SystemRandom"):
            if fullname == "random.SystemRandom" or not node.args:
                yield self.finding(
                    "DET002",
                    f"{fullname}() is unseeded; use "
                    "repro.sim.randomness.rng_stream(seed, ...)",
                    source,
                    node,
                )
            return
        if fullname.startswith("random."):
            yield self.finding(
                "DET002",
                f"{fullname}() uses the process-global random state; use "
                "a named stream from sim.rng(...) instead",
                source,
                node,
            )
            return
        if fullname.startswith(("numpy.random.", "secrets.")):
            yield self.finding(
                "DET002",
                f"{fullname}() touches process-global or OS entropy; use "
                "a seeded Generator",
                source,
                node,
            )

    def _check_clock_references(
        self, source: SourceFile, parents: dict[ast.AST, ast.AST]
    ) -> Iterable[Finding]:
        """DET001 for wall-clock functions captured as *values*.

        ``clock = time.perf_counter`` smuggles the wall clock past the
        call check — the read happens later, at an uncheckable site (a
        default argument, an injected callback, a dispatch table).  Flag
        the reference itself; legitimate captures (the profiler's
        injectable host clock) carry the same justified
        ``# analysis: ignore[DET001]`` directive a direct call would.
        """
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            parent = parents.get(node)
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # a direct call; _check_call covers it
            if isinstance(parent, ast.Attribute):
                continue  # inner link of a longer dotted chain
            if isinstance(node, ast.Name) and not isinstance(
                getattr(node, "ctx", None), ast.Load
            ):
                continue
            fullname = source.resolve_call_name(node)
            if fullname in _WALL_CLOCK and fullname != (
                node.id if isinstance(node, ast.Name) else None
            ):
                yield self.finding(
                    "DET001",
                    f"reference to {fullname} captures the wall clock as a "
                    "value; simulated code must derive time from sim.now",
                    source,
                    node,
                )

    # -- DET003 ------------------------------------------------------------------

    def _check_sort_key(
        self, source: SourceFile, node: ast.AST
    ) -> Iterable[Finding]:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        is_sorting = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sorting:
            return
        for keyword in node.keywords:
            if keyword.arg != "key":
                continue
            offender = self._ordering_key_offender(keyword.value)
            if offender:
                yield self.finding(
                    "DET003",
                    f"ordering key uses {offender}(), which is salted or "
                    "allocation-dependent across processes",
                    source,
                    node,
                )

    @staticmethod
    def _ordering_key_offender(key: ast.expr) -> Optional[str]:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return key.id
        if isinstance(key, ast.Lambda):
            for node in ast.walk(key.body):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ("id", "hash")
                ):
                    return node.func.id
        return None

    # -- DET004 ------------------------------------------------------------------

    def _check_set_iteration(
        self, source: SourceFile, parents: dict[ast.AST, ast.AST]
    ) -> Iterable[Finding]:
        assert source.tree is not None
        findings: list[Finding] = []
        set_vars = self._single_assignment_sets(source.tree)

        def is_set_valued(node: ast.expr) -> bool:
            if _is_set_expr(node):
                return True
            return isinstance(node, ast.Name) and node.id in set_vars

        def flag(node: ast.AST, what: str) -> None:
            findings.append(
                self.finding(
                    "DET004",
                    f"{what} iterates a set whose order is process-"
                    "dependent; sort it first (or use an order-insensitive "
                    "reduction)",
                    source,
                    node,
                    severity=Severity.WARNING,
                )
            )

        for node in ast.walk(source.tree):
            if isinstance(node, ast.For) and is_set_valued(node.iter):
                flag(node, "for loop")
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if not node.generators or not is_set_valued(
                    node.generators[0].iter
                ):
                    continue
                parent = parents.get(node)
                if (
                    isinstance(node, ast.GeneratorExp)
                    and isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in _ORDER_INSENSITIVE
                ):
                    continue
                flag(node, "comprehension")
            elif isinstance(node, ast.Call):
                func = node.func
                arg0 = node.args[0] if node.args else None
                if arg0 is None or not is_set_valued(arg0):
                    continue
                if isinstance(func, ast.Name) and func.id in _ORDER_MATERIALIZERS:
                    flag(node, f"{func.id}()")
                elif isinstance(func, ast.Attribute) and func.attr == "join":
                    flag(node, "str.join()")
        return findings

    @staticmethod
    def _single_assignment_sets(tree: ast.Module) -> set[str]:
        """Names assigned exactly once, to a set expression."""
        assigned_sets: dict[str, int] = {}
        assignment_counts: dict[str, int] = {}

        def note(name: str, is_set: bool) -> None:
            assignment_counts[name] = assignment_counts.get(name, 0) + 1
            if is_set:
                assigned_sets[name] = assigned_sets.get(name, 0) + 1

        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    note(target.id, _is_set_expr(node.value))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(node.target, ast.Name):
                    value = getattr(node, "value", None)
                    note(
                        node.target.id,
                        value is not None and _is_set_expr(value),
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    note(target.id, False)
        return {
            name
            for name, count in assigned_sets.items()
            if count == 1 and assignment_counts.get(name) == 1
        }
