"""Yield-point / atomicity analysis (ATM).

The simulator is cooperative: a process can only be preempted at a
``yield``.  Every invariant of the form "these two updates happen
atomically" therefore reduces to "no yield point between them" — which is
exactly what this checker proves.  It builds a project-wide call graph,
classifies functions as *may-yield* (generators, plus anything that
confidently reaches one), and enforces two kinds of declarations:

``# analysis: atomic`` on a function
    The function must not be a generator and must not transitively call a
    may-yield function: it executes as one indivisible step.

``# analysis: atomic-begin(name)`` / ``atomic-end(name)`` inside a generator
    No yield point may occur between the markers — the bracketed span runs
    without the scheduler interleaving another process.

Codes:

ATM001  yield point inside a declared-atomic function/region;
ATM002  call to a may-yield function inside a declared-atomic scope;
ATM003  lock acquisition-order cycle (two code paths take the same locks
        in opposite orders — a deadlock waiting for the right schedule);
ATM004  malformed atomicity annotation (unmatched markers, no function).

Call resolution is deliberately *confident-only*: ``self.m()`` resolves
through the enclosing class and its project-visible bases, bare names
through the defining module and explicit imports.  Unresolvable calls are
ignored rather than over-approximated — suppressions should silence real
noise, not analysis guesses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.framework import Checker
from repro.analysis.source import Project, SourceFile


#: callees whose call-expression arguments are handed to the scheduler
#: for *later* execution — constructing a generator inline for them is
#: not an inline yield point.
SCHEDULER_HANDOFF = frozenset({"spawn", "schedule", "schedule_at"})


@dataclass
class CallSite:
    """One call expression inside a function's own scope."""

    kind: str  # "self" | "name" | "attr"
    name: str
    line: int
    under_yield: bool
    #: dotted import resolution for kind == "name" (may equal name).
    dotted: str = ""
    #: the call is an argument of a spawn/schedule — it only *creates* the
    #: generator; the scheduler runs it outside this scope.
    deferred: bool = False


@dataclass
class LockEvent:
    op: str  # "acquire" | "release" | "call"
    name: str  # lock name, or callee name for "call"
    line: int
    call: Optional[CallSite] = None


@dataclass
class FunctionInfo:
    source: SourceFile
    node: ast.AST
    qualname: str
    class_name: Optional[str]
    is_generator: bool = False
    yield_lines: list[int] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    lock_events: list[LockEvent] = field(default_factory=list)
    may_yield: bool = False
    #: one callee responsible for may_yield (for witness chains).
    witness: Optional["FunctionInfo"] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def chain(self) -> str:
        """Human witness path from this function to a generator."""
        parts = [self.qualname]
        seen = {id(self)}
        current = self.witness
        while current is not None and id(current) not in seen:
            parts.append(current.qualname)
            seen.add(id(current))
            current = current.witness
        return " -> ".join(parts)


@dataclass
class ClassInfo:
    name: str
    bases: list[str]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class _FunctionCollector:
    """Extracts per-function info (own scope only) from one module."""

    def __init__(self, source: SourceFile, lock_names: frozenset[str]) -> None:
        self.source = source
        self.lock_names = lock_names
        self.functions: list[FunctionInfo] = []
        self.classes: list[ClassInfo] = []
        #: ids of Call nodes passed as arguments to spawn/schedule — they
        #: construct a generator for the scheduler, they don't run inline.
        self._deferred_ids: set[int] = set()

    def collect(self) -> None:
        assert self.source.tree is not None
        self._visit_body(self.source.tree.body, prefix="", class_info=None)

    def _visit_body(
        self,
        body: list[ast.stmt],
        prefix: str,
        class_info: Optional[ClassInfo],
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{node.name}" if prefix else node.name
                info = FunctionInfo(
                    source=self.source,
                    node=node,
                    qualname=qual,
                    class_name=class_info.name if class_info else None,
                )
                self._scan_function(node, info)
                self.functions.append(info)
                if class_info is not None:
                    class_info.methods[node.name] = info
            elif isinstance(node, ast.ClassDef):
                bases = [self._base_name(base) for base in node.bases]
                cls = ClassInfo(name=node.name, bases=[b for b in bases if b])
                self.classes.append(cls)
                self._visit_body(node.body, prefix=node.name, class_info=cls)
            elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
                # classes/functions nested in control flow at module level
                for child_body in _stmt_bodies(node):
                    self._visit_body(child_body, prefix, class_info)

    @staticmethod
    def _base_name(base: ast.expr) -> str:
        if isinstance(base, ast.Name):
            return base.id
        if isinstance(base, ast.Attribute):
            return base.attr
        return ""

    # -- per-function scan (own scope: nested defs are boundaries) ---------------

    def _scan_function(self, fn: ast.AST, info: FunctionInfo) -> None:
        nested: list[tuple[ast.AST, FunctionInfo]] = []

        def walk(node: ast.AST, under_yield: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    if not isinstance(child, ast.Lambda):
                        qual = f"{info.qualname}.<locals>.{child.name}"
                        sub = FunctionInfo(
                            source=self.source,
                            node=child,
                            qualname=qual,
                            class_name=info.class_name,
                        )
                        nested.append((child, sub))
                    continue
                if isinstance(child, (ast.Yield, ast.YieldFrom)):
                    info.is_generator = True
                    info.yield_lines.append(child.lineno)
                    walk(child, under_yield=True)
                    continue
                if isinstance(child, ast.Call):
                    self._note_call(child, info, under_yield)
                walk(child, under_yield=False)

        walk(fn, under_yield=False)
        self._scan_lock_events(fn, info)
        for child, sub in nested:
            self._scan_function(child, sub)
            self.functions.append(sub)

    def _note_call(
        self, node: ast.Call, info: FunctionInfo, under_yield: bool
    ) -> None:
        func = node.func
        callee = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if callee in SCHEDULER_HANDOFF:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(arg, ast.Call):
                    self._deferred_ids.add(id(arg))
        deferred = id(node) in self._deferred_ids
        if isinstance(func, ast.Name):
            info.calls.append(
                CallSite(
                    kind="name",
                    name=func.id,
                    line=node.lineno,
                    under_yield=under_yield,
                    dotted=self.source.import_aliases.get(func.id, func.id),
                    deferred=deferred,
                )
            )
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in (
                "self",
                "cls",
            ):
                kind = "self"
            else:
                kind = "attr"
            info.calls.append(
                CallSite(
                    kind=kind,
                    name=func.attr,
                    line=node.lineno,
                    under_yield=under_yield,
                    deferred=deferred,
                )
            )

    # -- lock events in statement order -------------------------------------------

    def _scan_lock_events(self, fn: ast.AST, info: FunctionInfo) -> None:
        if not self.lock_names:
            return

        def lock_of(call: ast.Call) -> Optional[str]:
            func = call.func
            if not isinstance(func, ast.Attribute):
                return None
            if func.attr not in ("acquire", "release"):
                return None
            target = func.value
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            return name if name in self.lock_names else None

        def scan_expr(node: ast.AST) -> None:
            for child in ast.walk(node):
                if not isinstance(child, ast.Call):
                    continue
                lock = lock_of(child)
                if lock is not None:
                    op = child.func.attr  # type: ignore[union-attr]
                    info.lock_events.append(LockEvent(op, lock, child.lineno))
                elif isinstance(child.func, (ast.Name, ast.Attribute)):
                    site = _call_site_of(child, self.source)
                    if site is not None:
                        info.lock_events.append(
                            LockEvent("call", site.name, child.lineno, call=site)
                        )

        def scan_body(body: list[ast.stmt]) -> None:
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                if isinstance(stmt, ast.With):
                    held: list[str] = []
                    for item in stmt.items:
                        expr = item.context_expr
                        name = None
                        if isinstance(expr, ast.Name):
                            name = expr.id
                        elif isinstance(expr, ast.Attribute):
                            name = expr.attr
                        if name in self.lock_names:
                            info.lock_events.append(
                                LockEvent("acquire", name, stmt.lineno)
                            )
                            held.append(name)
                        else:
                            scan_expr(expr)
                    scan_body(stmt.body)
                    for name in reversed(held):
                        info.lock_events.append(
                            LockEvent(
                                "release",
                                name,
                                getattr(stmt, "end_lineno", stmt.lineno)
                                or stmt.lineno,
                            )
                        )
                    continue
                for expr in _stmt_exprs(stmt):
                    scan_expr(expr)
                for body_part in _stmt_bodies(stmt):
                    scan_body(body_part)

        scan_body(getattr(fn, "body", []))


def _call_site_of(node: ast.Call, source: SourceFile) -> Optional[CallSite]:
    func = node.func
    if isinstance(func, ast.Name):
        return CallSite(
            kind="name",
            name=func.id,
            line=node.lineno,
            under_yield=False,
            dotted=source.import_aliases.get(func.id, func.id),
        )
    if isinstance(func, ast.Attribute):
        kind = (
            "self"
            if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls")
            else "attr"
        )
        return CallSite(kind=kind, name=func.attr, line=node.lineno, under_yield=False)
    return None


def _stmt_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """Expression roots of a statement, excluding nested statement bodies."""
    out: list[ast.AST] = []
    for fieldname, value in ast.iter_fields(stmt):
        if fieldname in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            out.append(value)
        elif isinstance(value, list):
            out.extend(v for v in value if isinstance(v, ast.expr))
    return out


def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for fieldname in ("body", "orelse", "finalbody"):
        value = getattr(stmt, fieldname, None)
        if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
            bodies.append(value)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    if isinstance(stmt, (ast.If, ast.While, ast.For)):
        pass  # already covered via body/orelse
    return bodies


class _CallGraph:
    """Project-wide index with confident-only call resolution."""

    def __init__(self, project: Project) -> None:
        self.functions: list[FunctionInfo] = []
        self.classes: dict[str, list[ClassInfo]] = {}
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.lock_names = _discover_lock_names(project)
        for source in project.files:
            if source.tree is None:
                continue
            collector = _FunctionCollector(source, self.lock_names)
            collector.collect()
            self.functions.extend(collector.functions)
            for cls in collector.classes:
                self.classes.setdefault(cls.name, []).append(cls)
            for fn in collector.functions:
                self.by_name.setdefault(fn.name, []).append(fn)
                if "." not in fn.qualname:
                    self.module_functions[(source.relpath, fn.qualname)] = fn
        self._compute_may_yield()

    # -- resolution ---------------------------------------------------------------

    def resolve(self, caller: FunctionInfo, site: CallSite) -> list[FunctionInfo]:
        if site.kind == "name":
            local = self.module_functions.get((caller.source.relpath, site.name))
            if local is not None:
                return [local]
            dotted = site.dotted
            if dotted and "." in dotted:
                module_path, func_name = dotted.rsplit(".", 1)
                suffix = module_path.replace(".", "/") + ".py"
                for (relpath, name), fn in self.module_functions.items():
                    if name == func_name and relpath.endswith(suffix):
                        return [fn]
            return []
        if site.kind == "self" and caller.class_name:
            return self._resolve_method(caller.class_name, site.name, set())
        return []

    def _resolve_method(
        self, class_name: str, method: str, seen: set[str]
    ) -> list[FunctionInfo]:
        if class_name in seen:
            return []
        seen.add(class_name)
        out: list[FunctionInfo] = []
        for cls in self.classes.get(class_name, []):
            if method in cls.methods:
                out.append(cls.methods[method])
                continue
            for base in cls.bases:
                out.extend(self._resolve_method(base, method, seen))
        return out

    # -- may-yield fixpoint ---------------------------------------------------------

    def _compute_may_yield(self) -> None:
        for fn in self.functions:
            fn.may_yield = fn.is_generator
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                if fn.may_yield:
                    continue
                for site in fn.calls:
                    if site.deferred:
                        continue
                    for target in self.resolve(fn, site):
                        if target.may_yield:
                            fn.may_yield = True
                            fn.witness = target
                            changed = True
                            break
                    if fn.may_yield:
                        break

    def transitive_locks(self) -> dict[int, set[str]]:
        """``id(fn) -> locks fn acquires, directly or via confident calls``."""
        acquired: dict[int, set[str]] = {
            id(fn): {
                event.name for event in fn.lock_events if event.op == "acquire"
            }
            for fn in self.functions
        }
        changed = True
        while changed:
            changed = False
            for fn in self.functions:
                mine = acquired[id(fn)]
                for event in fn.lock_events:
                    if event.op != "call" or event.call is None:
                        continue
                    for target in self.resolve(fn, event.call):
                        extra = acquired[id(target)] - mine
                        if extra:
                            mine |= extra
                            changed = True
        return acquired


def _discover_lock_names(project: Project) -> frozenset[str]:
    """Attribute/variable names assigned a ``Lock(...)`` anywhere."""
    names: set[str] = set()
    for source in project.files:
        if source.tree is None:
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            func = value.func
            callee = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if not callee.endswith("Lock"):
                continue
            target = node.targets[0]
            if isinstance(target, ast.Attribute):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


class AtomicityChecker(Checker):
    name = "atomicity"
    codes = {
        "ATM001": "yield point inside a declared-atomic scope",
        "ATM002": "call to a may-yield function inside a declared-atomic scope",
        "ATM003": "lock acquisition-order cycle",
        "ATM004": "malformed atomicity annotation",
    }

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = _CallGraph(project)
        findings: list[Finding] = []
        for source in project.files:
            if source.tree is None:
                continue
            findings.extend(self._check_markers(source, graph))
        findings.extend(self._check_lock_order(project, graph))
        return findings

    # -- declared-atomic functions and regions ----------------------------------

    def _check_markers(
        self, source: SourceFile, graph: _CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        functions = [fn for fn in graph.functions if fn.source is source]
        open_regions: dict[str, int] = {}
        for marker in source.directives.atomic_markers:
            if marker.kind == "function":
                fn = self._function_at(functions, marker.line)
                if fn is None:
                    findings.append(
                        self.finding(
                            "ATM004",
                            "atomic annotation is not attached to a function "
                            "definition",
                            source,
                            marker.line,
                        )
                    )
                    continue
                findings.extend(self._check_atomic_function(source, fn, graph))
            elif marker.kind == "begin":
                if marker.name in open_regions:
                    findings.append(
                        self.finding(
                            "ATM004",
                            f"atomic-begin({marker.name}) opened twice",
                            source,
                            marker.line,
                        )
                    )
                open_regions[marker.name] = marker.line
            elif marker.kind == "end":
                begin = open_regions.pop(marker.name, None)
                if begin is None:
                    findings.append(
                        self.finding(
                            "ATM004",
                            f"atomic-end({marker.name}) without a matching "
                            "begin",
                            source,
                            marker.line,
                        )
                    )
                    continue
                findings.extend(
                    self._check_region(
                        source, graph, marker.name, begin, marker.line
                    )
                )
        for name, line in open_regions.items():
            findings.append(
                self.finding(
                    "ATM004",
                    f"atomic-begin({name}) is never closed",
                    source,
                    line,
                )
            )
        return findings

    @staticmethod
    def _function_at(
        functions: list[FunctionInfo], marker_line: int
    ) -> Optional[FunctionInfo]:
        for fn in functions:
            node = fn.node
            candidates = {node.lineno, node.lineno - 1}
            for decorator in getattr(node, "decorator_list", []):
                candidates.add(decorator.lineno - 1)
            if marker_line in candidates or marker_line + 1 in {node.lineno}:
                return fn
        return None

    def _check_atomic_function(
        self, source: SourceFile, fn: FunctionInfo, graph: _CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        if fn.is_generator:
            findings.append(
                self.finding(
                    "ATM001",
                    f"declared-atomic function {fn.qualname} is a generator "
                    "(contains yield) — it cannot be atomic",
                    source,
                    fn.yield_lines[0] if fn.yield_lines else fn.node.lineno,
                    context=fn.qualname,
                )
            )
            return findings
        for site in fn.calls:
            if site.deferred:
                continue
            for target in graph.resolve(fn, site):
                if target.may_yield:
                    findings.append(
                        self.finding(
                            "ATM002",
                            f"declared-atomic function {fn.qualname} calls "
                            f"{target.chain()}, which may yield to the "
                            "scheduler",
                            source,
                            site.line,
                            context=fn.qualname,
                        )
                    )
                    break
        return findings

    def _check_region(
        self,
        source: SourceFile,
        graph: _CallGraph,
        region_name: str,
        begin: int,
        end: int,
    ) -> list[Finding]:
        findings: list[Finding] = []
        owner: Optional[FunctionInfo] = None
        for fn in graph.functions:
            if fn.source is not source:
                continue
            node = fn.node
            fn_end = getattr(node, "end_lineno", node.lineno) or node.lineno
            if node.lineno <= begin and end <= fn_end:
                if owner is None or node.lineno > owner.node.lineno:
                    owner = fn  # innermost enclosing function
        if owner is None:
            findings.append(
                self.finding(
                    "ATM004",
                    f"atomic region '{region_name}' is not inside a function",
                    source,
                    begin,
                )
            )
            return findings
        for line in owner.yield_lines:
            if begin <= line <= end:
                findings.append(
                    self.finding(
                        "ATM001",
                        f"yield point inside atomic region '{region_name}' — "
                        "the scheduler can interleave another process here",
                        source,
                        line,
                        context=owner.qualname,
                    )
                )
        for site in owner.calls:
            if not (begin <= site.line <= end) or site.under_yield:
                continue
            if site.deferred:
                continue
            for target in graph.resolve(owner, site):
                if target.may_yield:
                    findings.append(
                        self.finding(
                            "ATM002",
                            f"atomic region '{region_name}' calls "
                            f"{target.chain()}, which may yield to the "
                            "scheduler",
                            source,
                            site.line,
                            context=owner.qualname,
                        )
                    )
                    break
        return findings

    # -- lock-order cycles ---------------------------------------------------------

    def _check_lock_order(
        self, project: Project, graph: _CallGraph
    ) -> list[Finding]:
        acquired = graph.transitive_locks()
        # edge (held -> wanted) -> one witness (source, line, qualname)
        edges: dict[tuple[str, str], tuple[SourceFile, int, str]] = {}
        for fn in graph.functions:
            held: list[str] = []
            for event in fn.lock_events:
                if event.op == "acquire":
                    for holder in held:
                        if holder != event.name:
                            edges.setdefault(
                                (holder, event.name),
                                (fn.source, event.line, fn.qualname),
                            )
                    held.append(event.name)
                elif event.op == "release":
                    if event.name in held:
                        held.remove(event.name)
                elif event.op == "call" and held and event.call is not None:
                    for target in graph.resolve(fn, event.call):
                        for wanted in acquired[id(target)]:
                            for holder in held:
                                if holder != wanted:
                                    edges.setdefault(
                                        (holder, wanted),
                                        (fn.source, event.line, fn.qualname),
                                    )
        return self._report_cycles(edges)

    def _report_cycles(
        self,
        edges: dict[tuple[str, str], tuple[SourceFile, int, str]],
    ) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for held, wanted in edges:
            graph.setdefault(held, set()).add(wanted)
            graph.setdefault(wanted, set())
        findings: list[Finding] = []
        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if not cycle:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            closing = (cycle[-1], cycle[0])
            witness = edges.get(closing)
            if witness is None:
                for i in range(len(cycle) - 1):
                    witness = edges.get((cycle[i], cycle[i + 1]))
                    if witness:
                        break
            if witness is None:
                continue
            source, line, qualname = witness
            order = " -> ".join([*cycle, cycle[0]])
            findings.append(
                self.finding(
                    "ATM003",
                    f"lock acquisition-order cycle: {order}; acquiring in "
                    "opposite orders on two code paths can deadlock",
                    source,
                    line,
                    context=qualname,
                )
            )
        return findings

    @staticmethod
    def _find_cycle(
        graph: dict[str, set[str]], start: str
    ) -> Optional[list[str]]:
        """A simple cycle through ``start``, as an ordered lock list."""
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    return path
                if succ in seen or succ in path:
                    continue
                stack.append((succ, path + [succ]))
            seen.add(node)
        return None
