"""Yield-point / atomicity analysis (ATM).

The simulator is cooperative: a process can only be preempted at a
``yield``.  Every invariant of the form "these two updates happen
atomically" therefore reduces to "no yield point between them" — which is
exactly what this checker proves.  It builds on the project-wide call
graph in :mod:`repro.analysis.callgraph` (functions classified *may-yield*
when they are generators or confidently reach one) and enforces two kinds
of declarations:

``# analysis: atomic`` on a function
    The function must not be a generator and must not transitively call a
    may-yield function: it executes as one indivisible step.

``# analysis: atomic-begin(name)`` / ``atomic-end(name)`` inside a generator
    No yield point may occur between the markers — the bracketed span runs
    without the scheduler interleaving another process.

Codes:

ATM001  yield point inside a declared-atomic function/region;
ATM002  call to a may-yield function inside a declared-atomic scope;
ATM003  lock acquisition-order cycle (two code paths take the same locks
        in opposite orders — a deadlock waiting for the right schedule);
ATM004  malformed atomicity annotation (unmatched markers, no function).

Call resolution is deliberately *confident-only*: ``self.m()`` resolves
through the enclosing class and its project-visible bases, bare names
through the defining module and explicit imports.  Unresolvable calls are
ignored rather than over-approximated — suppressions should silence real
noise, not analysis guesses.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.callgraph import (
    CallGraph,
    FunctionInfo,
    SourceFile,
    function_at_marker,
)
from repro.analysis.findings import Finding
from repro.analysis.framework import Checker
from repro.analysis.source import Project


class AtomicityChecker(Checker):
    name = "atomicity"
    codes = {
        "ATM001": "yield point inside a declared-atomic scope",
        "ATM002": "call to a may-yield function inside a declared-atomic scope",
        "ATM003": "lock acquisition-order cycle",
        "ATM004": "malformed atomicity annotation",
    }
    default_scope = ("src/repro/",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        graph = CallGraph(project)
        findings: list[Finding] = []
        for source in self.scoped_files(project):
            findings.extend(self._check_markers(source, graph))
        findings.extend(self._check_lock_order(project, graph))
        return findings

    # -- declared-atomic functions and regions ----------------------------------

    def _check_markers(
        self, source: SourceFile, graph: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        functions = [fn for fn in graph.functions if fn.source is source]
        open_regions: dict[str, int] = {}
        for marker in source.directives.atomic_markers:
            if marker.kind == "function":
                fn = function_at_marker(functions, marker.line)
                if fn is None:
                    findings.append(
                        self.finding(
                            "ATM004",
                            "atomic annotation is not attached to a function "
                            "definition",
                            source,
                            marker.line,
                        )
                    )
                    continue
                findings.extend(self._check_atomic_function(source, fn, graph))
            elif marker.kind == "begin":
                if marker.name in open_regions:
                    findings.append(
                        self.finding(
                            "ATM004",
                            f"atomic-begin({marker.name}) opened twice",
                            source,
                            marker.line,
                        )
                    )
                open_regions[marker.name] = marker.line
            elif marker.kind == "end":
                begin = open_regions.pop(marker.name, None)
                if begin is None:
                    findings.append(
                        self.finding(
                            "ATM004",
                            f"atomic-end({marker.name}) without a matching "
                            "begin",
                            source,
                            marker.line,
                        )
                    )
                    continue
                findings.extend(
                    self._check_region(
                        source, graph, marker.name, begin, marker.line
                    )
                )
        for name, line in open_regions.items():
            findings.append(
                self.finding(
                    "ATM004",
                    f"atomic-begin({name}) is never closed",
                    source,
                    line,
                )
            )
        return findings

    def _check_atomic_function(
        self, source: SourceFile, fn: FunctionInfo, graph: CallGraph
    ) -> list[Finding]:
        findings: list[Finding] = []
        if fn.is_generator:
            findings.append(
                self.finding(
                    "ATM001",
                    f"declared-atomic function {fn.qualname} is a generator "
                    "(contains yield) — it cannot be atomic",
                    source,
                    fn.yield_lines[0] if fn.yield_lines else fn.node.lineno,
                    context=fn.qualname,
                )
            )
            return findings
        for site in fn.calls:
            if site.deferred:
                continue
            for target in graph.resolve(fn, site):
                if target.may_yield:
                    findings.append(
                        self.finding(
                            "ATM002",
                            f"declared-atomic function {fn.qualname} calls "
                            f"{target.chain()}, which may yield to the "
                            "scheduler",
                            source,
                            site.line,
                            context=fn.qualname,
                        )
                    )
                    break
        return findings

    def _check_region(
        self,
        source: SourceFile,
        graph: CallGraph,
        region_name: str,
        begin: int,
        end: int,
    ) -> list[Finding]:
        findings: list[Finding] = []
        owner: Optional[FunctionInfo] = None
        for fn in graph.functions:
            if fn.source is not source:
                continue
            node = fn.node
            fn_end = getattr(node, "end_lineno", node.lineno) or node.lineno
            if node.lineno <= begin and end <= fn_end:
                if owner is None or node.lineno > owner.node.lineno:
                    owner = fn  # innermost enclosing function
        if owner is None:
            findings.append(
                self.finding(
                    "ATM004",
                    f"atomic region '{region_name}' is not inside a function",
                    source,
                    begin,
                )
            )
            return findings
        for line in owner.yield_lines:
            if begin <= line <= end:
                findings.append(
                    self.finding(
                        "ATM001",
                        f"yield point inside atomic region '{region_name}' — "
                        "the scheduler can interleave another process here",
                        source,
                        line,
                        context=owner.qualname,
                    )
                )
        for site in owner.calls:
            if not (begin <= site.line <= end) or site.under_yield:
                continue
            if site.deferred:
                continue
            for target in graph.resolve(owner, site):
                if target.may_yield:
                    findings.append(
                        self.finding(
                            "ATM002",
                            f"atomic region '{region_name}' calls "
                            f"{target.chain()}, which may yield to the "
                            "scheduler",
                            source,
                            site.line,
                            context=owner.qualname,
                        )
                    )
                    break
        return findings

    # -- lock-order cycles ---------------------------------------------------------

    def _check_lock_order(
        self, project: Project, graph: CallGraph
    ) -> list[Finding]:
        acquired = graph.transitive_locks()
        # edge (held -> wanted) -> one witness (source, line, qualname)
        edges: dict[tuple[str, str], tuple[SourceFile, int, str]] = {}
        for fn in graph.functions:
            if not self.applies_to(fn.source):
                continue
            held: list[str] = []
            for event in fn.lock_events:
                if event.op == "acquire":
                    for holder in held:
                        if holder != event.name:
                            edges.setdefault(
                                (holder, event.name),
                                (fn.source, event.line, fn.qualname),
                            )
                    held.append(event.name)
                elif event.op == "release":
                    if event.name in held:
                        held.remove(event.name)
                elif event.op == "call" and held and event.call is not None:
                    for target in graph.resolve(fn, event.call):
                        for wanted in acquired[id(target)]:
                            for holder in held:
                                if holder != wanted:
                                    edges.setdefault(
                                        (holder, wanted),
                                        (fn.source, event.line, fn.qualname),
                                    )
        return self._report_cycles(edges)

    def _report_cycles(
        self,
        edges: dict[tuple[str, str], tuple[SourceFile, int, str]],
    ) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for held, wanted in edges:
            graph.setdefault(held, set()).add(wanted)
            graph.setdefault(wanted, set())
        findings: list[Finding] = []
        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if not cycle:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            closing = (cycle[-1], cycle[0])
            witness = edges.get(closing)
            if witness is None:
                for i in range(len(cycle) - 1):
                    witness = edges.get((cycle[i], cycle[i + 1]))
                    if witness:
                        break
            if witness is None:
                continue
            source, line, qualname = witness
            order = " -> ".join([*cycle, cycle[0]])
            findings.append(
                self.finding(
                    "ATM003",
                    f"lock acquisition-order cycle: {order}; acquiring in "
                    "opposite orders on two code paths can deadlock",
                    source,
                    line,
                    context=qualname,
                )
            )
        return findings

    @staticmethod
    def _find_cycle(
        graph: dict[str, set[str]], start: str
    ) -> Optional[list[str]]:
        """A simple cycle through ``start``, as an ordered lock list."""
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        seen: set[str] = set()
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    return path
                if succ in seen or succ in path:
                    continue
                stack.append((succ, path + [succ]))
            seen.add(node)
        return None
