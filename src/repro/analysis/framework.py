"""Checker base class, registry, and the analysis runner.

Checkers are pluggable: subclass :class:`Checker`, declare the finding
codes you emit, implement ``check_file`` (per-module findings) and/or
``check_project`` (cross-module findings such as IDL conformance or lock
ordering), and list the class in :data:`repro.analysis.checkers.ALL_CHECKERS`.

The runner applies, in order: path scoping (each checker sees only the
files its ``default_scope`` selects, unless constructed with an explicit
scope), inline ``# analysis: ignore[...]`` suppressions, and the checked-in
baseline.  What survives is the actionable finding list.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.cache import AnalysisCache
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.source import Project, SourceFile


def qualname_index(tree: ast.Module) -> dict[ast.AST, str]:
    """Map every function/class node to its dotted qualified name."""
    index: dict[ast.AST, str] = {}

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                qual = f"{prefix}.{child.name}" if prefix else child.name
                index[child] = qual
                visit(child, qual)
            else:
                visit(child, prefix)

    visit(tree, "")
    return index


def enclosing_context(tree: ast.Module, line: int) -> str:
    """Qualified name of the innermost def/class containing ``line``."""
    best = ""
    best_span = None
    for node, qual in qualname_index(tree).items():
        end = getattr(node, "end_lineno", node.lineno)
        if node.lineno <= line <= (end or node.lineno):
            span = (end or node.lineno) - node.lineno
            if best_span is None or span <= best_span:
                best, best_span = qual, span
    return best


class Checker:
    """Base class every checker family derives from."""

    #: short machine name, used in reports and ``--select``.
    name: ClassVar[str] = "checker"
    #: finding code -> one-line description (the checker catalog).
    codes: ClassVar[dict[str, str]] = {}
    #: repo-relative path fragments this checker applies to by default;
    #: ``()`` means every file.  Overridable per instance for fixtures.
    default_scope: ClassVar[tuple[str, ...]] = ()

    def __init__(self, scope: Optional[Sequence[str]] = None) -> None:
        self.scope: tuple[str, ...] = (
            self.default_scope if scope is None else tuple(scope)
        )

    def applies_to(self, source: SourceFile) -> bool:
        if not self.scope:
            return True
        rel = f"/{source.relpath}"
        return any(f"/{fragment}" in rel for fragment in self.scope)

    def scoped_files(self, project: Project) -> list[SourceFile]:
        """Parsed project files this checker's scope selects.

        ``check_project`` implementations iterate this instead of
        ``project.files`` so path scoping applies to cross-module passes
        exactly as the runner applies it to per-file passes.
        """
        return [
            source
            for source in project.files
            if source.tree is not None and self.applies_to(source)
        ]

    def check_file(
        self, source: SourceFile, project: Project
    ) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()

    # -- helpers shared by subclasses -------------------------------------------

    def finding(
        self,
        code: str,
        message: str,
        source: SourceFile,
        node_or_line: "ast.AST | int",
        severity: Severity = Severity.ERROR,
        context: str = "",
    ) -> Finding:
        if isinstance(node_or_line, int):
            line, column = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0)
        if not context and source.tree is not None:
            context = enclosing_context(source.tree, line)
        return Finding(
            code=code,
            message=message,
            path=source.relpath,
            line=line,
            column=column,
            severity=severity,
            checker=self.name,
            context=context,
        )


def run_checkers(
    project: Project,
    checkers: Sequence[Checker],
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    cache: Optional[AnalysisCache] = None,
) -> AnalysisResult:
    """Run ``checkers`` over ``project`` and post-process the findings.

    With ``cache``, ``check_project`` results are reused when the whole
    file set is unchanged and ``check_file`` results when that file is
    unchanged (``check_file`` is per-module by framework contract, so a
    single file's content hash is a sound key).
    """
    raw: list[Finding] = list(project.config_findings())
    for checker in checkers:
        project_findings: Optional[list[Finding]] = None
        if cache is not None:
            project_findings = cache.load_project_findings(
                checker.name, project.semantic
            )
        if project_findings is None:
            project_findings = list(checker.check_project(project))
            if cache is not None:
                cache.store_project_findings(
                    checker.name, project.semantic, project_findings
                )
        raw.extend(project_findings)
        for source in project.files:
            if source.tree is None or not checker.applies_to(source):
                continue
            file_findings: Optional[list[Finding]] = None
            if cache is not None:
                file_findings = cache.load_file_findings(
                    checker.name, source.relpath
                )
            if file_findings is None:
                file_findings = list(checker.check_file(source, project))
                if cache is not None:
                    cache.store_file_findings(
                        checker.name, source.relpath, file_findings
                    )
            raw.extend(file_findings)

    wanted: Optional[set[str]] = None
    if select:
        wanted = {code.strip().upper() for code in select}
        raw = [
            f
            for f in raw
            if f.code in wanted or f.code.rstrip("0123456789") in wanted
        ]

    result = AnalysisResult(
        files_checked=len(project.files),
        checkers_run=tuple(checker.name for checker in checkers),
    )
    sources = {source.relpath: source for source in project.files}
    matched_fingerprints: set[str] = set()
    for finding in sorted(raw, key=lambda f: (f.path, f.line, f.code)):
        source = sources.get(finding.path)
        if source is not None and source.directives.is_suppressed(
            finding.code, finding.line
        ):
            result.suppressed.append(finding)
            continue
        if baseline is not None and baseline.matches(finding):
            matched_fingerprints.add(finding.fingerprint)
            result.baselined.append(finding)
            continue
        result.findings.append(finding)
    if baseline is not None:
        stale = baseline.unmatched(matched_fingerprints)
        if wanted is not None:
            # Under --select only the selected families ran: an entry for
            # an unselected family matched nothing *because its checker
            # never fired*, which is not evidence of staleness.
            stale = [
                entry
                for entry in stale
                if str(entry.get("code", "")) in wanted
                or str(entry.get("code", "")).rstrip("0123456789") in wanted
            ]
        result.stale_baseline = stale
    return result


def checker_catalog(checkers: Sequence[Checker]) -> dict[str, dict[str, str]]:
    """``{checker_name: {code: description}}`` for docs and ``--list``."""
    return {checker.name: dict(checker.codes) for checker in checkers}
