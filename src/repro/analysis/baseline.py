"""The checked-in suppression baseline.

The baseline exists for findings that are *provably benign but not worth
an inline directive* — each entry must carry a justification string; an
entry without one (or with a ``TODO`` placeholder) invalidates the whole
file, because an unjustified baseline is indistinguishable from a swept-
under-the-rug defect.

Entries match findings by fingerprint (code + path + context + message,
line-independent — see :class:`repro.analysis.findings.Finding`), so pure
line drift never stales the baseline but any semantic change to the
finding does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding

FORMAT_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is malformed or carries unjustified entries."""


@dataclass
class Baseline:
    entries: list[dict] = field(default_factory=list)
    path: Path | None = None

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(payload, dict) or payload.get("version") != FORMAT_VERSION:
            raise BaselineError(
                f"{path}: expected an object with version={FORMAT_VERSION}"
            )
        entries = payload.get("suppressions", [])
        if not isinstance(entries, list):
            raise BaselineError(f"{path}: 'suppressions' must be a list")
        for index, entry in enumerate(entries):
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(
                    f"{path}: suppression #{index} needs a 'fingerprint'"
                )
            justification = str(entry.get("justification", "")).strip()
            if not justification or justification.upper().startswith("TODO"):
                raise BaselineError(
                    f"{path}: suppression #{index} "
                    f"({entry.get('code', '?')} {entry.get('path', '?')}) "
                    "has no justification — baseline entries must say why "
                    "they are benign"
                )
        return cls(entries=entries, path=Path(path))

    def matches(self, finding: Finding) -> bool:
        return any(
            entry["fingerprint"] == finding.fingerprint for entry in self.entries
        )

    def unmatched(self, seen_fingerprints: set[str]) -> list[dict]:
        """Entries that matched no current finding (stale)."""
        return [
            entry
            for entry in self.entries
            if entry["fingerprint"] not in seen_fingerprints
        ]

    @staticmethod
    def render(findings: Iterable[Finding], justification: str = "") -> str:
        """Serialize ``findings`` as a fresh baseline document.

        The caller is expected to replace the placeholder justifications
        before committing — the loader rejects ``TODO`` strings on purpose.
        """
        entries = []
        seen: set[str] = set()
        for finding in findings:
            if finding.fingerprint in seen:
                continue  # one entry covers every finding it fingerprints
            seen.add(finding.fingerprint)
            entries.append(
                {
                    "fingerprint": finding.fingerprint,
                    "code": finding.code,
                    "path": finding.path,
                    "context": finding.context,
                    "message": finding.message,
                    "justification": justification or "TODO: justify or fix",
                }
            )
        return json.dumps(
            {"version": FORMAT_VERSION, "suppressions": entries}, indent=2
        ) + "\n"
