"""Project-specific static analysis for the CORBA reproduction.

The properties the test suite can only *sample*, this package *proves* on
every commit:

* **determinism** — simulated code must be a pure function of its seed
  (no wall clock, no process-global entropy, no hash-salted iteration
  order leaking into results);
* **IDL conformance** — servants implement exactly what the IDL declares,
  and every FT proxy intercepts every operation of its interface (the
  paper's core proxy contract);
* **atomicity** — declared-atomic critical sections contain no cooperative
  yield points, and lock acquisition orders are cycle-free;
* **exception safety** — no bare/overbroad handlers, no silently swallowed
  recoverable communication failures;
* **race inference** (v2) — lockset analysis over the project call graph:
  shared ``self.<field>`` state must be guarded consistently, never span a
  yield point mid-update, and locks must be released on every path;
* **typestate lifecycles** (v2) — protocol objects (circuit breakers,
  pipelined checkpoints, connection-cache entries) must always reach their
  closing sink;
* **config-flag hygiene** (v2) — fast-path flags default off, every flag is
  consulted, every report counter is observable.

CLI: ``python -m repro.analysis`` (see :mod:`repro.analysis.cli`).
Programmatic use: :func:`analyze_paths`, :func:`analyze_source`, or compose
:class:`~repro.analysis.source.Project` + :func:`~repro.analysis.framework.run_checkers`
directly.  Add a checker by subclassing
:class:`~repro.analysis.framework.Checker` and registering it in
:data:`repro.analysis.checkers.ALL_CHECKERS`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import Baseline, BaselineError
from repro.analysis.checkers import (
    ALL_CHECKERS,
    AtomicityChecker,
    ConfigFlagChecker,
    DeterminismChecker,
    ExceptionSafetyChecker,
    IdlConformanceChecker,
    LifecycleChecker,
    RaceChecker,
)
from repro.analysis.cli import analyze_paths, run
from repro.analysis.findings import AnalysisResult, Finding, Severity
from repro.analysis.framework import Checker, checker_catalog, run_checkers
from repro.analysis.source import Project, SourceFile

__all__ = [
    "ALL_CHECKERS",
    "AnalysisResult",
    "AtomicityChecker",
    "Baseline",
    "BaselineError",
    "Checker",
    "ConfigFlagChecker",
    "DeterminismChecker",
    "ExceptionSafetyChecker",
    "Finding",
    "IdlConformanceChecker",
    "LifecycleChecker",
    "Project",
    "RaceChecker",
    "Severity",
    "SourceFile",
    "analyze_paths",
    "analyze_source",
    "checker_catalog",
    "run",
    "run_checkers",
]


def analyze_source(
    text: str,
    filename: str = "<snippet>.py",
    checkers: Optional[Sequence[Checker]] = None,
    semantic: bool = False,
) -> AnalysisResult:
    """Run the checkers over an in-memory snippet (no filesystem needed).

    Scopes are cleared so every checker sees the snippet regardless of its
    pretend filename — handy for demos, docs, and tests.
    """
    root = Path(".").resolve()
    source = SourceFile.from_text(text, root / filename, root)
    project = Project(root=root, files=[source], semantic=semantic)
    if checkers is None:
        checkers = [checker_cls(scope=()) for checker_cls in ALL_CHECKERS]
    return run_checkers(project, list(checkers))
