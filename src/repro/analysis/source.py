"""Source-file and project models the checkers operate on.

A :class:`SourceFile` bundles one parsed module: text, AST, the comment map
(extracted with :mod:`tokenize`, so trailing comments are attributed to the
right line), the parsed ``# analysis:`` directives, and an import-alias
table for resolving dotted call names.  A :class:`Project` is the set of
files under analysis plus the root used for repo-relative paths.
"""

from __future__ import annotations

import ast
import io
import subprocess
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.analysis.findings import Finding, Severity
from repro.analysis.suppressions import Directives, parse_directives


def extract_comments(text: str) -> dict[int, str]:
    """``{line: comment_text}`` for every comment token in ``text``."""
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # A file that fails to tokenize surfaces as an ANA001 parse
        # finding via ast.parse; comments are best-effort here.
        pass
    return comments


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully-qualified dotted origin, from import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.split(".")[0]
                aliases[local] = name.name if name.asname else name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                aliases[local] = f"{node.module}.{name.name}"
    return aliases


@dataclass
class SourceFile:
    """One parsed Python module under analysis."""

    path: Path
    relpath: str
    text: str
    tree: Optional[ast.Module]
    comments: dict[int, str] = field(default_factory=dict)
    directives: Directives = field(default_factory=Directives)
    import_aliases: dict[str, str] = field(default_factory=dict)
    parse_error: Optional[str] = None

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceFile":
        text = path.read_text(encoding="utf-8")
        return cls.from_text(text, path, root)

    @classmethod
    def from_text(cls, text: str, path: Path, root: Path) -> "SourceFile":
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        tree: Optional[ast.Module] = None
        parse_error: Optional[str] = None
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            parse_error = f"syntax error: {exc.msg}"
        comments = extract_comments(text)
        return cls(
            path=path,
            relpath=relpath,
            text=text,
            tree=tree,
            comments=comments,
            directives=parse_directives(comments),
            import_aliases=_import_aliases(tree) if tree else {},
            parse_error=parse_error,
        )

    def resolve_call_name(self, node: ast.expr) -> str:
        """Best-effort dotted name of a call target, import-resolved.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; unresolvable shapes return ``""``.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return ""
        parts.append(current.id)
        parts.reverse()
        head = self.import_aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])


@dataclass
class Project:
    """The file set one analysis run operates on."""

    root: Path
    files: list[SourceFile] = field(default_factory=list)
    #: whether semantic (import-the-toolchain) checks may run.
    semantic: bool = True

    @classmethod
    def from_paths(
        cls,
        paths: Iterable[Path],
        root: Optional[Path] = None,
        semantic: bool = True,
    ) -> "Project":
        paths = [Path(p).resolve() for p in paths]
        if root is None:
            root = find_repo_root(paths[0] if paths else Path.cwd())
        root = Path(root).resolve()
        return cls.from_files(
            discover_python_files(paths, root), root=root, semantic=semantic
        )

    @classmethod
    def from_files(
        cls,
        file_paths: Iterable[Path],
        root: Path,
        semantic: bool = True,
    ) -> "Project":
        """Build a project from an already-discovered, ordered file list."""
        project = cls(root=Path(root).resolve(), semantic=semantic)
        for file_path in file_paths:
            project.files.append(SourceFile.load(file_path, project.root))
        return project

    def by_relpath(self, relpath: str) -> Optional[SourceFile]:
        for source in self.files:
            if source.relpath == relpath or source.relpath.endswith(f"/{relpath}"):
                return source
        return None

    def config_findings(self) -> list[Finding]:
        """Findings about the analysis inputs themselves: unparseable
        files and malformed directives (code ``ANA001``)."""
        findings: list[Finding] = []
        for source in self.files:
            if source.parse_error:
                findings.append(
                    Finding(
                        code="ANA001",
                        message=source.parse_error,
                        path=source.relpath,
                        line=1,
                        severity=Severity.ERROR,
                        checker="framework",
                    )
                )
            for line, message in source.directives.malformed:
                findings.append(
                    Finding(
                        code="ANA001",
                        message=message,
                        path=source.relpath,
                        line=line,
                        severity=Severity.ERROR,
                        checker="framework",
                    )
                )
        return findings


def discover_python_files(
    paths: Iterable[Path], root: Path
) -> list[Path]:
    """The sorted, deduplicated file set an analysis run operates on.

    Directory walks are intersected with ``git ls-files`` when ``root``
    is a git work tree: untracked scratch files (and ``__pycache__``,
    always) cannot make a dirty local tree report differently from CI.
    Files named *explicitly* are always analysed, tracked or not — naming
    a file is an instruction, walking a directory is a default.
    """
    tracked = _git_tracked_files(Path(root))
    out: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        path = Path(path)
        for candidate in sorted(_iter_python_files(path)):
            if candidate in seen:
                continue
            if (
                tracked is not None
                and path.is_dir()
                and candidate not in tracked
            ):
                continue
            seen.add(candidate)
            out.append(candidate)
    return out


def _git_tracked_files(root: Path) -> Optional[set[Path]]:
    """Absolute paths of git-tracked files, or None outside a work tree."""
    if not (root / ".git").exists():
        return None
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), "ls-files", "-z"],
            capture_output=True,
            check=True,
            timeout=30,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        (root / name).resolve()
        for name in proc.stdout.decode("utf-8", "replace").split("\0")
        if name
    }


def _iter_python_files(path: Path) -> Iterator[Path]:
    if path.is_file():
        if path.suffix == ".py":
            yield path
        return
    for candidate in path.rglob("*.py"):
        if "__pycache__" in candidate.parts:
            continue
        yield candidate


def find_repo_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding ``pyproject.toml``."""
    current = start if start.is_dir() else start.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return current
