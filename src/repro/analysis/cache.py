"""Incremental analysis cache (``--cache <dir>``).

The strict CI gate re-runs the whole analysis on every push; almost
always on a tree where nothing relevant changed.  This module makes the
gate incremental with three content-addressed tiers, coarsest first:

* **full-run** — one key over the sorted ``(relpath, sha256(text))`` set,
  the checker-code signature, the semantic flag and the ``--select``
  expression.  A hit skips parsing entirely: the stored findings (already
  classified against inline suppressions, which live in the hashed file
  contents) are replayed and only the baseline — which can change
  independently of the tree — is re-applied fresh;
* **per-checker project** — ``check_project`` output keyed by the same
  file-set hash, per checker.  Lets ``--select RACE`` runs share work
  with full runs over the same tree;
* **per-file** — ``check_file`` output keyed by one file's content hash,
  per checker.  Survives edits to *other* files.

Every key embeds :data:`CACHE_VERSION` and a signature hashed from the
source text of every loaded ``repro.analysis`` module, so editing any
checker invalidates everything it might have influenced — the cache can
go stale only if the analysis package mutates *at runtime*, which it
does not.  Entries are plain JSON, one file per key, safe to prune at
any time.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.findings import Finding, Severity

CACHE_VERSION = 1


def finding_from_dict(payload: dict) -> Finding:
    """Inverse of :meth:`Finding.to_dict` (fingerprint is recomputed)."""
    return Finding(
        code=str(payload["code"]),
        message=str(payload["message"]),
        path=str(payload["path"]),
        line=int(payload["line"]),
        column=int(payload.get("column", 0)),
        severity=(
            Severity.WARNING
            if payload.get("severity") == "warning"
            else Severity.ERROR
        ),
        checker=str(payload.get("checker", "")),
        context=str(payload.get("context", "")),
    )


def _text_hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def analysis_code_signature() -> str:
    """Hash of the loaded ``repro.analysis`` source code itself.

    Part of every cache key: a cached result is only as good as the
    checker revision that produced it.
    """
    chunks: list[str] = []
    for name in sorted(sys.modules):
        if name != "repro.analysis" and not name.startswith("repro.analysis."):
            continue
        module = sys.modules[name]
        try:
            chunks.append(inspect.getsource(module))
        except (OSError, TypeError):  # namespace/builtin edge cases
            chunks.append(name)
    return _text_hash("\n".join(chunks))


@dataclass
class CacheStats:
    """Hit accounting, reported in the JSON output."""

    enabled: bool = False
    full_hit: bool = False
    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "full_hit": self.full_hit,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class AnalysisCache:
    """Content-addressed store under one directory (see module docs)."""

    directory: Path
    stats: CacheStats = field(default_factory=CacheStats)
    _signature: str = ""
    #: ``{relpath: sha256}`` of the current run's file set, installed by
    #: :meth:`set_file_set` before any lookups.
    _file_hashes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.directory = Path(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats.enabled = True
        self._signature = analysis_code_signature()

    # -- keys ---------------------------------------------------------------------

    def set_file_set(self, file_hashes: dict[str, str]) -> None:
        self._file_hashes = dict(file_hashes)

    def _file_set_digest(self) -> str:
        return _text_hash(
            "\n".join(
                f"{rel}\0{digest}"
                for rel, digest in sorted(self._file_hashes.items())
            )
        )

    def _key(self, *parts: str) -> str:
        raw = "|".join((f"v{CACHE_VERSION}", self._signature, *parts))
        return _text_hash(raw)

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    # -- raw entry IO -------------------------------------------------------------

    def _load(self, key: str) -> Optional[dict]:
        path = self._entry_path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _store(self, key: str, payload: dict) -> None:
        tmp = self._entry_path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self._entry_path(key))

    # -- full-run tier ------------------------------------------------------------

    def _full_key(self, semantic: bool, select: Optional[Sequence[str]]) -> str:
        select_part = ",".join(sorted(select)) if select else ""
        return self._key(
            "full", self._file_set_digest(), str(semantic), select_part
        )

    def load_full(
        self, semantic: bool, select: Optional[Sequence[str]]
    ) -> Optional[tuple[list[Finding], list[Finding]]]:
        """``(kept, inline_suppressed)`` for an identical previous run."""
        payload = self._load(self._full_key(semantic, select))
        if payload is None:
            return None
        self.stats.full_hit = True
        self.stats.hits += 1
        return (
            [finding_from_dict(f) for f in payload.get("findings", [])],
            [finding_from_dict(f) for f in payload.get("suppressed", [])],
        )

    def store_full(
        self,
        semantic: bool,
        select: Optional[Sequence[str]],
        kept: Sequence[Finding],
        suppressed: Sequence[Finding],
    ) -> None:
        self._store(
            self._full_key(semantic, select),
            {
                "findings": [f.to_dict() for f in kept],
                "suppressed": [f.to_dict() for f in suppressed],
            },
        )

    # -- per-checker / per-file tiers (used by run_checkers) ----------------------

    def load_project_findings(
        self, checker_name: str, semantic: bool
    ) -> Optional[list[Finding]]:
        key = self._key(
            "project", checker_name, self._file_set_digest(), str(semantic)
        )
        payload = self._load(key)
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return [finding_from_dict(f) for f in payload.get("findings", [])]

    def store_project_findings(
        self, checker_name: str, semantic: bool, findings: Sequence[Finding]
    ) -> None:
        key = self._key(
            "project", checker_name, self._file_set_digest(), str(semantic)
        )
        self._store(key, {"findings": [f.to_dict() for f in findings]})

    def load_file_findings(
        self, checker_name: str, relpath: str
    ) -> Optional[list[Finding]]:
        digest = self._file_hashes.get(relpath)
        if digest is None:
            return None
        payload = self._load(self._key("file", checker_name, relpath, digest))
        if payload is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return [finding_from_dict(f) for f in payload.get("findings", [])]

    def store_file_findings(
        self, checker_name: str, relpath: str, findings: Sequence[Finding]
    ) -> None:
        digest = self._file_hashes.get(relpath)
        if digest is None:
            return
        self._store(
            self._key("file", checker_name, relpath, digest),
            {"findings": [f.to_dict() for f in findings]},
        )
