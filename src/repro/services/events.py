"""An event service (CosEventComm/CosEventChannelAdmin subset).

The push model of the CORBA Event Service: suppliers ``push`` untyped
events into a channel; the channel fans them out to connected
``PushConsumer`` objects with oneway calls (fire-and-forget, like the
spec's decoupled delivery).

Included because the paper's future work needs it twice over: monitoring
systems like Piranha (§3's related work) are built on event propagation,
and a wide-area Winner wants *push* notification of load changes instead
of polling.  :class:`LoadAlarmPublisher` provides exactly that: it watches
the system manager and pushes overload/recovered events into a channel.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ProcessKilled
from repro.orb.idl import compile_idl

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.sim.process import Process
    from repro.winner.system_manager import SystemManager

EVENTS_IDL = """
module CosEvents {
    interface PushConsumer {
        oneway void push(in any data);
    };

    interface EventChannel : PushConsumer {
        void connect_consumer(in PushConsumer consumer);
        void disconnect_consumer(in PushConsumer consumer);
        long consumer_count();
        // Drop consumers that no longer answer locate pings.
        long prune_dead_consumers();
    };
};
"""

ns = compile_idl(EVENTS_IDL, name="cosevents")

PushConsumerStub = ns.PushConsumerStub
PushConsumerSkeleton = ns.PushConsumerSkeleton
EventChannelStub = ns.EventChannelStub
EventChannelSkeleton = ns.EventChannelSkeleton


class EventChannelServant(EventChannelSkeleton):
    """Fans pushed events out to every connected consumer."""

    def __init__(self) -> None:
        self._consumers: list = []  # IORs
        self.events_delivered = 0
        self.events_dropped = 0

    def connect_consumer(self, consumer):
        if consumer not in self._consumers:
            self._consumers.append(consumer)

    def disconnect_consumer(self, consumer):
        if consumer in self._consumers:
            self._consumers.remove(consumer)

    def consumer_count(self):
        return len(self._consumers)

    def push(self, data):
        orb = self._poa.orb  # type: ignore[union-attr]
        if not self._consumers:
            self.events_dropped += 1
            return
        for ior in list(self._consumers):
            stub = orb.stub(ior, PushConsumerStub)
            # Oneway fan-out: the future resolves at send time.
            yield stub.push(data)
            self.events_delivered += 1

    def prune_dead_consumers(self):
        orb = self._poa.orb  # type: ignore[union-attr]
        removed = 0
        for ior in list(self._consumers):
            alive = yield orb.locate(ior)
            if not alive:
                self._consumers.remove(ior)
                removed += 1
        return removed


class CollectingConsumer(PushConsumerSkeleton):
    """A consumer servant that records everything it receives."""

    def __init__(self) -> None:
        self.received: list = []

    def push(self, data):
        self.received.append(data)


class LoadAlarmPublisher:
    """Pushes overload/recovered events for each host into a channel.

    An alarm fires when a host's smoothed utilization crosses
    ``threshold`` upward; a recovery event when it crosses back down.
    """

    def __init__(
        self,
        orb: "Orb",
        manager: "SystemManager",
        channel_ior,
        threshold: float = 0.8,
        interval: float = 1.0,
    ) -> None:
        self.orb = orb
        self.manager = manager
        self.channel = orb.stub(channel_ior, EventChannelStub)
        self.threshold = threshold
        self.interval = interval
        self._over: set[str] = set()
        self._process: Optional["Process"] = None
        self.alarms = 0

    def start(self) -> "LoadAlarmPublisher":
        if self._process is None or self._process.is_done:
            self._process = self.orb.host.spawn(self._run(), name="load-alarms")
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self):
        sim = self.orb.sim
        try:
            while True:
                yield sim.timeout(self.interval)
                for row in self.manager.snapshot():
                    host = row["host"]
                    overloaded = row["alive"] and row["utilization"] >= self.threshold
                    if overloaded and host not in self._over:
                        self._over.add(host)
                        self.alarms += 1
                        yield self.channel.push(
                            {"kind": "overload", "host": host,
                             "utilization": row["utilization"]}
                        )
                    elif not overloaded and host in self._over:
                        self._over.discard(host)
                        yield self.channel.push(
                            {"kind": "recovered", "host": host,
                             "utilization": row["utilization"]}
                        )
        except ProcessKilled:
            raise
