"""The checkpoint storage service.

"As a proof of concept, a simple service for storing checkpointing data has
been implemented.  It simply provides functions to store/retrieve arbitrary
values to the server object.  No real persistency like storing checkpoints
on disk media has been implemented, yet.  Furthermore, the current
implementation is rather inefficient." (§3)

We reproduce that service — including, deliberately, its *inefficiency*:
the default per-request processing cost is large, because Table 1's
headline result (fault tolerance costing up to 3× runtime) depends on it.
Both the paper's in-memory backend and the "future work" disk backend are
provided; the ablation bench compares them.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import TRANSIENT
from repro.orb.cdr import decode_any, encode_any
from repro.orb.idl import compile_idl

CHECKPOINT_IDL = """
module Checkpointing {
    exception NoCheckpoint { string key; };

    interface CheckpointStore {
        // Store a checkpoint; versions must increase per key.
        void store(in string key, in long version, in any state);
        // Latest checkpoint for a key.
        any load(in string key) raises (NoCheckpoint);
        long latest_version(in string key) raises (NoCheckpoint);
        void discard(in string key);
        sequence<string> keys();
        long long bytes_stored();
    };
};
"""

ns = compile_idl(CHECKPOINT_IDL, name="checkpointing")

NoCheckpoint = ns.NoCheckpoint
CheckpointStoreStub = ns.CheckpointStoreStub
CheckpointStoreSkeleton = ns.CheckpointStoreSkeleton


class MemoryBackend:
    """Keeps encoded checkpoints in memory (the paper's proof of concept)."""

    name = "memory"

    def __init__(self, history_limit: int = 4) -> None:
        self.history_limit = history_limit
        self._data: dict[str, list[tuple[int, bytes]]] = {}
        self.bytes_written = 0

    def write(self, key: str, version: int, data: bytes):
        history = self._data.setdefault(key, [])
        history.append((version, data))
        del history[: -self.history_limit]
        self.bytes_written += len(data)
        return
        yield  # pragma: no cover - makes this a generator for uniformity

    def read_latest(self, key: str) -> Optional[tuple[int, bytes]]:
        history = self._data.get(key)
        return history[-1] if history else None

    def discard(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._data)

    def bytes_stored(self) -> int:
        return sum(
            len(data) for history in self._data.values() for _, data in history
        )


class DiskBackend(MemoryBackend):
    """Adds simulated disk latency: a seek plus throughput-limited write.

    Writing is a generator (yields a simulated delay), so the servant's
    store operation takes correspondingly longer — "real persistency like
    storing checkpoints on disk media", the part the paper deferred.
    """

    name = "disk"

    def __init__(
        self,
        sim,
        history_limit: int = 4,
        seek_time: float = 8e-3,
        write_bandwidth: float = 5e6,
    ) -> None:
        super().__init__(history_limit=history_limit)
        self._sim = sim
        self.seek_time = seek_time
        self.write_bandwidth = write_bandwidth

    def write(self, key: str, version: int, data: bytes):
        yield self._sim.timeout(self.seek_time + len(data) / self.write_bandwidth)
        history = self._data.setdefault(key, [])
        history.append((version, data))
        del history[: -self.history_limit]
        self.bytes_written += len(data)


class CheckpointStoreServant(CheckpointStoreSkeleton):
    """The checkpoint storage servant.

    :param processing_work: CPU seconds (speed-1 host) burned per request —
        the "rather inefficient ... not optimized for speed in any way"
        knob.  Table 1's overhead comes mostly from here.
    """

    def __init__(
        self,
        backend: Optional[MemoryBackend] = None,
        processing_work: float = 0.015,
    ) -> None:
        self.backend = backend or MemoryBackend()
        self.processing_work = processing_work
        self.stores = 0
        self.loads = 0
        #: chaos hook: an unavailable store answers every request with
        #: ``TRANSIENT`` — the storage-outage failure mode the degraded
        #: checkpointing path (``on_checkpoint_failure="degraded"``) rides
        #: out by buffering client-side.
        self.available = True
        self.outages = 0
        self.rejected_requests = 0

    def set_available(self, available: bool) -> None:
        if self.available and not available:
            self.outages += 1
        self.available = bool(available)

    def _check_available(self) -> None:
        if not self.available:
            self.rejected_requests += 1
            raise TRANSIENT("checkpoint store unavailable")

    def store(self, key, version, state):
        self._check_available()
        yield self._host().execute(self.processing_work)
        self._check_available()  # outage may start while we queue
        data = encode_any(state)
        yield from self.backend.write(key, version, data)
        self.stores += 1

    def load(self, key):
        self._check_available()
        yield self._host().execute(self.processing_work)
        self._check_available()
        latest = self.backend.read_latest(key)
        if latest is None:
            raise NoCheckpoint(key=key)
        self.loads += 1
        return decode_any(latest[1])

    def latest_version(self, key):
        self._check_available()
        latest = self.backend.read_latest(key)
        if latest is None:
            raise NoCheckpoint(key=key)
        return latest[0]

    def discard(self, key):
        self.backend.discard(key)

    def keys(self):
        return self.backend.keys()

    def bytes_stored(self):
        return self.backend.bytes_stored()
