"""The checkpoint storage service.

"As a proof of concept, a simple service for storing checkpointing data has
been implemented.  It simply provides functions to store/retrieve arbitrary
values to the server object.  No real persistency like storing checkpoints
on disk media has been implemented, yet.  Furthermore, the current
implementation is rather inefficient." (§3)

We reproduce that service — including, deliberately, its *inefficiency*:
the default per-request processing cost is large, because Table 1's
headline result (fault tolerance costing up to 3× runtime) depends on it.
Both the paper's in-memory backend and the "future work" disk backend are
provided; the ablation bench compares them.

Beyond the paper, the store speaks *deltas*: ``store_delta`` ships only
what changed against a base version the server already holds, and ``load``
reconstructs the current state by replaying the delta chain on top of the
last full snapshot.  Clients bound the chain by shipping a periodic full
snapshot (:class:`~repro.ft.policy.FtPolicy.checkpoint_full_interval`); a
delta whose base is not the server's latest record raises
:class:`BadDeltaBase` and the client falls back to a full store.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional

from repro.errors import CdrError, TRANSIENT
from repro.orb.cdr import decode_any, encode_any, values_equal
from repro.orb.idl import compile_idl

CHECKPOINT_IDL = """
module Checkpointing {
    exception NoCheckpoint { string key; };
    exception BadDeltaBase { string key; long expected; long got; };

    interface CheckpointStore {
        // Store a checkpoint; versions must increase per key.
        void store(in string key, in long version, in any state);
        // Store only what changed against base_version (which must be
        // the latest record the store holds for the key).
        void store_delta(in string key, in long base_version,
                         in long version, in any delta)
            raises (BadDeltaBase);
        // Latest checkpoint for a key (deltas replayed server-side).
        any load(in string key) raises (NoCheckpoint);
        long latest_version(in string key) raises (NoCheckpoint);
        void discard(in string key);
        sequence<string> keys();
        long long bytes_stored();
    };
};
"""

ns = compile_idl(CHECKPOINT_IDL, name="checkpointing")

NoCheckpoint = ns.NoCheckpoint
BadDeltaBase = ns.BadDeltaBase
CheckpointStoreStub = ns.CheckpointStoreStub
CheckpointStoreSkeleton = ns.CheckpointStoreSkeleton


# -- the delta codec ---------------------------------------------------------------

#: marker key identifying a dict as a delta node on the wire.
DELTA_MARK = "__ckpt_delta__"


def is_delta(value: Any) -> bool:
    """True when ``value`` is a delta node produced by :func:`compute_delta`."""
    return isinstance(value, dict) and DELTA_MARK in value


def compute_delta(base: Any, new: Any) -> Optional[dict]:
    """Recursive dict delta turning ``base`` into ``new``, or None when the
    pair is not delta-able (either side is not a plain dict, or a dict
    uses the reserved marker key itself — the caller ships a full state).

    The node format is ``{DELTA_MARK: 1, "set": {key: value-or-subdelta},
    "removed": [keys]}``; unchanged entries are simply absent.
    """
    if not isinstance(base, dict) or not isinstance(new, dict):
        return None
    if DELTA_MARK in base or DELTA_MARK in new:
        return None
    changed: dict = {}
    for key, value in new.items():
        if key not in base:
            changed[key] = value
            continue
        old = base[key]
        if values_equal(old, value):
            continue
        sub = compute_delta(old, value)
        changed[key] = value if sub is None else sub
    removed = [key for key in base if key not in new]
    return {DELTA_MARK: 1, "set": changed, "removed": removed}


def apply_delta(base: Any, delta: Any) -> dict:
    """Replay one delta node on top of ``base`` (returns a new dict)."""
    if not is_delta(delta):
        raise CdrError("not a checkpoint delta node")
    if not isinstance(base, dict):
        raise CdrError(
            f"checkpoint delta applied to non-dict base {type(base).__name__}"
        )
    out = dict(base)
    for key in delta["removed"]:
        out.pop(key, None)
    for key, value in delta["set"].items():
        if is_delta(value):
            out[key] = apply_delta(out.get(key, {}), value)
        else:
            out[key] = value
    return out


def state_digest(data: bytes) -> str:
    """Content hash of an encoded state (the unchanged-state skip key)."""
    import hashlib

    return hashlib.sha1(data).hexdigest()


# -- backends ---------------------------------------------------------------------


class CheckpointRecord(NamedTuple):
    """One history entry.  A NamedTuple so legacy ``(version, data)``
    tuple-indexing keeps working."""

    version: int
    data: bytes
    full: bool = True
    base_version: int = -1


class MemoryBackend:
    """Keeps encoded checkpoints in memory (the paper's proof of concept).

    The I/O cost model is split so the servant can re-check availability
    *between* the simulated delay and the mutation: :meth:`delay` is a
    generator burning the backend's write latency (none, for memory) and
    :meth:`commit` applies the mutation and counts ``bytes_written`` —
    only successful writes are ever counted.
    """

    name = "memory"

    def __init__(self, history_limit: int = 4) -> None:
        self.history_limit = history_limit
        self._data: dict[str, list[CheckpointRecord]] = {}
        self.bytes_written = 0
        self.delta_bytes_written = 0

    def delay(self, data: bytes):
        return
        yield  # pragma: no cover - makes this a generator for uniformity

    def commit(
        self,
        key: str,
        version: int,
        data: bytes,
        full: bool = True,
        base_version: int = -1,
    ) -> None:
        history = self._data.setdefault(key, [])
        history.append(CheckpointRecord(version, data, full, base_version))
        self._trim(history)
        self.bytes_written += len(data)
        if not full:
            self.delta_bytes_written += len(data)

    def _trim(self, history: list[CheckpointRecord]) -> None:
        """Bound the history without ever cutting the active delta chain:
        keep at least the newest full record and everything after it."""
        excess = len(history) - self.history_limit
        if excess <= 0:
            return
        last_full = 0
        for index, record in enumerate(history):
            if record.full:
                last_full = index
        del history[: min(excess, last_full)]

    def write(self, key: str, version: int, data: bytes):
        """Legacy full-write path: delay, then commit."""
        yield from self.delay(data)
        self.commit(key, version, data)

    def read_latest(self, key: str) -> Optional[CheckpointRecord]:
        history = self._data.get(key)
        return history[-1] if history else None

    def read_chain(self, key: str) -> list[CheckpointRecord]:
        """The newest full record and every delta after it (restore order)."""
        history = self._data.get(key)
        if not history:
            return []
        start = 0
        for index, record in enumerate(history):
            if record.full:
                start = index
        return history[start:]

    def last_full_size(self, key: str) -> int:
        """Size of the newest full snapshot (0 when the key is unknown)."""
        chain = self.read_chain(key)
        if chain and chain[0].full:
            return len(chain[0].data)
        return 0

    def discard(self, key: str) -> None:
        self._data.pop(key, None)

    def keys(self) -> list[str]:
        return sorted(self._data)

    def bytes_stored(self) -> int:
        return sum(
            len(record.data)
            for history in self._data.values()
            for record in history
        )


class DiskBackend(MemoryBackend):
    """Adds simulated disk latency: a seek plus throughput-limited write.

    The delay happens before the commit, so an outage that begins while
    the bytes are "on their way to the platter" still fails the request —
    "real persistency like storing checkpoints on disk media", the part
    the paper deferred.
    """

    name = "disk"

    def __init__(
        self,
        sim,
        history_limit: int = 4,
        seek_time: float = 8e-3,
        write_bandwidth: float = 5e6,
    ) -> None:
        super().__init__(history_limit=history_limit)
        self._sim = sim
        self.seek_time = seek_time
        self.write_bandwidth = write_bandwidth

    def delay(self, data: bytes):
        yield self._sim.timeout(self.seek_time + len(data) / self.write_bandwidth)


class CheckpointStoreServant(CheckpointStoreSkeleton):
    """The checkpoint storage servant.

    :param processing_work: CPU seconds (speed-1 host) burned per request —
        the "rather inefficient ... not optimized for speed in any way"
        knob.  Table 1's overhead comes mostly from here.
    :param delta_work_floor: lower bound on the fraction of
        ``processing_work`` a ``store_delta`` request pays (the charge
        scales with delta size relative to the last full snapshot — less
        data to handle is the whole point of shipping deltas).
    """

    def __init__(
        self,
        backend: Optional[MemoryBackend] = None,
        processing_work: float = 0.015,
        delta_work_floor: float = 0.15,
    ) -> None:
        self.backend = backend or MemoryBackend()
        self.processing_work = processing_work
        self.delta_work_floor = delta_work_floor
        self.stores = 0
        self.loads = 0
        self.delta_stores = 0
        self.delta_rejections = 0
        #: delta records replayed by ``load`` reconstructions.
        self.deltas_replayed = 0
        #: chaos hook: an unavailable store answers every request with
        #: ``TRANSIENT`` — the storage-outage failure mode the degraded
        #: checkpointing path (``on_checkpoint_failure="degraded"``) rides
        #: out by buffering client-side.
        self.available = True
        self.outages = 0
        self.rejected_requests = 0

    def set_available(self, available: bool) -> None:
        if self.available and not available:
            self.outages += 1
        self.available = bool(available)

    def _check_available(self) -> None:
        if not self.available:
            self.rejected_requests += 1
            raise TRANSIENT("checkpoint store unavailable")

    def store(self, key, version, state):
        self._check_available()
        yield self._host().execute(self.processing_work)
        self._check_available()  # outage may start while we queue
        data = encode_any(state)
        yield from self.backend.delay(data)
        self._check_available()  # ... or while the backend writes
        self.backend.commit(key, version, data)
        self.stores += 1

    def store_delta(self, key, base_version, version, delta):
        self._check_available()
        latest = self.backend.read_latest(key)
        expected = latest.version if latest is not None else -1
        if latest is None or expected != base_version:
            self.delta_rejections += 1
            raise BadDeltaBase(key=key, expected=expected, got=base_version)
        data = encode_any(delta)
        # The per-request charge scales with how much of a full payload the
        # delta actually carries; the floor keeps fixed costs honest.
        full_size = self.backend.last_full_size(key) or len(data)
        scale = min(1.0, max(self.delta_work_floor, len(data) / full_size))
        yield self._host().execute(self.processing_work * scale)
        self._check_available()
        yield from self.backend.delay(data)
        self._check_available()
        latest = self.backend.read_latest(key)
        if latest is None or latest.version != base_version:
            # Another writer slipped in while we were executing.
            self.delta_rejections += 1
            expected = latest.version if latest is not None else -1
            raise BadDeltaBase(key=key, expected=expected, got=base_version)
        self.backend.commit(
            key, version, data, full=False, base_version=base_version
        )
        self.delta_stores += 1

    def load(self, key):
        self._check_available()
        yield self._host().execute(self.processing_work)
        self._check_available()
        chain = self.backend.read_chain(key)
        if not chain or not chain[0].full:
            raise NoCheckpoint(key=key)
        state = decode_any(chain[0].data)
        for record in chain[1:]:
            state = apply_delta(state, decode_any(record.data))
            self.deltas_replayed += 1
        self.loads += 1
        return state

    def latest_version(self, key):
        self._check_available()
        yield self._host().execute(self.processing_work)
        self._check_available()
        latest = self.backend.read_latest(key)
        if latest is None:
            raise NoCheckpoint(key=key)
        return latest.version

    def discard(self, key):
        self.backend.discard(key)

    def keys(self):
        return self.backend.keys()

    def bytes_stored(self):
        return self.backend.bytes_stored()
