"""The standard CosNaming context servant.

Implements bind/rebind/resolve/unbind with compound-name traversal: a
multi-component name is forwarded to the sub-context bound under its first
component via a real ORB invocation (sub-contexts may live in other server
processes), exactly like a federated CORBA naming graph."""

from __future__ import annotations

from typing import Optional

from repro.orb.ior import IOR
from repro.services.naming import idl
from repro.services.naming.names import Name, NameComponent


def _key(component: NameComponent) -> tuple[str, str]:
    return (component.id, component.kind)


def _check_name(name) -> Name:
    if not isinstance(name, (list, tuple)) or len(name) == 0:
        raise idl.InvalidName(why="name must be a non-empty component sequence")
    for component in name:
        if not getattr(component, "id", ""):
            raise idl.InvalidName(why="component with empty id")
    return list(name)


class NamingContextServant(idl.NamingContextSkeleton):
    """One naming context: a table of (id, kind) → binding."""

    #: binding entry types
    _OBJECT = idl.BindingType.nobject
    _CONTEXT = idl.BindingType.ncontext

    def __init__(self) -> None:
        self._bindings: dict[tuple[str, str], tuple[idl.BindingType, IOR]] = {}

    # -- helpers ---------------------------------------------------------------

    def _orb(self):
        return self._poa.orb  # type: ignore[union-attr]

    def _lookup(self, component: NameComponent, name: Name):
        entry = self._bindings.get(_key(component))
        if entry is None:
            raise idl.NotFound(why="missing node", rest_of_name=list(name))
        return entry

    def _subcontext_stub(self, component: NameComponent, name: Name):
        binding_type, ior = self._lookup(component, name)
        if binding_type is not self._CONTEXT:
            raise idl.NotFound(
                why="not a context", rest_of_name=list(name)
            )
        return self._orb().stub(ior, idl.NamingContextStub)

    def _store(self, component: NameComponent, binding_type, ior, *, overwrite: bool):
        key = _key(component)
        if not overwrite and key in self._bindings:
            raise idl.AlreadyBound(why=f"{component.id}.{component.kind}")
        self._bindings[key] = (binding_type, ior)

    # -- IDL operations ---------------------------------------------------------

    def bind(self, n, obj):
        name = _check_name(n)
        if len(name) == 1:
            self._store(name[0], self._OBJECT, obj, overwrite=False)
            return
        stub = self._subcontext_stub(name[0], name)
        yield stub.bind(name[1:], obj)

    def rebind(self, n, obj):
        name = _check_name(n)
        if len(name) == 1:
            self._store(name[0], self._OBJECT, obj, overwrite=True)
            return
        stub = self._subcontext_stub(name[0], name)
        yield stub.rebind(name[1:], obj)

    def bind_context(self, n, nc):
        name = _check_name(n)
        if len(name) == 1:
            self._store(name[0], self._CONTEXT, nc, overwrite=False)
            return
        stub = self._subcontext_stub(name[0], name)
        yield stub.bind_context(name[1:], nc)

    def resolve(self, n):
        name = _check_name(n)
        if len(name) == 1:
            return self._lookup(name[0], name)[1]
        stub = self._subcontext_stub(name[0], name)
        result = yield stub.resolve(name[1:])
        return result

    def unbind(self, n):
        name = _check_name(n)
        if len(name) == 1:
            if _key(name[0]) not in self._bindings:
                raise idl.NotFound(why="missing node", rest_of_name=list(name))
            del self._bindings[_key(name[0])]
            return
        stub = self._subcontext_stub(name[0], name)
        yield stub.unbind(name[1:])

    def new_context(self):
        child = type(self)()
        return self._poa.activate(child)  # type: ignore[union-attr]

    def bind_new_context(self, n):
        name = _check_name(n)
        if len(name) == 1:
            child = type(self)()
            ior = self._poa.activate(child)  # type: ignore[union-attr]
            self._store(name[0], self._CONTEXT, ior, overwrite=False)
            return ior
        stub = self._subcontext_stub(name[0], name)
        result = yield stub.bind_new_context(name[1:])
        return result

    def destroy(self):
        if self._bindings:
            raise idl.NotEmpty(why=f"{len(self._bindings)} bindings remain")
        self._poa.deactivate(self)  # type: ignore[union-attr]

    def list_bindings(self, how_many):
        limit = len(self._bindings) if how_many <= 0 else how_many
        bindings = []
        for (id_part, kind_part), (binding_type, _ior) in sorted(
            self._bindings.items()
        ):
            if len(bindings) >= limit:
                break
            bindings.append(
                idl.Binding(
                    binding_name=[NameComponent(id_part, kind_part)],
                    binding_type=binding_type,
                )
            )
        return bindings
