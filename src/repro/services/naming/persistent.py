"""A checkpointable naming context — the runtime's own medicine.

The naming service is the linchpin of both contributions, yet in the paper
it is itself a single unprotected object.  This extension makes the
load-distributing context implement ``FT::Checkpointable`` so the same
proxy/checkpoint/restart machinery (or a standby instance) can protect it:
its state — plain bindings, sub-context references and service groups — is
exactly encodable as CDR ``any`` data.

Note the bootstrap caveat: recovering the naming service through a
recovery coordinator that resolves factories *via the naming service*
is circular; deployments protect the root context with a standby restored
from its checkpoint (see the tests) or a replicated store + well-known
``corbaloc`` address.
"""

from __future__ import annotations

from repro.ft.checkpointable import CheckpointableSkeleton, CheckpointableStub
from repro.orb.ior import IOR
from repro.orb.stubs import register_interface
from repro.services.naming import idl
from repro.services.naming.load_aware import LoadDistributingContextServant

FT_NAMING_REPO_ID = "IDL:repro/FtNamingContext:1.0"

_MERGED_OPERATIONS = {
    **LoadDistributingContextServant.__operations__,
    **CheckpointableSkeleton.__operations__,
}

register_interface(
    FT_NAMING_REPO_ID,
    (
        idl.LoadDistributingNamingContextSkeleton.__repo_id__,
        CheckpointableSkeleton.__repo_id__,
    ),
)


class FtNamingContextServant(LoadDistributingContextServant):
    """Load-distributing naming context with checkpoint/restore."""

    __repo_id__ = FT_NAMING_REPO_ID
    __operations__ = _MERGED_OPERATIONS

    # -- Checkpointable ------------------------------------------------------

    def get_checkpoint(self):
        return {
            "bindings": [
                {
                    "id": id_part,
                    "kind": kind_part,
                    "context": binding_type is idl.BindingType.ncontext,
                    "ior": ior,
                }
                for (id_part, kind_part), (binding_type, ior) in sorted(
                    self._bindings.items()
                )
            ],
            "groups": [
                {"id": id_part, "kind": kind_part, "replicas": list(replicas)}
                for (id_part, kind_part), replicas in sorted(self._groups.items())
            ],
        }

    def restore_from(self, state):
        self._bindings = {}
        self._groups = {}
        for entry in state["bindings"]:
            binding_type = (
                idl.BindingType.ncontext
                if entry["context"]
                else idl.BindingType.nobject
            )
            self._bindings[(entry["id"], entry["kind"])] = (
                binding_type,
                _as_ior(entry["ior"]),
            )
        for entry in state["groups"]:
            self._groups[(entry["id"], entry["kind"])] = [
                _as_ior(replica) for replica in entry["replicas"]
            ]


def _as_ior(value) -> IOR:
    if isinstance(value, IOR):
        return value
    # Defensive: a checkpoint decoded by an older client may carry dicts.
    return IOR(
        type_id=value["type_id"],
        host=value["host"],
        port=int(value["port"]),
        object_key=bytes(value["object_key"]),
        incarnation=int(value["incarnation"]),
    )


class FtNamingContextStub(
    idl.LoadDistributingNamingContextStub, CheckpointableStub
):
    """Typed stub exposing both interface facets."""

    __repo_id__ = FT_NAMING_REPO_ID
    __operations__ = _MERGED_OPERATIONS
