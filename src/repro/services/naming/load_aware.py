"""The load-distributing naming context — the paper's §2 contribution.

A name may hold a *service group*: several references to equivalent service
objects on different hosts, registered with ``bind_service``.  A plain
``resolve`` on such a name transparently returns **one** of them, chosen by
the configured :class:`~repro.services.naming.strategies.SelectionStrategy`
("requests from application objects to the naming service are resolved
using this load information for the selection of an appropriate server").

Because the interface *derives from* ``CosNaming::NamingContext``, client
code is unchanged — the transparency argument the paper makes against the
trader and ORB-locator alternatives.
"""

from __future__ import annotations

import inspect
from typing import Optional

from repro.orb.ior import IOR
from repro.services.naming import idl
from repro.services.naming.context import NamingContextServant, _check_name, _key
from repro.services.naming.strategies import (
    FirstBoundStrategy,
    ResolveCache,
    SelectionStrategy,
)


class LoadDistributingContextServant(
    NamingContextServant, idl.LoadDistributingNamingContextSkeleton
):
    """Naming context where names can hold replica groups.

    :param resolve_cache: optional :class:`ResolveCache` — the resolve
        fast path.  When set, ``resolve`` serves memoized selections
        (without re-scoring or charging scoring work) until the cache
        invalidates; None keeps the paper's always-fresh behaviour.
    :param resolve_scoring_work: CPU work charged per candidate scored on
        a cache miss (0 = scoring is free, the paper's idealization; the
        benches set it so the cache's saving is visible in simulated time).
    """

    __repo_id__ = idl.LoadDistributingNamingContextSkeleton.__repo_id__
    __operations__ = idl.LoadDistributingNamingContextSkeleton.__operations__

    def __init__(
        self,
        strategy: Optional[SelectionStrategy] = None,
        resolve_cache: Optional[ResolveCache] = None,
        resolve_scoring_work: float = 0.0,
    ) -> None:
        super().__init__()
        self.strategy = strategy or FirstBoundStrategy()
        self.resolve_cache = resolve_cache
        self.resolve_scoring_work = resolve_scoring_work
        #: (id, kind) -> ordered replica IORs.
        self._groups: dict[tuple[str, str], list[IOR]] = {}
        self.resolutions = 0

    # -- group registration ------------------------------------------------------

    def bind_service(self, n, obj):
        name = _check_name(n)
        if len(name) > 1:
            raise idl.CannotProceed(
                why="bind_service applies to simple names only"
            )
        key = _key(name[0])
        if key in self._bindings:
            raise idl.AlreadyBound(
                why=f"{name[0].id} is a plain binding, not a group"
            )
        group = self._groups.setdefault(key, [])
        if any(existing == obj for existing in group):
            raise idl.AlreadyBound(why="replica already registered")
        group.append(obj)
        self._invalidate_cache(name[0])

    def unbind_service(self, n, obj):
        name = _check_name(n)
        key = _key(name[0])
        group = self._groups.get(key)
        if not group or obj not in group:
            raise idl.NotFound(why="no such replica", rest_of_name=list(name))
        group.remove(obj)
        if not group:
            del self._groups[key]
        self._invalidate_cache(name[0])

    def _invalidate_cache(self, component) -> None:
        """Replica churn drops the group's memoized selection eagerly
        (the cache's candidate-signature check is the backstop)."""
        if self.resolve_cache is not None:
            self.resolve_cache.invalidate(f"{component.id}.{component.kind}")

    def replica_count(self, n):
        name = _check_name(n)
        group = self._groups.get(_key(name[0]))
        if group is None:
            raise idl.NotFound(why="no such group", rest_of_name=list(name))
        return len(group)

    def resolve_all(self, n):
        name = _check_name(n)
        group = self._groups.get(_key(name[0]))
        if group is None:
            raise idl.NotFound(why="no such group", rest_of_name=list(name))
        # Defensive copy: this is the servant's internal binding list, and
        # co-located callers get the return value by reference — handing
        # it out uncopied would let them mutate naming state.
        return list(group)

    # -- overridden standard operations ----------------------------------------------

    def resolve(self, n):
        name = _check_name(n)
        if len(name) == 1:
            group = self._groups.get(_key(name[0]))
            if group:
                self.resolutions += 1
                group_label = f"{name[0].id}.{name[0].kind}"
                if self._poa is not None:
                    self._poa.orb.sim.obs.metrics.counter(
                        "naming_resolutions_total", group=group_label
                    ).inc()
                candidates = list(group)
                if self.resolve_cache is not None:
                    cached = self.resolve_cache.lookup(group_label, candidates)
                    if cached is not None:
                        return cached
                if self.resolve_scoring_work > 0.0 and self._poa is not None:
                    # Scoring walks every replica's host record; a cache
                    # hit above skips this entirely.
                    yield self._host().execute(
                        self.resolve_scoring_work * len(candidates)
                    )
                outcome = self.strategy.choose(group_label, candidates)
                if inspect.isgenerator(outcome):
                    outcome = yield from outcome
                if self.resolve_cache is not None and isinstance(outcome, IOR):
                    self.resolve_cache.store(group_label, candidates, outcome)
                return outcome
        result = yield from super().resolve(n)
        return result

    def unbind(self, n):
        name = _check_name(n)
        if len(name) == 1 and _key(name[0]) in self._groups:
            del self._groups[_key(name[0])]
            return
        yield from super().unbind(n)

    def bind(self, n, obj):
        name = _check_name(n)
        if len(name) == 1 and _key(name[0]) in self._groups:
            raise idl.AlreadyBound(why=f"{name[0].id} is a service group")
        yield from super().bind(n, obj)

    def rebind(self, n, obj):
        name = _check_name(n)
        if len(name) == 1 and _key(name[0]) in self._groups:
            # A plain rebind must not silently shadow a replica group.
            raise idl.CannotProceed(
                why=f"{name[0].id} is a service group; unbind it first"
            )
        yield from super().rebind(n, obj)

    def list_bindings(self, how_many):
        from repro.services.naming.names import NameComponent

        bindings = list(super().list_bindings(0))
        for (id_part, kind_part) in sorted(self._groups):
            bindings.append(
                idl.Binding(
                    binding_name=[NameComponent(id_part, kind_part)],
                    binding_type=idl.BindingType.nobject,
                )
            )
        bindings.sort(key=lambda b: (b.binding_name[0].id, b.binding_name[0].kind))
        limit = len(bindings) if how_many <= 0 else how_many
        return bindings[:limit]

    def destroy(self):
        if self._groups:
            raise idl.NotEmpty(why=f"{len(self._groups)} groups remain")
        super().destroy()
