"""Sharded naming: spread the resolve load over many context servants.

The paper's naming service is a single context servant — every client's
``resolve`` lands on one host, which at harness scale (10⁵–10⁶ clients)
makes that host the bottleneck long before any worker saturates.  The
standard fix is horizontal partitioning: deploy *K* ordinary context
servants and route each name to exactly one of them by a stable hash of
the name's first component.

Two layers:

* :func:`shard_index` / :class:`ShardedNameRouter` — the client-side
  router.  It holds references to ``K`` naming contexts (servants or ORB
  stubs — anything speaking the context interface) and forwards each
  operation to the shard the name hashes to.  No new IDL and no server
  cooperation: each shard is an unmodified
  :class:`~repro.services.naming.load_aware.LoadDistributingContextServant`,
  so everything the single-context deployment supports (groups, selection
  strategies, the resolve cache) works per shard unchanged.
* :class:`ShardedServiceDirectory` — an ORB-free equivalent used by the
  scale harness, where running a full ORB per client is exactly the
  overhead being avoided.  Same routing function, same per-shard counters,
  so the harness measures the same spread the CORBA deployment would see.

The hash is CRC-32, not Python's ``hash()``: ``hash()`` of a str depends
on ``PYTHONHASHSEED``, which would make shard assignment — and therefore
placement order and every downstream golden — nondeterministic across
runs.
"""

from __future__ import annotations

import zlib
from typing import Any, Optional, Sequence

from repro.errors import ConfigurationError, NamingError
from repro.services.naming.names import NameComponent, NameLike, to_name


def shard_key(name: NameLike) -> str:
    """The routing key: the name's *first* component, in ``id.kind`` form.

    Routing on the first component keeps a compound name and all its
    sub-context traversals on one shard.
    """
    components = to_name(name)
    first = components[0]
    return f"{first.id}.{first.kind}"


def shard_index(name: NameLike, num_shards: int) -> int:
    """Deterministic shard assignment for ``name`` (CRC-32 of the key)."""
    if num_shards < 1:
        raise ConfigurationError(f"need at least one shard, got {num_shards}")
    return zlib.crc32(shard_key(name).encode("utf-8")) % num_shards


class ShardedNameRouter:
    """Client-side fan-out over ``K`` naming contexts.

    :param contexts: the shard contexts in a fixed order (order *is* the
        shard numbering — every client must construct its router with the
        same sequence).
    """

    def __init__(self, contexts: Sequence[Any]) -> None:
        if not contexts:
            raise ConfigurationError("ShardedNameRouter needs at least one shard")
        self.contexts: list[Any] = list(contexts)
        self.resolutions_by_shard: list[int] = [0] * len(self.contexts)
        self.binds_by_shard: list[int] = [0] * len(self.contexts)

    @property
    def num_shards(self) -> int:
        return len(self.contexts)

    def shard_for(self, name: NameLike) -> int:
        return shard_index(name, len(self.contexts))

    def context_for(self, name: NameLike) -> Any:
        return self.contexts[self.shard_for(name)]

    # -- forwarded operations ------------------------------------------------

    def bind(self, name: NameLike, obj: Any) -> None:
        shard = self.shard_for(name)
        self.binds_by_shard[shard] += 1
        self.contexts[shard].bind(to_name(name), obj)

    def rebind(self, name: NameLike, obj: Any) -> None:
        shard = self.shard_for(name)
        self.binds_by_shard[shard] += 1
        self.contexts[shard].rebind(to_name(name), obj)

    def bind_service(self, name: NameLike, obj: Any) -> None:
        shard = self.shard_for(name)
        self.binds_by_shard[shard] += 1
        self.contexts[shard].bind_service(to_name(name), obj)

    def unbind_service(self, name: NameLike, obj: Any) -> None:
        self.context_for(name).unbind_service(to_name(name), obj)

    def resolve(self, name: NameLike) -> Any:
        shard = self.shard_for(name)
        self.resolutions_by_shard[shard] += 1
        return self.contexts[shard].resolve(to_name(name))

    def resolve_all(self, name: NameLike) -> Any:
        shard = self.shard_for(name)
        self.resolutions_by_shard[shard] += 1
        return self.contexts[shard].resolve_all(to_name(name))

    def replica_count(self, name: NameLike) -> int:
        return int(self.context_for(name).replica_count(to_name(name)))

    def unbind(self, name: NameLike) -> None:
        self.context_for(name).unbind(to_name(name))

    # -- reporting ------------------------------------------------------------

    def spread(self) -> dict:
        """How evenly the resolve traffic landed across shards."""
        total = sum(self.resolutions_by_shard)
        peak = max(self.resolutions_by_shard) if total else 0
        return {
            "shards": len(self.contexts),
            "resolutions": total,
            "per_shard": list(self.resolutions_by_shard),
            "peak_share": (peak / total) if total else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ShardedNameRouter shards={len(self.contexts)}>"


class ShardedServiceDirectory:
    """ORB-free sharded name → replica-group directory for the harness.

    Each shard is a plain dict plus a per-name round-robin cursor — the
    deterministic stand-in for a shard's
    :class:`~repro.services.naming.strategies.RoundRobinStrategy` context.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"need at least one shard, got {num_shards}")
        self._shards: list[dict[str, list[Any]]] = [
            {} for _ in range(num_shards)
        ]
        self._cursors: list[dict[str, int]] = [{} for _ in range(num_shards)]
        self.resolutions_by_shard: list[int] = [0] * num_shards

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def _locate(self, service: str) -> tuple[int, str]:
        key = shard_key([NameComponent(service)])
        return zlib.crc32(key.encode("utf-8")) % len(self._shards), key

    def register(self, service: str, replica: Any) -> None:
        shard, key = self._locate(service)
        group = self._shards[shard].setdefault(key, [])
        if replica in group:
            raise NamingError(f"replica already registered under {service!r}")
        group.append(replica)

    def deregister(self, service: str, replica: Any) -> None:
        shard, key = self._locate(service)
        group = self._shards[shard].get(key)
        if not group or replica not in group:
            raise NamingError(f"no such replica under {service!r}")
        group.remove(replica)
        if not group:
            del self._shards[shard][key]

    def resolve(self, service: str) -> Any:
        """Next replica for ``service`` (per-name round robin)."""
        shard, key = self._locate(service)
        group = self._shards[shard].get(key)
        if not group:
            raise NamingError(f"nothing bound under {service!r}")
        self.resolutions_by_shard[shard] += 1
        cursor = self._cursors[shard]
        index = cursor.get(key, 0) % len(group)
        cursor[key] = index + 1
        return group[index]

    def resolve_all(self, service: str) -> list[Any]:
        shard, key = self._locate(service)
        group = self._shards[shard].get(key)
        if not group:
            raise NamingError(f"nothing bound under {service!r}")
        self.resolutions_by_shard[shard] += 1
        return list(group)

    def spread(self) -> dict:
        total = sum(self.resolutions_by_shard)
        peak = max(self.resolutions_by_shard) if total else 0
        return {
            "shards": len(self._shards),
            "resolutions": total,
            "per_shard": list(self.resolutions_by_shard),
            "peak_share": (peak / total) if total else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = sum(len(s) for s in self._shards)
        return (
            f"<ShardedServiceDirectory shards={len(self._shards)} "
            f"names={names}>"
        )
