"""Replica-selection strategies for the load-distributing naming context.

``choose`` may be a plain method returning an IOR, or a generator that
yields simulation futures (e.g. a CORBA call to the Winner system manager)
and returns an IOR — the servant runs either transparently.

* :class:`FirstBoundStrategy` — always the first registered replica; the
  degenerate "static assignment" baseline.
* :class:`RoundRobinStrategy` — cycles through replicas per name; this is
  the load-*oblivious* behaviour we use as the paper's "unmodified naming
  service" baseline (fair spreading, but blind to background load).
* :class:`RandomStrategy` — uniform random choice (seeded, reproducible).
* :class:`WinnerStrategy` — the paper's contribution: ask the Winner
  system manager for the best host among the replicas' hosts, note the
  placement, return a replica on that host.
* :class:`BreakerAwareStrategy` — decorator around any of the above that
  drops replicas on hosts whose circuit breaker is open, so re-resolution
  after a failure avoids recently failed hosts.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import ServiceError
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.winner.service import SystemManagerStub
    from repro.winner.system_manager import SystemManager


class SelectionStrategy:
    """Base class; subclasses override :meth:`choose`."""

    name = "abstract"

    def choose(self, group_name: str, candidates: Sequence[IOR]):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class FirstBoundStrategy(SelectionStrategy):
    name = "first-bound"

    def choose(self, group_name: str, candidates: Sequence[IOR]) -> IOR:
        return candidates[0]


class RoundRobinStrategy(SelectionStrategy):
    name = "round-robin"

    def __init__(self) -> None:
        self._cursors: dict[str, int] = {}

    def choose(self, group_name: str, candidates: Sequence[IOR]) -> IOR:
        cursor = self._cursors.get(group_name, 0)
        self._cursors[group_name] = cursor + 1
        return candidates[cursor % len(candidates)]


class RandomStrategy(SelectionStrategy):
    name = "random"

    def __init__(self, rng: "np.random.Generator") -> None:
        self._rng = rng

    def choose(self, group_name: str, candidates: Sequence[IOR]) -> IOR:
        return candidates[int(self._rng.integers(len(candidates)))]


class BreakerAwareStrategy(SelectionStrategy):
    """Filter replica candidates through per-host circuit breakers.

    Wraps an inner strategy: candidates whose host breaker is open (and
    still inside its reset timeout) are removed before delegation, so a
    recently failed host stops being offered until it earns a probe.  If
    *every* candidate is filtered the full list passes through unchanged —
    a blacklist must degrade to normal selection, never to an outage.
    The check is non-mutating (no half-open probe slots are consumed at
    selection time; the caller's actual request is the probe).
    """

    name = "breaker-aware"

    def __init__(self, inner: SelectionStrategy, breakers) -> None:
        self._inner = inner
        self.breakers = breakers
        self.filtered = 0

    def choose(self, group_name: str, candidates: Sequence[IOR]):
        allowed = [c for c in candidates if self.breakers.available(c.host)]
        if not allowed:
            allowed = list(candidates)
        self.filtered += len(candidates) - len(allowed)
        # The inner strategy may return a plain IOR or a generator; the
        # naming servant runs either, so pass the outcome through as-is.
        return self._inner.choose(group_name, allowed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BreakerAwareStrategy over {self._inner!r}>"


class WinnerStrategy(SelectionStrategy):
    """Selection backed by the Winner system manager (Fig. 1).

    :param system_manager: either a local
        :class:`~repro.winner.system_manager.SystemManager` (naming service
        co-located with Winner, the deployment the paper describes) or a
        ``SystemManagerStub`` (remote system manager, queried via CORBA).
    """

    name = "winner"

    def __init__(self, system_manager) -> None:
        self._manager = system_manager
        self.queries = 0
        self.fallbacks = 0

    def choose(self, group_name: str, candidates: Sequence[IOR]):
        hosts = sorted({ior.host for ior in candidates})
        self.queries += 1
        if hasattr(self._manager, "best_host") and not hasattr(
            self._manager, "_invoke"
        ):
            best = self._manager.best_host(candidates=hosts)
            chosen = self._pick(candidates, best)
            if best and chosen is not None:
                self._manager.note_placement(best)
                return chosen
            self.fallbacks += 1
            return candidates[0]
        return self._choose_remote(candidates, hosts)

    def _choose_remote(self, candidates: Sequence[IOR], hosts: list[str]):
        best = yield self._manager.best_host(hosts, [])
        chosen = self._pick(candidates, best)
        if best and chosen is not None:
            yield self._manager.note_placement(best)
            return chosen
        self.fallbacks += 1
        return candidates[0]

    @staticmethod
    def _pick(candidates: Sequence[IOR], best: Optional[str]) -> Optional[IOR]:
        if not best:
            return None
        for ior in candidates:
            if ior.host == best:
                return ior
        return None
