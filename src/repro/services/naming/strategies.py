"""Replica-selection strategies for the load-distributing naming context.

``choose`` may be a plain method returning an IOR, or a generator that
yields simulation futures (e.g. a CORBA call to the Winner system manager)
and returns an IOR — the servant runs either transparently.

* :class:`FirstBoundStrategy` — always the first registered replica; the
  degenerate "static assignment" baseline.
* :class:`RoundRobinStrategy` — cycles through replicas per name; this is
  the load-*oblivious* behaviour we use as the paper's "unmodified naming
  service" baseline (fair spreading, but blind to background load).
* :class:`RandomStrategy` — uniform random choice (seeded, reproducible).
* :class:`WinnerStrategy` — the paper's contribution: ask the Winner
  system manager for the best host among the replicas' hosts, note the
  placement, return a replica on that host.
* :class:`BreakerAwareStrategy` — decorator around any of the above that
  drops replicas on hosts whose circuit breaker is open, so re-resolution
  after a failure avoids recently failed hosts.
* :class:`ResolveCache` — the resolve fast path's load-epoch cache: the
  naming servant memoizes a selection (plus the ranked top-k around it)
  and serves hits without re-scoring until the Winner ranking epoch
  advances, the TTL expires, a breaker trips, or the replica set churns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import ServiceError
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.sim import Simulator
    from repro.winner.service import SystemManagerStub
    from repro.winner.system_manager import SystemManager


class SelectionStrategy:
    """Base class; subclasses override :meth:`choose`."""

    name = "abstract"

    def choose(self, group_name: str, candidates: Sequence[IOR]):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


class FirstBoundStrategy(SelectionStrategy):
    name = "first-bound"

    def choose(self, group_name: str, candidates: Sequence[IOR]) -> IOR:
        return candidates[0]


class RoundRobinStrategy(SelectionStrategy):
    name = "round-robin"

    def __init__(self) -> None:
        self._cursors: dict[str, int] = {}

    def choose(self, group_name: str, candidates: Sequence[IOR]) -> IOR:
        cursor = self._cursors.get(group_name, 0)
        self._cursors[group_name] = cursor + 1
        return candidates[cursor % len(candidates)]


class RandomStrategy(SelectionStrategy):
    name = "random"

    def __init__(self, rng: "np.random.Generator") -> None:
        self._rng = rng

    def choose(self, group_name: str, candidates: Sequence[IOR]) -> IOR:
        return candidates[int(self._rng.integers(len(candidates)))]


class BreakerAwareStrategy(SelectionStrategy):
    """Filter replica candidates through per-host circuit breakers.

    Wraps an inner strategy: candidates whose host breaker is open (and
    still inside its reset timeout) are removed before delegation, so a
    recently failed host stops being offered until it earns a probe.  If
    *every* candidate is filtered the full list passes through unchanged —
    a blacklist must degrade to normal selection, never to an outage.
    The check is non-mutating (no half-open probe slots are consumed at
    selection time; the caller's actual request is the probe).
    """

    name = "breaker-aware"

    def __init__(self, inner: SelectionStrategy, breakers) -> None:
        self._inner = inner
        self.breakers = breakers
        self.filtered = 0

    def choose(self, group_name: str, candidates: Sequence[IOR]):
        allowed = [c for c in candidates if self.breakers.available(c.host)]
        if not allowed:
            allowed = list(candidates)
        self.filtered += len(candidates) - len(allowed)
        # The inner strategy may return a plain IOR or a generator; the
        # naming servant runs either, so pass the outcome through as-is.
        return self._inner.choose(group_name, allowed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BreakerAwareStrategy over {self._inner!r}>"


class WinnerStrategy(SelectionStrategy):
    """Selection backed by the Winner system manager (Fig. 1).

    :param system_manager: either a local
        :class:`~repro.winner.system_manager.SystemManager` (naming service
        co-located with Winner, the deployment the paper describes) or a
        ``SystemManagerStub`` (remote system manager, queried via CORBA).
    """

    name = "winner"

    def __init__(self, system_manager) -> None:
        self._manager = system_manager
        self.queries = 0
        self.fallbacks = 0

    def choose(self, group_name: str, candidates: Sequence[IOR]):
        hosts = sorted({ior.host for ior in candidates})
        self.queries += 1
        if hasattr(self._manager, "best_host") and not hasattr(
            self._manager, "_invoke"
        ):
            best = self._manager.best_host(candidates=hosts)
            chosen = self._pick(candidates, best)
            if best and chosen is not None:
                self._manager.note_placement(best)
                return chosen
            self.fallbacks += 1
            return candidates[0]
        return self._choose_remote(candidates, hosts)

    def _choose_remote(self, candidates: Sequence[IOR], hosts: list[str]):
        best = yield self._manager.best_host(hosts, [])
        chosen = self._pick(candidates, best)
        if best and chosen is not None:
            yield self._manager.note_placement(best)
            return chosen
        self.fallbacks += 1
        return candidates[0]

    @staticmethod
    def _pick(candidates: Sequence[IOR], best: Optional[str]) -> Optional[IOR]:
        if not best:
            return None
        for ior in candidates:
            if ior.host == best:
                return ior
        return None


# -- the resolve fast path ------------------------------------------------------


@dataclass
class ResolveCacheStats:
    """Counters of one :class:`ResolveCache` (surfaced in runtime_report)."""

    hits: int = 0
    misses: int = 0
    epoch_invalidations: int = 0
    ttl_invalidations: int = 0
    breaker_invalidations: int = 0
    churn_invalidations: int = 0
    #: cache hits that returned a selection on a host the manager already
    #: considered dead.  The serve path re-checks liveness and breakers
    #: before every hit, so this stays 0 by construction — the chaos
    #: campaign's no-stale-resolve invariant asserts exactly that.
    stale_served: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class _CacheEntry:
    __slots__ = ("iors", "epoch", "expires_at", "cursor", "signature")

    def __init__(self, iors, epoch, expires_at, cursor, signature) -> None:
        self.iors = iors
        self.epoch = epoch
        self.expires_at = expires_at
        self.cursor = cursor
        self.signature = signature


class ResolveCache:
    """Memoized replica selection keyed on the Winner ranking epoch.

    A stored entry holds the ranked top-k replicas of one group; hits
    round-robin within them (per-name cursor), preserving the placement
    spread a fresh scoring pass would give.  An entry is only served while
    *all* of the following hold — the invalidation matrix:

    ==================  =========================================================
    epoch advance       a node-manager report changed some host's ranking score
    TTL expiry          covers drift the epoch cannot see (a host going silent
                        does not bump the epoch; it stops bumping it)
    breaker state       the chosen host's circuit breaker must admit traffic
                        *at serve time* (re-checked per hit, never cached)
    replica churn       ``bind_service``/``unbind_service`` changed the
                        candidate set since the entry was stored
    liveness            the chosen host must still be alive per the manager
                        (re-checked per hit, so no stale selection is served)
    ==================  =========================================================

    ``manager`` must be a *local* :class:`~repro.winner.system_manager.
    SystemManager` (or None for load-oblivious strategies: the whole
    breaker-filtered candidate list is cached and round-robined).
    """

    def __init__(
        self,
        sim: "Simulator",
        manager: Optional["SystemManager"] = None,
        breakers=None,
        ttl: float = 1.0,
        top_k: int = 3,
    ) -> None:
        self._sim = sim
        self._manager = manager
        self._breakers = breakers
        self.ttl = ttl
        self.top_k = max(1, top_k)
        self._entries: dict[str, _CacheEntry] = {}
        self.stats = ResolveCacheStats()

    def _epoch(self) -> int:
        return self._manager.ranking_epoch if self._manager is not None else 0

    def _usable(self, ior: IOR) -> bool:
        """Serve-time admission: breaker closed and host alive right now."""
        if self._breakers is not None and not self._breakers.available(ior.host):
            return False
        if self._manager is not None and not self._manager.is_alive(ior.host):
            return False
        return True

    def _count(self, counter: str) -> None:
        self._sim.obs.metrics.counter(
            f"naming_resolve_cache_{counter}_total"
        ).inc()

    def _miss(self, group_name: str, reason: Optional[str]) -> None:
        self._entries.pop(group_name, None)
        self.stats.misses += 1
        self._count("misses")
        if reason is not None:
            setattr(
                self.stats,
                f"{reason}_invalidations",
                getattr(self.stats, f"{reason}_invalidations") + 1,
            )
            self._sim.obs.metrics.counter(
                "naming_resolve_cache_invalidations_total", reason=reason
            ).inc()

    # analysis: atomic: stale_served=0 holds only if validity checks and the serve are one step
    def lookup(self, group_name: str, candidates: Sequence[IOR]) -> Optional[IOR]:
        """A memoized selection, or None (= miss; caller scores afresh)."""
        entry = self._entries.get(group_name)
        if entry is None:
            self.stats.misses += 1
            self._count("misses")
            return None
        if entry.epoch != self._epoch():
            self._miss(group_name, "epoch")
            return None
        if self._sim.now >= entry.expires_at:
            self._miss(group_name, "ttl")
            return None
        if entry.signature != frozenset(candidates):
            self._miss(group_name, "churn")
            return None
        for _ in range(len(entry.iors)):
            ior = entry.iors[entry.cursor % len(entry.iors)]
            entry.cursor += 1
            if not self._usable(ior):
                continue
            self.stats.hits += 1
            self._count("hits")
            if self._manager is not None:
                # Placement feedback must not stop when scoring does:
                # the scheduler still charges the hit against the host.
                self._manager.note_placement(ior.host)
            return ior
        # Every cached replica is breaker-rejected or dead: invalidate.
        self._miss(group_name, "breaker")
        return None

    # analysis: atomic: the entry must carry the epoch the ranking was computed under
    def store(
        self, group_name: str, candidates: Sequence[IOR], chosen: IOR
    ) -> None:
        """Cache a fresh selection plus the ranked top-k around it."""
        iors = self._ranked_iors(candidates, chosen)
        if chosen not in iors:
            iors.insert(0, chosen)
        cursor = iors.index(chosen) + 1  # the next hit spreads onward
        self._entries[group_name] = _CacheEntry(
            iors=iors,
            epoch=self._epoch(),
            expires_at=self._sim.now + self.ttl,
            cursor=cursor,
            signature=frozenset(candidates),
        )

    def _ranked_iors(self, candidates: Sequence[IOR], chosen: IOR) -> list[IOR]:
        usable = [ior for ior in candidates if self._usable(ior)]
        if not usable:
            return [chosen]
        if self._manager is None:
            return usable
        hosts = sorted({ior.host for ior in usable})
        ranked_hosts = self._manager.top_hosts(candidates=hosts, k=self.top_k)
        return [
            ior
            for host in ranked_hosts
            for ior in usable
            if ior.host == host
        ]

    def invalidate(self, group_name: Optional[str] = None) -> None:
        """Drop one group's entry (or all of them)."""
        if group_name is None:
            self._entries.clear()
        else:
            self._entries.pop(group_name, None)

    def snapshot(self) -> dict:
        return {
            "enabled": True,
            "entries": len(self._entries),
            "ttl": self.ttl,
            "top_k": self.top_k,
            **self.stats.to_dict(),
        }
