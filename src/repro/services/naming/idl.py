"""The naming-service IDL: CosNaming subset plus the paper's extension.

The ``LoadDistributingNamingContext`` interface *derives from* the standard
``NamingContext``, which is the whole deployment story of §2: "every ORB
can interoperate with a new naming service as long as it complies to the
OMG specification" — clients keep calling plain ``resolve`` and get load
distribution transparently; only the deployer uses ``bind_service`` to
register service replicas."""

from __future__ import annotations

from repro.orb.idl import compile_idl

NAMING_IDL = """
module CosNaming {
    struct NameComponent {
        string id;
        string kind;
    };
    typedef sequence<NameComponent> Name;

    enum BindingType { nobject, ncontext };
    struct Binding {
        Name binding_name;
        BindingType binding_type;
    };
    typedef sequence<Binding> BindingList;

    exception NotFound {
        string why;
        Name rest_of_name;
    };
    exception CannotProceed { string why; };
    exception InvalidName { string why; };
    exception AlreadyBound { string why; };
    exception NotEmpty { string why; };

    interface NamingContext {
        void bind(in Name n, in Object obj)
            raises (NotFound, CannotProceed, InvalidName, AlreadyBound);
        void rebind(in Name n, in Object obj)
            raises (NotFound, CannotProceed, InvalidName);
        void bind_context(in Name n, in NamingContext nc)
            raises (NotFound, CannotProceed, InvalidName, AlreadyBound);
        Object resolve(in Name n)
            raises (NotFound, CannotProceed, InvalidName);
        void unbind(in Name n)
            raises (NotFound, CannotProceed, InvalidName);
        NamingContext new_context();
        NamingContext bind_new_context(in Name n)
            raises (NotFound, CannotProceed, InvalidName, AlreadyBound);
        void destroy() raises (NotEmpty);
        BindingList list_bindings(in long how_many);
    };

    // --- the paper's extension -------------------------------------------
    interface LoadDistributingNamingContext : NamingContext {
        // Register an additional replica of a (group) service under a name.
        void bind_service(in Name n, in Object obj)
            raises (NotFound, CannotProceed, InvalidName, AlreadyBound);
        // Remove one replica (e.g. after its host died).
        void unbind_service(in Name n, in Object obj)
            raises (NotFound, CannotProceed, InvalidName);
        // Number of replicas currently registered under a name.
        long replica_count(in Name n)
            raises (NotFound, CannotProceed, InvalidName);
        // All replica references of a group (for decentralized selection).
        sequence<Object> resolve_all(in Name n)
            raises (NotFound, CannotProceed, InvalidName);
    };
};
"""

ns = compile_idl(NAMING_IDL, name="cosnaming")

# Decode wire NameComponents as the canonical Python class from names.py so
# clients and servants see a single NameComponent type.
from repro.orb.cdr import register_struct_class as _register_struct_class
from repro.services.naming.names import NameComponent as _NameComponent

_register_struct_class("CosNaming::NameComponent", _NameComponent)
ns.NameComponent = _NameComponent

NameComponentIdl = ns.NameComponent
BindingType = ns.BindingType
Binding = ns.Binding
NotFound = ns.NotFound
CannotProceed = ns.CannotProceed
InvalidName = ns.InvalidName
AlreadyBound = ns.AlreadyBound
NotEmpty = ns.NotEmpty
NamingContextStub = ns.NamingContextStub
NamingContextSkeleton = ns.NamingContextSkeleton
LoadDistributingNamingContextStub = ns.LoadDistributingNamingContextStub
LoadDistributingNamingContextSkeleton = ns.LoadDistributingNamingContextSkeleton
