"""Names and name components (CosNaming's ``Name`` type).

A name is a sequence of ``(id, kind)`` components.  The string form follows
the CORBA Interoperable Naming Service convention: components separated by
``/``, id and kind separated by ``.`` (no escape sequences — ids and kinds
here may not contain ``/`` or ``.``)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from repro.errors import NamingError


class NameComponent:
    """One ``(id, kind)`` pair. Equality and hashing by value."""

    __slots__ = ("id", "kind")

    def __init__(self, id: str = "", kind: str = "") -> None:
        self.id = id
        self.kind = kind

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NameComponent)
            and self.id == other.id
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.id, self.kind))

    def __repr__(self) -> str:
        return f"NameComponent({self.id!r}, {self.kind!r})"


Name = List[NameComponent]
NameLike = Union[str, Sequence[NameComponent]]


def to_name(value: NameLike) -> Name:
    """Coerce a string or component sequence to a Name."""
    if isinstance(value, str):
        return name_from_string(value)
    name = list(value)
    if not name or not all(isinstance(c, NameComponent) for c in name):
        raise NamingError(f"invalid name {value!r}")
    return name


def name_from_string(text: str) -> Name:
    """Parse ``"a/b.kind/c"`` into components."""
    if not text:
        raise NamingError("empty name string")
    components: Name = []
    for chunk in text.split("/"):
        if not chunk:
            raise NamingError(f"empty component in name {text!r}")
        if "." in chunk:
            id_part, _, kind_part = chunk.partition(".")
        else:
            id_part, kind_part = chunk, ""
        if not id_part:
            raise NamingError(f"component with empty id in {text!r}")
        components.append(NameComponent(id_part, kind_part))
    return components


def name_to_string(name: Sequence[NameComponent]) -> str:
    if not name:
        raise NamingError("empty name")
    parts = []
    for component in name:
        if "/" in component.id or "." in component.id or "/" in component.kind:
            raise NamingError(
                f"component {component!r} is not representable as a string"
            )
        parts.append(
            f"{component.id}.{component.kind}" if component.kind else component.id
        )
    return "/".join(parts)
