"""The CORBA naming service with integrated load distribution.

"To integrate load distribution transparently into a CORBA environment,
our proposal is based on integrating it into the naming service.  This
ensures transparency for the client side and allows the reuse of the load
distribution naming service in any other CORBA compliant ORB
implementation." (§2)

* :mod:`repro.services.naming.names` — names, components, string form;
* :mod:`repro.services.naming.idl` — the CosNaming IDL (subset) plus the
  paper's ``LoadDistributingNamingContext`` extension, compiled at import;
* :mod:`repro.services.naming.context` — the standard naming context
  servant (compound names, sub-contexts, listing);
* :mod:`repro.services.naming.load_aware` — the load-distributing context:
  a name may hold a *service group* of replica references and ``resolve``
  transparently picks one with a pluggable strategy;
* :mod:`repro.services.naming.strategies` — first-bound, round-robin,
  random and Winner-backed selection strategies.
"""

from repro.services.naming.names import (
    Name,
    NameComponent,
    name_from_string,
    name_to_string,
)
from repro.services.naming import idl
from repro.services.naming.context import NamingContextServant
from repro.services.naming.load_aware import LoadDistributingContextServant
from repro.services.naming.strategies import (
    BreakerAwareStrategy,
    FirstBoundStrategy,
    RandomStrategy,
    ResolveCache,
    ResolveCacheStats,
    RoundRobinStrategy,
    SelectionStrategy,
    WinnerStrategy,
)
from repro.services.naming.persistent import (
    FtNamingContextServant,
    FtNamingContextStub,
)
from repro.services.naming.sharded import (
    ShardedNameRouter,
    ShardedServiceDirectory,
    shard_index,
    shard_key,
)

__all__ = [
    "BreakerAwareStrategy",
    "FirstBoundStrategy",
    "FtNamingContextServant",
    "FtNamingContextStub",
    "LoadDistributingContextServant",
    "Name",
    "NameComponent",
    "NamingContextServant",
    "RandomStrategy",
    "ResolveCache",
    "ResolveCacheStats",
    "RoundRobinStrategy",
    "SelectionStrategy",
    "ShardedNameRouter",
    "ShardedServiceDirectory",
    "WinnerStrategy",
    "idl",
    "name_from_string",
    "name_to_string",
    "shard_index",
    "shard_key",
]
