"""CORBA object services.

* :mod:`repro.services.naming` — the CosNaming subset plus the paper's
  load-distributing naming context (the primary contribution);
* :mod:`repro.services.trader` — the explicit trader-service baseline the
  paper's §2 weighs the naming integration against;
* :mod:`repro.services.checkpoint` — the checkpoint storage service backing
  the fault-tolerance proxies of §3.
"""
