"""The explicit trader-service baseline.

§2 lists design alternatives to the naming-service integration, the first
being "implementation of an explicit service (e.g. a 'trader') which
returns an object reference for the requested service on an available host
(centralized load distribution strategy) or references for all available
service objects.  In the latter case, the client has to evaluate the load
information for all of the returned references and has to make a selection
by itself (decentralized load distribution strategy)."

Both flavours are implemented so the ablation bench can quantify the
paper's argument: the trader achieves the same placement quality, but the
client *source code must change* (it calls ``lookup_one``/``lookup_all``
instead of ``resolve``), which is exactly the drawback the paper's naming
integration avoids.
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.orb.idl import compile_idl
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.winner.system_manager import SystemManager

TRADER_IDL = """
module Trading {
    exception NoOffers { string service_type; };
    exception UnknownServiceType { string service_type; };

    struct Offer {
        Object reference;
        string host;
        double score;
    };
    typedef sequence<Offer> OfferSeq;

    interface Trader {
        void export_offer(in string service_type, in Object reference);
        void withdraw(in string service_type, in Object reference)
            raises (UnknownServiceType);
        // Centralized strategy: the trader consults Winner and picks.
        Object lookup_one(in string service_type) raises (NoOffers);
        // Decentralized strategy: all offers plus load scores; the client
        // evaluates and selects.
        OfferSeq lookup_all(in string service_type) raises (NoOffers);
    };
};
"""

ns = compile_idl(TRADER_IDL, name="trading")

NoOffers = ns.NoOffers
UnknownServiceType = ns.UnknownServiceType
Offer = ns.Offer
TraderStub = ns.TraderStub
TraderSkeleton = ns.TraderSkeleton


class TraderServant(TraderSkeleton):
    """Service-type → offers registry with Winner-backed selection."""

    def __init__(self, system_manager: "SystemManager") -> None:
        self._manager = system_manager
        self._offers: dict[str, list[IOR]] = {}

    def export_offer(self, service_type, reference):
        offers = self._offers.setdefault(service_type, [])
        if reference not in offers:
            offers.append(reference)

    def withdraw(self, service_type, reference):
        offers = self._offers.get(service_type)
        if not offers or reference not in offers:
            raise UnknownServiceType(service_type=service_type)
        offers.remove(reference)

    def lookup_one(self, service_type):
        offers = self._offers.get(service_type)
        if not offers:
            raise NoOffers(service_type=service_type)
        hosts = sorted({ior.host for ior in offers})
        best = self._manager.best_host(candidates=hosts)
        if best is None:
            return offers[0]
        self._manager.note_placement(best)
        for ior in offers:
            if ior.host == best:
                return ior
        return offers[0]

    def lookup_all(self, service_type):
        offers = self._offers.get(service_type)
        if not offers:
            raise NoOffers(service_type=service_type)
        return [
            Offer(
                reference=ior,
                host=ior.host,
                score=self._manager.score(ior.host),
            )
            for ior in offers
        ]


def select_least_loaded(offers: Sequence) -> IOR:
    """Client-side decentralized selection: highest Winner score wins.

    This is the code every client would need to carry under the
    decentralized trader design — the paper's argument for transparency.
    """
    best = max(offers, key=lambda offer: (offer.score, offer.host))
    return best.reference
