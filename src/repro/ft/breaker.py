"""Per-host circuit breakers for the recovery path.

A dead or flapping host keeps attracting recovery traffic: the naming
service re-offers its factory the moment the host re-binds, and every
attempt against it burns a full COMM_FAILURE round trip plus backoff.
The classic closed/open/half-open breaker bounds that wasted work (Dwork
et al.'s "performing work efficiently in the presence of faults" concern,
applied to the control plane):

* **closed** — traffic flows; consecutive failures are counted.
* **open** — after ``failure_threshold`` consecutive failures the host is
  blacklisted; requests are rejected locally without touching the wire.
* **half-open** — ``reset_timeout`` seconds later up to ``half_open_max``
  probe requests may pass; one success closes the breaker, one failure
  re-opens it (and restarts the timeout).

Breakers are shared through a :class:`HostBreakerRegistry`: the recovery
coordinator records outcomes and consults it before using a factory, and
the load-aware naming resolver (via
:class:`~repro.services.naming.strategies.BreakerAwareStrategy`) filters
recently failed hosts out of replica selection.  All timing uses the
simulated clock, so breaker behaviour is deterministic per seed.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: numeric encoding for the ``ft_breaker_state`` gauge.
STATE_CODES = {CLOSED: 0.0, HALF_OPEN: 1.0, OPEN: 2.0}


class CircuitBreaker:
    """One host's breaker (see module docstring for the state machine)."""

    def __init__(
        self,
        sim: "Simulator",
        host: str,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        half_open_max: int = 1,
    ) -> None:
        self.sim = sim
        self.host = host
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        # counters for invariant checks and the chaos report
        self.opens = 0
        self.closes = 0
        self.rejections = 0
        self.probes = 0

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, applying the open → half-open timeout lazily."""
        if (
            self._state == OPEN
            and self.sim.now - self._opened_at >= self.reset_timeout
        ):
            self._transition(HALF_OPEN)
        return self._state

    @property
    def available(self) -> bool:
        """Non-mutating view used by replica *selection*: True unless the
        breaker is open and still inside its reset timeout.  Does not
        consume a half-open probe slot."""
        return self.state != OPEN

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        if state == HALF_OPEN:
            self._probes_inflight = 0
        self.sim.trace.emit("breaker", "transition", host=self.host, to=state)
        metrics = self.sim.obs.metrics
        metrics.counter(
            "ft_breaker_transitions_total", host=self.host, to=state
        ).inc()
        metrics.gauge("ft_breaker_state", host=self.host).set(
            STATE_CODES[state]
        )

    # -- traffic decisions -----------------------------------------------------

    # analysis: atomic: state read + probe-slot consumption must be one indivisible decision
    def allow(self) -> bool:
        """May a request be sent to this host right now?

        In half-open state a True answer consumes one of the
        ``half_open_max`` probe slots; report the outcome through
        :meth:`record_success`/:meth:`record_failure`.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN:
            if self._probes_inflight < self.half_open_max:
                self._probes_inflight += 1
                self.probes += 1
                return True
            self.rejections += 1
            self._count_rejection()
            return False
        self.rejections += 1
        self._count_rejection()
        return False

    def _count_rejection(self) -> None:
        self.sim.obs.metrics.counter(
            "ft_breaker_rejections_total", host=self.host
        ).inc()

    # -- outcome reports --------------------------------------------------------

    # analysis: atomic: breaker transitions may not interleave with other outcome reports
    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state != CLOSED:
            self.closes += 1
            self._transition(CLOSED)

    # analysis: atomic: breaker transitions may not interleave with other outcome reports
    def record_failure(self) -> None:
        state = self.state
        if state == HALF_OPEN:
            # The probe failed: straight back to open, timer restarted.
            self._open()
            return
        self._consecutive_failures += 1
        if state == CLOSED and self._consecutive_failures >= self.failure_threshold:
            self._open()

    def _open(self) -> None:
        self._opened_at = self.sim.now
        self._consecutive_failures = 0
        self.opens += 1
        self._transition(OPEN)

    def reset(self) -> None:
        """Force-close (operator action / tests)."""
        self._consecutive_failures = 0
        self._transition(CLOSED)

    def snapshot(self) -> dict:
        return {
            "host": self.host,
            "state": self.state,
            "opens": self.opens,
            "closes": self.closes,
            "rejections": self.rejections,
            "probes": self.probes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CircuitBreaker {self.host} {self.state}>"


class HostBreakerRegistry:
    """Shared per-host breakers, created lazily on first use."""

    def __init__(
        self,
        sim: "Simulator",
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        half_open_max: int = 1,
    ) -> None:
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self._breakers: dict[str, CircuitBreaker] = {}

    def breaker(self, host: str) -> CircuitBreaker:
        breaker = self._breakers.get(host)
        if breaker is None:
            breaker = CircuitBreaker(
                self.sim,
                host,
                failure_threshold=self.failure_threshold,
                reset_timeout=self.reset_timeout,
                half_open_max=self.half_open_max,
            )
            self._breakers[host] = breaker
        return breaker

    def allow(self, host: str) -> bool:
        return self.breaker(host).allow()

    def available(self, host: str) -> bool:
        breaker = self._breakers.get(host)
        return breaker.available if breaker is not None else True

    def record_success(self, host: str) -> None:
        self.breaker(host).record_success()

    def record_failure(self, host: str) -> None:
        self.breaker(host).record_failure()

    def filter_available(self, hosts: Sequence[str]) -> list[str]:
        """Hosts whose breakers admit traffic.  Falls back to the full
        list when *every* breaker is open — failing the whole selection
        closed would turn a blacklist into an outage."""
        allowed = [h for h in hosts if self.available(h)]
        return allowed if allowed else list(hosts)

    def snapshot(self) -> list[dict]:
        return [b.snapshot() for _, b in sorted(self._breakers.items())]

    def __iter__(self) -> Iterable[CircuitBreaker]:
        return iter(self._breakers.values())
