"""The ``Checkpointable`` interface.

"...assuming that the service object provides a method to create a
checkpoint for restarting the service if an error occurs" (§3).  Service
interfaces that want fault tolerance derive from ``FT::Checkpointable``;
their servants implement ``get_checkpoint``/``restore_from`` by encoding
whatever internal state a restarted instance needs.
"""

from __future__ import annotations

from repro.orb.idl import compile_idl

CHECKPOINTABLE_IDL = """
module FT {
    interface Checkpointable {
        // A self-contained snapshot of the object's internal state.
        any get_checkpoint();
        // Replace the object's state with a previously taken snapshot.
        void restore_from(in any state);
    };
};
"""

ns = compile_idl(CHECKPOINTABLE_IDL, name="ft-checkpointable")

CheckpointableStub = ns.CheckpointableStub
CheckpointableSkeleton = ns.CheckpointableSkeleton

#: operations a fault-tolerance proxy must never wrap (they are the
#: recovery machinery itself).
CHECKPOINT_OPERATIONS = frozenset({"get_checkpoint", "restore_from"})
