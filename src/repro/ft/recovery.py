"""The recovery coordinator: restart a failed service from its checkpoint.

"Using the concepts for the naming service already described, it is
possible to request a new reference to a service if a call to a server
object fails. ... it is inevitable to (a) save the state (checkpoint) of
the server object ... and (b) have the opportunity to restore this state
in a newly created server object." (§3)

The recovery path, end to end:

1. resolve the **factory service group** through the load-distributing
   naming service — Winner picks the best surviving host;
2. ask that host's factory to ``create`` a fresh servant of the service's
   type (retrying elsewhere if the chosen factory is itself dead);
3. load the latest checkpoint from the checkpoint store and
   ``restore_from`` it on the new object;
4. rebind the caller's proxy to the new reference and (optionally) swap
   the dead replica for the new one in the service's own naming group.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import (
    COMM_FAILURE,
    OBJECT_NOT_EXIST,
    RecoveryError,
    SystemException,
    TIMEOUT,
    TRANSIENT,
)
from repro.ft.breaker import HostBreakerRegistry
from repro.ft.factory import ObjectFactoryStub, UnknownType
from repro.ft.policy import FtPolicy
from repro.orb.stubs import ObjectStub
from repro.services.checkpoint import NoCheckpoint
from repro.services.naming import idl as naming_idl
from repro.services.naming.names import to_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb

#: exceptions that mean "the target is gone (or unreachable); recovery may
#: help".  TIMEOUT joins the list for gray failures: a partitioned or
#: wedged host never answers, so with an ORB request timeout configured the
#: stalled call surfaces here instead of hanging the proxy forever.
RECOVERABLE = (COMM_FAILURE, OBJECT_NOT_EXIST, TRANSIENT, TIMEOUT)

#: the subset of RECOVERABLE that clearly blames the *target host* (a
#: TRANSIENT may come from a backend service, e.g. the checkpoint store
#: during an outage, and must not trip the target host's breaker).
HOST_BLAMING = (COMM_FAILURE, OBJECT_NOT_EXIST, TIMEOUT)


class RecoveryCoordinator:
    """Client-side orchestration of checkpoint/restart recovery."""

    def __init__(
        self,
        orb: "Orb",
        naming,  # LoadDistributingNamingContextStub
        store,  # CheckpointStoreStub
        factory_group: str = "factories.service",
        policy: Optional[FtPolicy] = None,
        breakers: Optional[HostBreakerRegistry] = None,
    ) -> None:
        self.orb = orb
        self.naming = naming
        self.store = store
        self.factory_group = to_name(factory_group)
        self.policy = policy or FtPolicy()
        #: shared per-host circuit breakers (None = breakers disabled).
        self.breakers = breakers
        #: in-flight recoveries by service key (single-flight coalescing:
        #: concurrent failed calls to the same service trigger ONE restart,
        #: not one per call).
        self._inflight: dict[str, object] = {}
        #: counters for the recovery bench
        self.recoveries = 0
        self.failed_recoveries = 0
        self.recovery_time_total = 0.0
        self.coalesced = 0
        #: recovery-attempt accounting (the chaos bench compares these
        #: between fixed-backoff and breaker-guarded configurations).
        self.attempts_total = 0
        self.factory_failures = 0
        self.breaker_skips = 0
        self.deadline_failures = 0
        #: replica-group provisioning (replication modes).
        self.replica_provisions = 0
        self.replica_provision_failures = 0

    # -- main entry point -----------------------------------------------------

    def recover(self, proxy):
        """Generator: restart ``proxy``'s service; rebinds the proxy.

        Concurrent recoveries of the same service key are coalesced: the
        first caller performs the restart, the rest wait for its outcome
        and simply rebind.  Raises :class:`RecoveryError` when no factory
        host works or the service has no registered type to restart.
        """
        sim = self.orb.sim
        context = proxy._ft
        # Pipelined mode: settle every in-flight checkpoint store first.
        # The failing call holds the proxy lock, so no new captures can
        # start; persists that fail against a down store land in the
        # degraded buffer, which _restore already prefers when newer.
        yield from proxy._drain_pipeline()
        inflight = self._inflight.get(context.key)
        if inflight is not None:
            self.coalesced += 1
            new_ior = yield inflight  # raises if the restart fails
            proxy._rebind(new_ior)
            return new_ior
        future = sim.future(label=f"recovery:{context.key}")
        self._inflight[context.key] = future
        try:
            new_ior = yield from self._recover_now(proxy)
        except BaseException as exc:
            future.try_fail(exc)
            raise
        finally:
            self._inflight.pop(context.key, None)
        future.try_succeed(new_ior)
        return new_ior

    def _recover_now(self, proxy):
        sim = self.orb.sim
        started = sim.now
        context = proxy._ft
        dead_ior = proxy.ior
        sim.trace.emit(
            "ft",
            "recovering",
            service=context.key,
            dead_host=dead_ior.host,
        )
        with sim.obs.tracer.span(
            "ft:recover",
            host=self.orb.host.name,
            service=context.key,
            dead_host=dead_ior.host,
        ) as span:
            new_ior = yield from self._recover_attempts(
                proxy, span, started, dead_ior
            )
        return new_ior

    def _recover_attempts(self, proxy, span, started, dead_ior):
        sim = self.orb.sim
        policy = self.policy
        context = proxy._ft
        if self.breakers is not None:
            # The failed call is evidence against the dead host: feed the
            # breaker so re-resolution steers around it immediately.
            self.breakers.record_failure(dead_ior.host)
        rng = sim.rng("ft-backoff")
        last_error: Optional[BaseException] = None
        delay = 0.0
        for attempt in range(policy.max_recover_attempts):
            if attempt:
                delay = policy.backoff_delay(delay, rng)
                if policy.recovery_deadline is not None:
                    remaining = policy.recovery_deadline - (sim.now - started)
                    delay = min(delay, max(0.0, remaining))
                yield sim.timeout(delay)
            if (
                policy.recovery_deadline is not None
                and sim.now - started >= policy.recovery_deadline
            ):
                self.deadline_failures += 1
                self.failed_recoveries += 1
                sim.obs.metrics.counter(
                    "ft_recovery_deadline_exceeded_total", service=context.key
                ).inc()
                sim.obs.metrics.counter(
                    "ft_failed_recoveries_total", service=context.key
                ).inc()
                raise RecoveryError(
                    f"recovery of {context.key} exceeded its "
                    f"{policy.recovery_deadline}s deadline "
                    f"(after {attempt} attempts)"
                ) from last_error
            self.attempts_total += 1
            try:
                factory_ior = yield self.naming.resolve(self.factory_group)
            except naming_idl.NotFound as exc:
                raise RecoveryError(
                    f"factory group {self.factory_group!r} is not bound"
                ) from exc
            if self.breakers is not None and not self.breakers.allow(
                factory_ior.host
            ):
                # Breaker open for the offered host: skip the doomed round
                # trip (counts as an attempt so a fully blacklisted group
                # still terminates).
                self.breaker_skips += 1
                sim.obs.metrics.counter(
                    "ft_recovery_breaker_skips_total", host=factory_ior.host
                ).inc()
                last_error = RecoveryError(
                    f"circuit breaker open for host {factory_ior.host}"
                )
                continue
            factory = self.orb.stub(factory_ior, ObjectFactoryStub)
            try:
                new_ior = yield factory.create(context.type_name)
            except UnknownType as exc:
                raise RecoveryError(
                    f"no factory knows type {context.type_name!r}"
                ) from exc
            except RECOVERABLE as exc:
                # That factory host is dead too: drop it from the group so
                # the naming service stops offering it, then try again.
                last_error = exc
                self.factory_failures += 1
                if self.breakers is not None and isinstance(exc, HOST_BLAMING):
                    self.breakers.record_failure(factory_ior.host)
                yield from self._drop_replica(self.factory_group, factory_ior)
                continue
            if self.breakers is not None:
                self.breakers.record_success(factory_ior.host)

            try:
                yield from self._restore(context, new_ior)
            except RECOVERABLE as exc:
                last_error = exc
                if self.breakers is not None and isinstance(exc, HOST_BLAMING):
                    self.breakers.record_failure(new_ior.host)
                continue  # new host died during restore; start over

            yield from self._swap_group_binding(context, dead_ior, new_ior)
            proxy._rebind(new_ior)
            self.recoveries += 1
            elapsed = sim.now - started
            self.recovery_time_total += elapsed
            span.set_attr("attempts", attempt + 1)
            span.set_attr("new_host", new_ior.host)
            sim.obs.metrics.counter(
                "ft_recoveries_total", service=context.key
            ).inc()
            sim.obs.metrics.histogram(
                "ft_recovery_seconds", service=context.key
            ).observe(elapsed)
            sim.trace.emit(
                "ft",
                "recovered",
                service=context.key,
                new_host=new_ior.host,
                seconds=elapsed,
            )
            return new_ior
        self.failed_recoveries += 1
        sim.obs.metrics.counter(
            "ft_failed_recoveries_total", service=context.key
        ).inc()
        raise RecoveryError(
            f"recovery of {context.key} failed after "
            f"{self.policy.max_recover_attempts} attempts"
        ) from last_error

    # -- replica-group provisioning (replication modes) ---------------------------

    def provision_member(
        self,
        context,
        group_id: str,
        exclude_hosts: frozenset = frozenset(),
        seed_state=None,
    ):
        """Generator: create one replica-group member via the factory
        group, preferring hosts outside ``exclude_hosts`` (replicas on
        distinct hosts are the whole point of a group).

        Seeds the new member with ``seed_state`` when given — a raw
        servant checkpoint or a member-state envelope; either way no
        checkpoint-store round trip is involved.  Returns the member's
        IOR, or None when no factory host worked (the group degrades
        redundancy instead of failing the wrapped call).
        """
        sim = self.orb.sim
        policy = self.policy
        rng = sim.rng("ft-backoff")
        last_error: Optional[BaseException] = None
        delay = 0.0
        for attempt in range(policy.max_recover_attempts):
            if attempt:
                delay = policy.backoff_delay(delay, rng)
                yield sim.timeout(delay)
            self.attempts_total += 1
            try:
                factories = yield self.naming.resolve_all(self.factory_group)
            except naming_idl.NotFound as exc:
                raise RecoveryError(
                    f"factory group {self.factory_group!r} is not bound"
                ) from exc
            preferred = [
                ior for ior in factories if ior.host not in exclude_hosts
            ]
            for factory_ior in preferred or list(factories):
                if self.breakers is not None and not self.breakers.allow(
                    factory_ior.host
                ):
                    self.breaker_skips += 1
                    sim.obs.metrics.counter(
                        "ft_recovery_breaker_skips_total",
                        host=factory_ior.host,
                    ).inc()
                    continue
                factory = self.orb.stub(factory_ior, ObjectFactoryStub)
                try:
                    member_ior = yield factory.create_member(
                        context.type_name, group_id
                    )
                except UnknownType as exc:
                    raise RecoveryError(
                        f"no factory knows type {context.type_name!r}"
                    ) from exc
                except RECOVERABLE as exc:
                    last_error = exc
                    self.factory_failures += 1
                    if self.breakers is not None and isinstance(
                        exc, HOST_BLAMING
                    ):
                        self.breakers.record_failure(factory_ior.host)
                    yield from self._drop_replica(
                        self.factory_group, factory_ior
                    )
                    continue
                if self.breakers is not None:
                    self.breakers.record_success(factory_ior.host)
                if seed_state is not None:
                    from repro.ft.checkpointable import CheckpointableStub

                    restore_info = CheckpointableStub.__operations__[
                        "restore_from"
                    ]
                    try:
                        yield self.orb.invoke(
                            member_ior, restore_info, (seed_state,)
                        )
                    except RECOVERABLE as exc:
                        last_error = exc
                        if self.breakers is not None and isinstance(
                            exc, HOST_BLAMING
                        ):
                            self.breakers.record_failure(member_ior.host)
                        continue
                self.replica_provisions += 1
                sim.obs.metrics.counter(
                    "ft_replica_provisions_total", group=group_id
                ).inc()
                sim.trace.emit(
                    "ft",
                    "replica member provisioned",
                    group=group_id,
                    host=member_ior.host,
                )
                return member_ior
        self.replica_provision_failures += 1
        sim.trace.emit(
            "ft",
            "replica provisioning failed",
            group=group_id,
            error=type(last_error).__name__ if last_error else None,
        )
        return None

    # -- steps -------------------------------------------------------------------

    def _restore(self, context, new_ior):
        """Restore the newest checkpoint onto ``new_ior``.

        Checkpoints buffered client-side by degraded mode (storage outage)
        take precedence over the store's copy when they are newer — and
        stand in for it entirely while the store is unreachable, so a
        service can be recovered *during* a storage outage.
        """
        key = context.key
        buffered = context.latest_buffered()
        store_version: Optional[int] = None
        if buffered is not None:
            try:
                store_version = yield self.store.latest_version(key)
            except (NoCheckpoint, *RECOVERABLE):
                store_version = None
        if buffered is not None and (
            store_version is None or buffered[0] > store_version
        ):
            state = buffered[1]
            self.orb.sim.obs.metrics.counter(
                "ft_restores_from_buffer_total", service=key
            ).inc()
        else:
            try:
                state = yield self.store.load(key)
            except NoCheckpoint:
                return  # stateless service (or nothing checkpointed yet)
            except RECOVERABLE:
                if buffered is None:
                    raise  # store down and nothing buffered: cannot restore
                state = buffered[1]
        from repro.ft.checkpointable import CheckpointableStub

        restore_info = CheckpointableStub.__operations__["restore_from"]
        yield self.orb.invoke(new_ior, restore_info, (state,))

    def _drop_replica(self, group_name, dead_ior):
        try:
            yield self.naming.unbind_service(group_name, dead_ior)
        except (naming_idl.NotFound, SystemException):
            pass  # someone else already removed it

    def _swap_group_binding(self, context, dead_ior, new_ior):
        if context.group_name is None:
            return
        group = to_name(context.group_name)
        yield from self._drop_replica(group, dead_ior)
        try:
            yield self.naming.bind_service(group, new_ior)
        except naming_idl.AlreadyBound:
            pass
