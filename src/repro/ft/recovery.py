"""The recovery coordinator: restart a failed service from its checkpoint.

"Using the concepts for the naming service already described, it is
possible to request a new reference to a service if a call to a server
object fails. ... it is inevitable to (a) save the state (checkpoint) of
the server object ... and (b) have the opportunity to restore this state
in a newly created server object." (§3)

The recovery path, end to end:

1. resolve the **factory service group** through the load-distributing
   naming service — Winner picks the best surviving host;
2. ask that host's factory to ``create`` a fresh servant of the service's
   type (retrying elsewhere if the chosen factory is itself dead);
3. load the latest checkpoint from the checkpoint store and
   ``restore_from`` it on the new object;
4. rebind the caller's proxy to the new reference and (optionally) swap
   the dead replica for the new one in the service's own naming group.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import (
    COMM_FAILURE,
    OBJECT_NOT_EXIST,
    RecoveryError,
    SystemException,
    TRANSIENT,
)
from repro.ft.factory import ObjectFactoryStub, UnknownType
from repro.ft.policy import FtPolicy
from repro.orb.stubs import ObjectStub
from repro.services.checkpoint import NoCheckpoint
from repro.services.naming import idl as naming_idl
from repro.services.naming.names import to_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb

#: exceptions that mean "the target is gone; recovery may help".
RECOVERABLE = (COMM_FAILURE, OBJECT_NOT_EXIST, TRANSIENT)


class RecoveryCoordinator:
    """Client-side orchestration of checkpoint/restart recovery."""

    def __init__(
        self,
        orb: "Orb",
        naming,  # LoadDistributingNamingContextStub
        store,  # CheckpointStoreStub
        factory_group: str = "factories.service",
        policy: Optional[FtPolicy] = None,
    ) -> None:
        self.orb = orb
        self.naming = naming
        self.store = store
        self.factory_group = to_name(factory_group)
        self.policy = policy or FtPolicy()
        #: in-flight recoveries by service key (single-flight coalescing:
        #: concurrent failed calls to the same service trigger ONE restart,
        #: not one per call).
        self._inflight: dict[str, object] = {}
        #: counters for the recovery bench
        self.recoveries = 0
        self.failed_recoveries = 0
        self.recovery_time_total = 0.0
        self.coalesced = 0

    # -- main entry point -----------------------------------------------------

    def recover(self, proxy):
        """Generator: restart ``proxy``'s service; rebinds the proxy.

        Concurrent recoveries of the same service key are coalesced: the
        first caller performs the restart, the rest wait for its outcome
        and simply rebind.  Raises :class:`RecoveryError` when no factory
        host works or the service has no registered type to restart.
        """
        sim = self.orb.sim
        context = proxy._ft
        inflight = self._inflight.get(context.key)
        if inflight is not None:
            self.coalesced += 1
            new_ior = yield inflight  # raises if the restart fails
            proxy._rebind(new_ior)
            return new_ior
        future = sim.future(label=f"recovery:{context.key}")
        self._inflight[context.key] = future
        try:
            new_ior = yield from self._recover_now(proxy)
        except BaseException as exc:
            future.try_fail(exc)
            raise
        finally:
            self._inflight.pop(context.key, None)
        future.try_succeed(new_ior)
        return new_ior

    def _recover_now(self, proxy):
        sim = self.orb.sim
        started = sim.now
        context = proxy._ft
        dead_ior = proxy.ior
        sim.trace.emit(
            "ft",
            "recovering",
            service=context.key,
            dead_host=dead_ior.host,
        )
        with sim.obs.tracer.span(
            "ft:recover",
            host=self.orb.host.name,
            service=context.key,
            dead_host=dead_ior.host,
        ) as span:
            new_ior = yield from self._recover_attempts(
                proxy, span, started, dead_ior
            )
        return new_ior

    def _recover_attempts(self, proxy, span, started, dead_ior):
        sim = self.orb.sim
        context = proxy._ft
        last_error: Optional[BaseException] = None
        for attempt in range(self.policy.max_recover_attempts):
            if attempt:
                yield sim.timeout(self.policy.retry_backoff)
            try:
                factory_ior = yield self.naming.resolve(self.factory_group)
            except naming_idl.NotFound as exc:
                raise RecoveryError(
                    f"factory group {self.factory_group!r} is not bound"
                ) from exc
            factory = self.orb.stub(factory_ior, ObjectFactoryStub)
            try:
                new_ior = yield factory.create(context.type_name)
            except UnknownType as exc:
                raise RecoveryError(
                    f"no factory knows type {context.type_name!r}"
                ) from exc
            except RECOVERABLE as exc:
                # That factory host is dead too: drop it from the group so
                # the naming service stops offering it, then try again.
                last_error = exc
                yield from self._drop_replica(self.factory_group, factory_ior)
                continue

            try:
                yield from self._restore(context.key, new_ior)
            except RECOVERABLE as exc:
                last_error = exc
                continue  # new host died during restore; start over

            yield from self._swap_group_binding(context, dead_ior, new_ior)
            proxy._rebind(new_ior)
            self.recoveries += 1
            elapsed = sim.now - started
            self.recovery_time_total += elapsed
            span.set_attr("attempts", attempt + 1)
            span.set_attr("new_host", new_ior.host)
            sim.obs.metrics.counter(
                "ft_recoveries_total", service=context.key
            ).inc()
            sim.obs.metrics.histogram(
                "ft_recovery_seconds", service=context.key
            ).observe(elapsed)
            sim.trace.emit(
                "ft",
                "recovered",
                service=context.key,
                new_host=new_ior.host,
                seconds=elapsed,
            )
            return new_ior
        self.failed_recoveries += 1
        sim.obs.metrics.counter(
            "ft_failed_recoveries_total", service=context.key
        ).inc()
        raise RecoveryError(
            f"recovery of {context.key} failed after "
            f"{self.policy.max_recover_attempts} attempts"
        ) from last_error

    # -- steps -------------------------------------------------------------------

    def _restore(self, key: str, new_ior):
        try:
            state = yield self.store.load(key)
        except NoCheckpoint:
            return  # stateless service (or nothing checkpointed yet)
        from repro.ft.checkpointable import CheckpointableStub

        restore_info = CheckpointableStub.__operations__["restore_from"]
        yield self.orb.invoke(new_ior, restore_info, (state,))

    def _drop_replica(self, group_name, dead_ior):
        try:
            yield self.naming.unbind_service(group_name, dead_ior)
        except (naming_idl.NotFound, SystemException):
            pass  # someone else already removed it

    def _swap_group_binding(self, context, dead_ior, new_ior):
        if context.group_name is None:
            return
        group = to_name(context.group_name)
        yield from self._drop_replica(group, dead_ior)
        try:
            yield self.naming.bind_service(group, new_ior)
        except naming_idl.AlreadyBound:
            pass
