"""Replication baselines: the designs the paper argues *against*.

"Especially for applications with a maximum degree of parallelism ... it
is not desirable to use a large amount of the computational resources
(i.e. hosts in the network) exclusively for availability purposes as in
the case of active replication." (§3)

To make that argument measurable, both group styles are implemented:

* :class:`ActiveReplicationGroup` — every call goes to all replicas, the
  first successful reply wins (Piranha-style active replication).  Burns
  ~r× CPU for the same answer.
* :class:`PassiveReplicationGroup` — calls go to the primary; after each
  call the primary's state is transferred to every backup; on primary
  failure a backup is promoted (IGOR-style warm passive replication).
"""

from __future__ import annotations

from typing import Optional, Sequence, TYPE_CHECKING

from repro.errors import COMM_FAILURE, RecoveryError, SystemException
from repro.orb.stubs import ObjectStub

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.orb.ior import IOR
    from repro.sim.events import SimFuture


class _GroupBase:
    def __init__(self, orb: "Orb", stub_class: type, replicas: Sequence["IOR"]) -> None:
        if not replicas:
            raise RecoveryError("replication group needs at least one replica")
        self._orb = orb
        self._stub_class = stub_class
        self._stubs = [orb.stub(ior, stub_class) for ior in replicas]
        self.calls = 0

    @property
    def replica_count(self) -> int:
        return len(self._stubs)

    @property
    def replica_hosts(self) -> list[str]:
        return [stub.ior.host for stub in self._stubs]


class ActiveReplicationGroup(_GroupBase):
    """Invoke on every replica; first successful reply wins.

    Masks up to r-1 failures with zero recovery latency — at the price of
    executing every call r times.
    """

    def invoke(self, operation: str, args: tuple = ()) -> "SimFuture":
        outer = self._orb.sim.future(label=f"active:{operation}")
        process = self._orb.host.spawn(
            self._invoke_proc(operation, args, outer), name=f"active:{operation}"
        )
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def _invoke_proc(self, operation: str, args: tuple, outer):
        self.calls += 1
        sim = self._orb.sim
        futures = [
            ObjectStub._invoke(stub, operation, args) for stub in self._stubs
        ]
        try:
            # any_of succeeds with the first reply and fails only once
            # every replica has failed.
            _index, value = yield sim.any_of(futures)
        except SystemException as exc:
            outer.try_fail(exc)
            return
        outer.try_succeed(value)


class PassiveReplicationGroup(_GroupBase):
    """Primary + warm backups with per-call state transfer.

    After each successful call the primary's checkpoint is pushed to every
    backup (``restore_from``), so any backup can take over at the last
    completed call.  On primary failure the first reachable backup is
    promoted.
    """

    def __init__(self, orb, stub_class, replicas) -> None:
        super().__init__(orb, stub_class, replicas)
        self.primary_index = 0
        self.promotions = 0
        self.state_transfers = 0

    @property
    def primary_host(self) -> str:
        return self._stubs[self.primary_index].ior.host

    def invoke(self, operation: str, args: tuple = ()) -> "SimFuture":
        outer = self._orb.sim.future(label=f"passive:{operation}")
        process = self._orb.host.spawn(
            self._invoke_proc(operation, args, outer), name=f"passive:{operation}"
        )
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def _invoke_proc(self, operation: str, args: tuple, outer):
        self.calls += 1
        attempts = 0
        while attempts < len(self._stubs):
            primary = self._stubs[self.primary_index]
            try:
                result = yield ObjectStub._invoke(primary, operation, args)
            except (COMM_FAILURE, SystemException):
                attempts += 1
                self._promote()
                continue
            yield from self._sync_backups(primary)
            outer.try_succeed(result)
            return
        outer.try_fail(RecoveryError("all replicas of the group failed"))

    def _promote(self) -> None:
        self.primary_index = (self.primary_index + 1) % len(self._stubs)
        self.promotions += 1
        self._orb.sim.trace.emit(
            "ft", "passive group promoted", primary=self.primary_host
        )

    def _sync_backups(self, primary):
        try:
            state = yield ObjectStub._invoke(primary, "get_checkpoint", ())
        except SystemException:
            return  # primary died right after replying; next call promotes
        for index, stub in enumerate(self._stubs):
            if index == self.primary_index:
                continue
            try:
                yield ObjectStub._invoke(stub, "restore_from", (state,))
                self.state_transfers += 1
            except SystemException:
                continue  # dead backup reduces redundancy, not correctness
