"""First-class replication groups: warm-passive and active FT.

"Especially for applications with a maximum degree of parallelism ... it
is not desirable to use a large amount of the computational resources
(i.e. hosts in the network) exclusively for availability purposes as in
the case of active replication." (§3)

The paper makes that argument and then builds checkpoint/restart.  To
make the trade *measurable* the alternatives are implemented for real —
not as bench mock-ups but as proxy-integrated replication modes selected
by :class:`~repro.ft.policy.FtPolicy.ft_mode`:

* **warm-passive** (:class:`WarmPassiveGroup`) — the primary executes,
  its post-call state is shipped to warm standbys (reusing the delta /
  pipelined machinery of the checkpoint fast path); on a failed call or
  a FailureDetector suspicion a standby is *promoted* without any
  checkpoint-store round trip.
* **active** (:class:`ActiveGroup`) — every replica executes every call;
  replies are majority-voted, so up to ``r - quorum`` failures are masked
  with zero failover latency at ~r× the CPU cost.

Exactly-once is carried by a **logical request id** in a GIOP service
context: every server-side replica is wrapped in a
:class:`ReplicatedServant` that suppresses duplicate applies per request
id, and the reply cache *travels inside the shipped state*, so a standby
promoted (or a replacement seeded) mid-retry still refuses to re-apply a
request its lineage has already seen.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import (
    ConfigurationError,
    RecoveryError,
    UserException,
)
from repro.ft.checkpointable import CHECKPOINT_OPERATIONS, CheckpointableStub
from repro.ft.detector import FailureDetector
from repro.ft.recovery import RECOVERABLE
from repro.orb.cdr import AnyEncodeMemo, encode_any
from repro.orb.core import Servant
from repro.services.checkpoint import (
    BadDeltaBase,
    apply_delta,
    compute_delta,
    state_digest,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.ior import IOR
    from repro.sim.events import SimFuture

#: GIOP service context carrying the logical request id ("FTRQ").
REQUEST_ID_SERVICE_CONTEXT = 0x46545251

#: key marking a state payload as a member-state envelope (inner state +
#: reply cache) rather than a raw servant checkpoint.
MEMBER_STATE_MARK = "__ft_member_state__"

#: key marking a state ship as a delta against the standby's acked state.
SHIP_DELTA_MARK = "__ft_ship_delta__"

#: replies remembered per replica.  The per-proxy FIFO lock admits one
#: logical request at a time, so a small window is enough to cover every
#: retry of the requests that can still be in flight.
REPLY_CACHE_LIMIT = 32


class ReplicatedServant(Servant):
    """Server-side wrapper giving any servant exactly-once semantics.

    Created by the factory's ``create_member``: delegates every IDL
    operation to the wrapped servant, but when the request carries a
    logical request id (the replication proxies always attach one) the
    apply is recorded per id — a retried request returns the cached reply
    instead of executing twice.  ``get_checkpoint``/``restore_from`` wrap
    and unwrap the reply cache together with the inner state, so the
    dedup history survives state ships, promotions and re-seeding.
    """

    def __init__(self, inner: Servant, group_id: str) -> None:
        # _inner must exist before anything else: __getattr__ consults it.
        self._inner = inner
        self.group_id = group_id
        self.__operations__ = dict(type(inner).__operations__)
        self.__repo_id__ = inner.__repo_id__
        self.ior: Optional["IOR"] = None
        #: request id → cached reply (insertion-ordered, bounded).
        self._replies: dict = {}
        #: request id → future of an apply still executing (a racing
        #: duplicate waits on it instead of starting a second apply).
        self._inflight: dict = {}
        self._ship_base: Optional[dict] = None
        self._ship_digest: Optional[str] = None
        # audit counters (the chaos no-stale-primary invariant reads the
        # timestamps; the report aggregates the rest).
        self.dispatches = 0
        self.applies = 0
        self.duplicates_suppressed = 0
        self.state_restores = 0
        #: highest request sequence number ever delivered here — compared
        #: against the group's seq-at-retirement to detect stale sends.
        self.last_request_seq = 0
        self.last_dispatch_at: Optional[float] = None
        self.last_applied_at: Optional[float] = None

    def adopt(self, ior: "IOR") -> None:
        """Record the activated IOR and mirror the POA plumbing onto the
        inner servant so its ``_this()``/``_host()`` keep working."""
        self.ior = ior
        self._inner._poa = self._poa
        self._inner._object_key = self._object_key

    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        operations = self.__dict__.get("__operations__") or {}
        if name in operations and name not in CHECKPOINT_OPERATIONS:
            return self._operation_dispatcher(name)
        return getattr(inner, name)

    def _operation_dispatcher(self, operation: str):
        inner_method = getattr(self._inner, operation)

        def dispatch(*args):
            orb = self._poa.orb  # type: ignore[union-attr]
            self.dispatches += 1
            self.last_dispatch_at = orb.sim.now
            request_key = None
            # Synchronous prefix of the dispatch: the ORB set
            # current_service_contexts immediately before calling us.
            for context_id, data in orb.current_service_contexts:
                if context_id == REQUEST_ID_SERVICE_CONTEXT:
                    request_key = bytes(data).decode("utf-8")
                    break
            if request_key is None:
                # Direct (unreplicated) caller: nothing to dedup against.
                return inner_method(*args)
            seq = request_key.rsplit(":", 1)[-1]
            if seq.isdigit():
                self.last_request_seq = max(
                    self.last_request_seq, int(seq)
                )
            return self._deduped(request_key, operation, inner_method, args)

        dispatch.__name__ = operation
        return dispatch

    def _deduped(self, request_key: str, operation: str, inner_method, args):
        """Generator: apply ``operation`` at most once per request id."""
        sim = self._poa.orb.sim  # type: ignore[union-attr]
        while True:
            if request_key in self._replies:
                self.duplicates_suppressed += 1
                sim.obs.metrics.counter(
                    "ft_duplicates_suppressed_total", group=self.group_id
                ).inc()
                sim.trace.emit(
                    "ft",
                    "duplicate request suppressed",
                    group=self.group_id,
                    request=request_key,
                    operation=operation,
                )
                return self._replies[request_key]
            inflight = self._inflight.get(request_key)
            if inflight is not None:
                # A retry raced the original execution: wait, then
                # re-check (a failed apply leaves no cached reply, so the
                # retry executes; a successful one hits the cache above).
                yield inflight
                continue
            # analysis: atomic-begin(register-inflight)
            # Registering the in-flight marker must not yield — a racing
            # duplicate could otherwise start a second apply.
            future = sim.future(label=f"ft-apply:{request_key}")
            self._inflight[request_key] = future
            # analysis: atomic-end(register-inflight)
            try:
                result = inner_method(*args)
                if inspect.isgenerator(result):
                    result = yield from result
                # analysis: atomic-begin(record-reply)
                # Reply recording happens before any waiter resumes (done
                # callbacks run at the next scheduler step).
                self._replies[request_key] = result
                self.applies += 1
                self.last_applied_at = sim.now
                while len(self._replies) > REPLY_CACHE_LIMIT:
                    self._replies.pop(next(iter(self._replies)))
                # analysis: atomic-end(record-reply)
                return result
            finally:
                if self._inflight.get(request_key) is future:
                    del self._inflight[request_key]
                future.try_succeed(None)

    # -- state transfer (the envelope carries the reply cache) ---------------------

    def _wrap_state(self, state) -> dict:
        return {
            MEMBER_STATE_MARK: 1,
            "state": state,
            "replies": dict(self._replies),
        }

    def get_checkpoint(self):
        result = self._inner.get_checkpoint()
        if inspect.isgenerator(result):
            return self._capture_checkpoint(result)
        return self._wrap_state(result)

    def _capture_checkpoint(self, gen):
        state = yield from gen
        return self._wrap_state(state)

    def restore_from(self, payload):
        digest: Optional[str] = None
        if isinstance(payload, dict) and SHIP_DELTA_MARK in payload:
            envelope = payload
            if (
                self._ship_base is None
                or self._ship_digest != envelope.get("base")
            ):
                # Our acked state is not the delta's base (we missed a
                # ship): the group falls back to a full state transfer.
                raise BadDeltaBase(key=self.group_id, expected=0, got=0)
            payload = apply_delta(self._ship_base, envelope[SHIP_DELTA_MARK])
            digest = envelope.get("target")
        if isinstance(payload, dict) and MEMBER_STATE_MARK in payload:
            self._ship_base = payload
            self._ship_digest = (
                digest
                if digest is not None
                else state_digest(encode_any(payload))
            )
            self._replies = dict(payload.get("replies") or {})
            inner_state = payload.get("state")
        else:
            # Raw servant state (e.g. seeded straight from the origin
            # object at provisioning): no dedup history travels with it.
            self._ship_base = None
            self._ship_digest = None
            self._replies = {}
            inner_state = payload
        self.state_restores += 1
        return self._inner.restore_from(inner_state)

    def snapshot(self) -> dict:
        return {
            "group": self.group_id,
            "host": self.ior.host if self.ior is not None else None,
            "dispatches": self.dispatches,
            "applies": self.applies,
            "duplicates_suppressed": self.duplicates_suppressed,
            "state_restores": self.state_restores,
            "last_request_seq": self.last_request_seq,
        }


class _Member:
    """One replica: its IOR plus the digest of the last state it acked."""

    __slots__ = ("ior", "acked_digest")

    def __init__(
        self, ior: "IOR", acked_digest: Optional[str] = None
    ) -> None:
        self.ior = ior
        self.acked_digest = acked_digest


@dataclass
class _PendingShip:
    """One captured state waiting to reach the standbys."""

    payload: dict
    digest: str
    data_len: int
    delta: Optional[dict] = None
    delta_bytes: int = 0
    base_digest: Optional[str] = None
    future: Optional["SimFuture"] = None


class ReplicaGroup:
    """Client-side replica-group machinery shared by both modes.

    Built lazily by the FT proxy when ``policy.ft_mode`` selects a
    replication mode; all entry points run under the proxy's FIFO lock,
    so group state never sees two logical requests interleaved.
    """

    mode = "?"

    def __init__(self, proxy) -> None:
        ft = proxy._ft
        if ft.recovery is None:
            raise ConfigurationError(
                f"ft_mode={ft.policy.ft_mode!r} needs a recovery coordinator"
                " (the factory group provisions the replicas)"
            )
        self._proxy = proxy
        self._orb = proxy._orb
        self._ft = ft
        self._policy = ft.policy
        self._recovery = ft.recovery
        self.members: list[_Member] = []
        #: ``(ior, sim-time, request-seq)`` of every member removed from
        #: the group — the chaos ``no-stale-primary`` invariant compares a
        #: replica's highest delivered request seq against the seq issued
        #: by the time it was retired (a higher one means a *new* request
        #: reached a dead incarnation after failover).
        self.retired: list[tuple["IOR", float, int]] = []
        self.provisioned = False
        self._request_seq = 0
        self._encode_memo = AnyEncodeMemo()
        #: newest captured member-state envelope — promotion sync and
        #: replacement seeding use it instead of any checkpoint store.
        self._last_payload: Optional[dict] = None
        self._last_digest: Optional[str] = None
        self._detector: Optional[FailureDetector] = None
        self._replacing = False
        # counters (surfaced through runtime_report's replication section)
        self.calls = 0
        self.promotions = 0
        self.lead_changes = 0
        self.state_ships_full = 0
        self.state_ships_delta = 0
        self.ship_skips = 0
        self.ship_bytes = 0
        self.delta_fallbacks = 0
        self.replacements = 0
        self.replacement_failures = 0
        self.votes = 0
        self.vote_rounds = 0
        self.divergences = 0
        self.resyncs = 0

    # -- identity and plumbing ------------------------------------------------------

    @property
    def group_id(self) -> str:
        return self._ft.key

    def _op_info(self, operation: str):
        operations = type(self._proxy).__operations__
        if operation in operations:
            return operations[operation]
        return CheckpointableStub.__operations__[operation]

    def _invoke(
        self, ior: "IOR", operation: str, args: tuple, contexts: tuple = ()
    ) -> "SimFuture":
        return self._orb.invoke(
            ior, self._op_info(operation), args, service_contexts=contexts
        )

    def _next_request_context(self) -> tuple:
        self._request_seq += 1
        request_key = f"{self._ft.key}:{self._request_seq}"
        return ((REQUEST_ID_SERVICE_CONTEXT, request_key.encode("utf-8")),)

    # -- provisioning ---------------------------------------------------------------

    def ensure_provisioned(self):
        """Generator: build the replica group on first use (lock held).

        Seeds every member from the origin object's *raw* checkpoint, then
        retires the origin from the naming group in favour of the lead.
        Yield-free once provisioned.
        """
        if self.provisioned:
            return
        sim = self._orb.sim
        proxy = self._proxy
        origin = proxy.ior
        sim.trace.emit(
            "ft",
            "provisioning replica group",
            group=self.group_id,
            mode=self.mode,
            factor=self._policy.replication_factor,
        )
        try:
            seed = yield self._invoke(origin, "get_checkpoint", ())
        except RECOVERABLE:
            seed = None  # origin already dead: members start fresh
        # Replicas avoid the caller's host (a soft preference — the
        # factory group falls back to it when nothing else is alive):
        # co-locating a replica with the client voids its independence.
        exclude: set[str] = {self._orb.host.name}
        while len(self.members) < self._policy.replication_factor:
            member_ior = yield from self._recovery.provision_member(
                self._ft,
                self.group_id,
                exclude_hosts=frozenset(exclude),
                seed_state=seed,
            )
            if member_ior is None:
                if len(self.members) >= 2:
                    break  # degraded redundancy is still a group
                raise RecoveryError(
                    f"cannot provision replica group {self.group_id}: only"
                    f" {len(self.members)} member(s) could be created"
                )
            exclude.add(member_ior.host)
            # analysis: ignore[RACE004]: group dispatch enters via ft.group.call inside FtContext._ft_call_proc, which holds the proxy's _ft_lock for the whole call; the attribute dispatch hides that lock from the lockset inference
            self.members.append(_Member(member_ior))
        # analysis: ignore[RACE002]: the provisioned latch is read and flipped under the proxy's _ft_lock held by FtContext._ft_call_proc across the whole group dispatch; no second process can enter this window
        self.provisioned = True
        lead = self.members[0].ior
        yield from self._recovery._swap_group_binding(self._ft, origin, lead)
        proxy._rebind(lead)
        self._watch_lead()
        sim.obs.metrics.gauge(
            "ft_replica_group_size", group=self.group_id
        ).set(len(self.members))
        sim.trace.emit(
            "ft",
            "replica group provisioned",
            group=self.group_id,
            hosts=[member.ior.host for member in self.members],
        )

    # -- failure detector -------------------------------------------------------------

    def _watch_lead(self) -> None:
        policy = self._policy
        if policy.detector_interval <= 0 or not self.members:
            return
        if self._detector is None:
            self._detector = FailureDetector(
                self._orb,
                interval=policy.detector_interval,
                suspect_after=policy.detector_suspect_after,
            )
        self._detector.watch(
            self.group_id, self.members[0].ior, self._on_lead_suspect
        )

    def _on_lead_suspect(self, key: str, ior: "IOR") -> None:
        self._orb.host.spawn(
            self._suspect_promote(ior), name=f"ft-suspect:{self.group_id}"
        )

    def _suspect_promote(self, ior: "IOR"):
        yield self._proxy._ft_lock.acquire()
        try:
            if self.members and self.members[0].ior == ior:
                yield from self._handle_dead_lead("detector suspicion")
        except RecoveryError:
            self._orb.sim.trace.emit(
                "ft", "proactive promotion failed", group=self.group_id
            )
        finally:
            self._proxy._ft_lock.release()

    def _handle_dead_lead(self, reason: str):
        raise NotImplementedError
        yield  # pragma: no cover

    # -- membership -------------------------------------------------------------------

    # analysis: atomic: retirement record + breaker + connection-cache invalidation form one indivisible step
    def _retire(self, member: _Member, reason: str) -> None:
        """Remove ``member`` and invalidate every cache naming its dead
        incarnation, so no post-promotion call can reach it."""
        sim = self._orb.sim
        if member in self.members:
            self.members.remove(member)
        self.retired.append((member.ior, sim.now, self._request_seq))
        breakers = self._recovery.breakers
        if breakers is not None:
            breakers.record_failure(member.ior.host)
        if self._orb.connections is not None:
            self._orb.connections.invalidate_endpoint(
                (member.ior.host, member.ior.port, member.ior.incarnation)
            )
        sim.obs.metrics.counter(
            "ft_replicas_retired_total", group=self.group_id
        ).inc()
        sim.obs.metrics.gauge(
            "ft_replica_group_size", group=self.group_id
        ).set(len(self.members))
        sim.trace.emit(
            "ft",
            "replica retired",
            group=self.group_id,
            host=member.ior.host,
            reason=reason,
        )

    def _capture_seed(self):
        """Generator: payload to seed a replacement member with."""
        yield from ()
        return self._last_payload

    def _replace_now(self):
        """Generator: re-provision up to ``replication_factor`` (lock
        held).  Failures degrade redundancy, never the caller's call."""
        while len(self.members) < self._policy.replication_factor:
            exclude = frozenset(
                member.ior.host for member in self.members
            ) | {self._orb.host.name}
            seed = yield from self._capture_seed()
            member_ior = yield from self._recovery.provision_member(
                self._ft,
                self.group_id,
                exclude_hosts=exclude,
                seed_state=seed,
            )
            if member_ior is None:
                self.replacement_failures += 1
                self._orb.sim.trace.emit(
                    "ft", "replica replacement failed", group=self.group_id
                )
                return
            acked = (
                self._last_digest
                if seed is not None and seed is self._last_payload
                else None
            )
            # analysis: ignore[RACE004]: every caller holds the proxy's _ft_lock — _replace_bg and _finish_round acquire it explicitly, and the group.call entries run under FtContext._ft_call_proc's hold; the analysis cannot follow the ft.group.call attribute dispatch
            self.members.append(_Member(member_ior, acked_digest=acked))
            self.replacements += 1
            self._orb.sim.obs.metrics.counter(
                "ft_replacements_total", group=self.group_id
            ).inc()
            self._orb.sim.obs.metrics.gauge(
                "ft_replica_group_size", group=self.group_id
            ).set(len(self.members))

    # analysis: atomic
    def _schedule_replacement(self) -> None:
        """Backfill lost redundancy in the background (single-flight).

        The check-and-set on ``_replacing`` is correct *because* this
        function is yield-free (spawn only hands the generator to the
        scheduler) — the atomic annotation makes the checker prove it.
        """
        if (
            self._replacing
            or len(self.members) >= self._policy.replication_factor
        ):
            return
        self._replacing = True
        self._orb.host.spawn(
            self._replace_bg(), name=f"ft-replace:{self.group_id}"
        )

    def _replace_bg(self):
        yield self._proxy._ft_lock.acquire()
        try:
            yield from self._replace_now()
        finally:
            self._replacing = False
            self._proxy._ft_lock.release()

    # -- hooks for the proxy ------------------------------------------------------------

    def call(self, operation: str, args: tuple):
        raise NotImplementedError
        yield  # pragma: no cover

    def drain(self):
        """Generator: wait for background state transfers (if any)."""
        yield from ()

    def snapshot(self) -> dict:
        return {
            "mode": self.mode,
            "group": self.group_id,
            "members": len(self.members),
            "member_hosts": [member.ior.host for member in self.members],
            "retired": len(self.retired),
            "calls": self.calls,
            "promotions": self.promotions,
            "lead_changes": self.lead_changes,
            "state_ships_full": self.state_ships_full,
            "state_ships_delta": self.state_ships_delta,
            "ship_skips": self.ship_skips,
            "ship_bytes": self.ship_bytes,
            "delta_fallbacks": self.delta_fallbacks,
            "replacements": self.replacements,
            "replacement_failures": self.replacement_failures,
            "votes": self.votes,
            "vote_rounds": self.vote_rounds,
            "divergences": self.divergences,
            "resyncs": self.resyncs,
        }


class WarmPassiveGroup(ReplicaGroup):
    """Primary executes; standbys hold shipped state; failover promotes.

    The recovery path never touches the checkpoint store: the newest
    member-state envelope lives client-side (``_last_payload``) and on
    the standbys, so promotion is a naming swap plus (at most) one state
    sync to the chosen standby.
    """

    mode = "warm-passive"

    def __init__(self, proxy) -> None:
        super().__init__(proxy)
        #: FIFO of background ships (``checkpoint_mode="pipelined"``).
        self._ship_inflight: list[_PendingShip] = []
        self.ship_stalls = 0

    def call(self, operation: str, args: tuple):
        yield from self.ensure_provisioned()
        policy = self._policy
        obs = self._orb.sim.obs
        self.calls += 1
        contexts = self._next_request_context()
        attempts = 0
        while True:
            if not self.members:
                raise RecoveryError(
                    f"replica group {self.group_id} has no members left"
                )
            primary = self.members[0]
            try:
                result = yield self._invoke(
                    primary.ior, operation, args, contexts
                )
            except RECOVERABLE as exc:
                attempts += 1
                self._ft.retries += 1
                obs.metrics.counter(
                    "ft_retries_total", service=self._ft.key
                ).inc()
                if attempts > policy.max_call_retries:
                    raise RecoveryError(
                        f"{operation} still failing after"
                        f" {attempts - 1} failovers"
                    ) from exc
                yield from self._promote(
                    primary, f"call failed: {type(exc).__name__}"
                )
                continue
            # Capture the post-call state.  A primary dying between the
            # reply and this capture loses nothing: the SAME request id is
            # re-executed on the promoted standby, whose lineage has not
            # applied it — duplicate suppression keeps it exactly-once on
            # every lineage that has.
            try:
                payload = yield self._invoke(
                    primary.ior, "get_checkpoint", ()
                )
            except RECOVERABLE as exc:
                attempts += 1
                self._ft.retries += 1
                obs.metrics.counter(
                    "ft_retries_total", service=self._ft.key
                ).inc()
                if attempts > policy.max_call_retries:
                    raise RecoveryError(
                        f"{operation}: state capture still failing after"
                        f" {attempts - 1} failovers"
                    ) from exc
                yield from self._promote(
                    primary, f"capture failed: {type(exc).__name__}"
                )
                continue
            yield from self._ship_payload(payload)
            return result

    # -- state shipping ----------------------------------------------------------------

    # analysis: atomic: digest bookkeeping + enqueue must not yield — a later capture interleaving would reorder ships
    def _prepare_ship(self, payload) -> Optional[_PendingShip]:
        data = self._encode_memo.encode(payload)
        digest = state_digest(data)
        if digest == self._last_digest:
            self.ship_skips += 1
            self._last_payload = payload
            return None
        delta = None
        delta_bytes = 0
        base_digest = self._last_digest
        if self._policy.checkpoint_deltas and self._last_payload is not None:
            candidate = compute_delta(self._last_payload, payload)
            if candidate is not None:
                delta_data = encode_any(candidate)
                if len(delta_data) < len(data):
                    delta = candidate
                    delta_bytes = len(delta_data)
        ship = _PendingShip(
            payload=payload,
            digest=digest,
            data_len=len(data),
            delta=delta,
            delta_bytes=delta_bytes,
            base_digest=base_digest,
        )
        self._last_payload = payload
        self._last_digest = digest
        return ship

    def _ship_payload(self, payload):
        if self._policy.checkpoint_mode == "pipelined":
            # Backpressure mirrors the pipelined checkpoint path: a new
            # capture stalls once the in-flight window is full.
            while (
                len(self._ship_inflight)
                >= self._policy.checkpoint_pipeline_depth
            ):
                self.ship_stalls += 1
                yield self._ship_inflight[0].future
            ship = self._prepare_ship(payload)
            if ship is None:
                return
            ship.future = self._orb.sim.future(
                label=f"ft-ship:{self.group_id}"
            )
            prev = (
                self._ship_inflight[-1].future
                if self._ship_inflight
                else None
            )
            self._ship_inflight.append(ship)
            self._orb.host.spawn(
                self._ship_bg(ship, prev), name=f"ft-ship:{self.group_id}"
            )
            return
        ship = self._prepare_ship(payload)
        if ship is None:
            return
        yield from self._ship_to_standbys(ship)

    def _ship_bg(self, ship: _PendingShip, prev_future):
        try:
            if prev_future is not None:
                yield prev_future  # FIFO: ships reach standbys in order
            yield from self._ship_to_standbys(ship)
        finally:
            try:
                self._ship_inflight.remove(ship)
            except ValueError:
                pass
            ship.future.try_succeed(None)

    def _ship_to_standbys(self, ship: _PendingShip):
        obs = self._orb.sim.obs
        for member in list(self.members[1:]):
            if member not in self.members:
                continue  # retired while this ship was in flight
            if member.acked_digest == ship.digest:
                continue
            use_delta = (
                ship.delta is not None
                and ship.base_digest is not None
                and member.acked_digest == ship.base_digest
            )
            try:
                if use_delta:
                    envelope = {
                        SHIP_DELTA_MARK: ship.delta,
                        "base": ship.base_digest,
                        "target": ship.digest,
                    }
                    try:
                        yield self._invoke(
                            member.ior, "restore_from", (envelope,)
                        )
                    except BadDeltaBase:
                        self.delta_fallbacks += 1
                        yield self._invoke(
                            member.ior, "restore_from", (ship.payload,)
                        )
                        self.state_ships_full += 1
                        self.ship_bytes += ship.data_len
                    else:
                        self.state_ships_delta += 1
                        self.ship_bytes += ship.delta_bytes
                else:
                    yield self._invoke(
                        member.ior, "restore_from", (ship.payload,)
                    )
                    self.state_ships_full += 1
                    self.ship_bytes += ship.data_len
            # analysis: ignore[EXC003]: a dead standby reduces redundancy, not correctness — retired and backfilled in the background
            except RECOVERABLE:
                self._retire(member, "state ship failed")
                self._schedule_replacement()
                continue
            member.acked_digest = ship.digest
        obs.metrics.counter(
            "ft_state_ships_total", group=self.group_id
        ).inc()

    def _drain_ships(self):
        while self._ship_inflight:
            yield self._ship_inflight[-1].future

    def drain(self):
        yield from self._drain_ships()

    # -- failover ----------------------------------------------------------------------

    def _handle_dead_lead(self, reason: str):
        if self.members:
            yield from self._promote(self.members[0], reason)

    def _promote(self, dead: _Member, reason: str):
        """Generator: fail over to a standby — no checkpoint-store round
        trip; at most one state sync when the standby missed a ship."""
        sim = self._orb.sim
        started = sim.now
        yield from self._drain_ships()
        if dead in self.members:
            self._retire(dead, reason)
        candidate = self._pick_candidate()
        while True:
            if candidate is None:
                # Last resort: every standby is gone too — re-provision
                # from the client-held envelope (still no store involved).
                member_ior = yield from self._recovery.provision_member(
                    self._ft,
                    self.group_id,
                    exclude_hosts=frozenset((dead.ior.host,)),
                    seed_state=self._last_payload,
                )
                if member_ior is None:
                    raise RecoveryError(
                        f"no standby left to promote in group"
                        f" {self.group_id}"
                    )
                candidate = _Member(
                    member_ior, acked_digest=self._last_digest
                )
                self.members.append(candidate)
            if (
                self._last_payload is not None
                and candidate.acked_digest != self._last_digest
            ):
                # The standby missed the newest ship: sync it before it
                # takes traffic (its reply cache rides in the envelope).
                try:
                    yield self._invoke(
                        candidate.ior, "restore_from", (self._last_payload,)
                    )
                    candidate.acked_digest = self._last_digest
                # analysis: ignore[EXC003]: the chosen standby is dead too — retired, and the loop picks the next candidate
                except RECOVERABLE:
                    self._retire(candidate, "promotion sync failed")
                    candidate = self._pick_candidate()
                    continue
            break
        if candidate in self.members:
            self.members.remove(candidate)
        self.members.insert(0, candidate)
        # Naming swap: bind_service/unbind_service invalidate the resolve
        # cache server-side, so no resolver can be handed the dead
        # incarnation after this point.
        yield from self._recovery._swap_group_binding(
            self._ft, dead.ior, candidate.ior
        )
        self._proxy._rebind(candidate.ior)
        self._watch_lead()
        self.promotions += 1
        elapsed = sim.now - started
        sim.obs.metrics.counter(
            "ft_promotions_total", group=self.group_id
        ).inc()
        sim.obs.metrics.histogram(
            "ft_failover_seconds", group=self.group_id
        ).observe(elapsed)
        sim.trace.emit(
            "ft",
            "standby promoted",
            group=self.group_id,
            new_primary=candidate.ior.host,
            reason=reason,
            seconds=elapsed,
        )
        self._schedule_replacement()

    def _pick_candidate(self) -> Optional[_Member]:
        if not self.members:
            return None
        breakers = self._recovery.breakers
        if breakers is not None:
            for member in self.members:
                # available() is the non-mutating view: picking a standby
                # must not consume half-open probe slots.
                if breakers.available(member.ior.host):
                    return member
        return self.members[0]


class ActiveGroup(ReplicaGroup):
    """Every replica executes every call; replies are quorum-voted.

    Up to ``r - quorum`` replica failures are masked with zero failover
    latency.  Votable outcomes are normal results *and* user exceptions
    (a deterministic business error must win the vote, not trigger
    recovery); RECOVERABLE failures count against nobody and retire the
    replica.  Duplicate suppression makes a retried round idempotent on
    every replica that already applied it.
    """

    mode = "active"

    def call(self, operation: str, args: tuple):
        yield from self.ensure_provisioned()
        sim = self._orb.sim
        policy = self._policy
        self.calls += 1
        contexts = self._next_request_context()
        quorum = policy.effective_quorum()
        attempts = 0
        while True:
            if not self.members:
                raise RecoveryError(
                    f"replica group {self.group_id} has no members left"
                )
            if len(self.members) < quorum:
                # Not enough voters: replace first, then run the round.
                yield from self._replace_now()
                if len(self.members) < quorum:
                    raise RecoveryError(
                        f"group {self.group_id} cannot reach quorum"
                        f" {quorum} with {len(self.members)} member(s)"
                    )
            outcome = yield from self._vote_round(
                operation, args, contexts, quorum
            )
            if outcome is not None:
                kind, value = outcome
                if kind == "uexc":
                    raise value
                return value
            attempts += 1
            self._ft.retries += 1
            sim.obs.metrics.counter(
                "ft_retries_total", service=self._ft.key
            ).inc()
            if attempts > policy.max_call_retries:
                raise RecoveryError(
                    f"{operation}: no vote quorum after {attempts} round(s)"
                    f" in group {self.group_id}"
                )
            yield from self._replace_now()

    def _vote_round(
        self, operation: str, args: tuple, contexts: tuple, quorum: int
    ):
        """Generator: one voting round.  Returns ``(kind, value)`` once
        ``quorum`` identical votable outcomes agree, else None (the dead
        voters have been retired; the caller replaces and retries)."""
        sim = self._orb.sim
        started = sim.now
        self.vote_rounds += 1
        cohort = list(self.members)
        pending = [
            self._outcome(member, operation, args, contexts)
            for member in cohort
        ]
        results: list[tuple] = []
        buckets: dict[str, int] = {}
        values: dict[str, tuple] = {}
        winner_key = None
        while pending:
            index, settled = yield sim.any_of(pending)
            pending.pop(index)
            results.append(settled)
            _member, kind, payload = settled
            if kind in ("ok", "uexc"):
                key = f"{kind}:{payload!r}"
                buckets[key] = buckets.get(key, 0) + 1
                values[key] = (kind, payload)
                if buckets[key] >= quorum:
                    winner_key = key
                    break
        if winner_key is None:
            # Everyone answered, nobody agreed with quorum strength.
            # Retire the dead; surface a non-recoverable error directly
            # (burning retry rounds on a MARSHAL bug helps no one).
            hard_error = None
            for member, kind, payload in results:
                if kind != "err":
                    continue
                if isinstance(payload, RECOVERABLE):
                    if member in self.members:
                        self._retire(member, "vote: no reply")
                elif hard_error is None:
                    hard_error = payload
            yield from self._rebind_lead()
            if hard_error is not None and not any(
                kind in ("ok", "uexc") for _m, kind, _p in results
            ):
                raise hard_error
            return None
        self.votes += 1
        elapsed = sim.now - started
        sim.obs.metrics.histogram(
            "ft_vote_quorum_seconds", group=self.group_id
        ).observe(elapsed)
        # Stragglers settle in the background: the finisher retires dead
        # members, resyncs divergent ones and backfills — after the
        # caller has already resumed with the quorum value.
        self._orb.host.spawn(
            self._finish_round(pending, results, winner_key),
            name=f"ft-vote-finish:{self.group_id}",
        )
        return values[winner_key]

    def _outcome(
        self, member: _Member, operation: str, args: tuple, contexts: tuple
    ) -> "SimFuture":
        """A future that always *succeeds* with ``(member, kind, payload)``
        so a vote can aggregate replies and failures uniformly."""
        sim = self._orb.sim
        outcome = sim.future(label=f"ft-vote:{member.ior.host}")
        inner = self._invoke(member.ior, operation, args, contexts)

        def settle(future, member=member):
            if not future.failed:
                outcome.try_succeed((member, "ok", future.value))
            elif isinstance(future.exception, UserException):
                outcome.try_succeed((member, "uexc", future.exception))
            else:
                outcome.try_succeed((member, "err", future.exception))

        inner.add_done_callback(settle)
        return outcome

    def _finish_round(self, pending: list, results: list, winner_key: str):
        yield self._proxy._ft_lock.acquire()
        try:
            sim = self._orb.sim
            while pending:
                index, settled = yield sim.any_of(pending)
                pending.pop(index)
                results.append(settled)
            winners = []
            for member, kind, payload in results:
                if (
                    kind in ("ok", "uexc")
                    and f"{kind}:{payload!r}" == winner_key
                ):
                    winners.append(member)
            for member, kind, payload in results:
                if member not in self.members or member in winners:
                    continue
                if kind == "err" and isinstance(payload, RECOVERABLE):
                    self._retire(member, "vote: no reply")
                    continue
                # Divergent reply: the replica computed something else —
                # resync its state (and reply cache) from a winner.
                self.divergences += 1
                sim.obs.metrics.counter(
                    "ft_vote_divergences_total", group=self.group_id
                ).inc()
                yield from self._resync(member, winners)
            yield from self._rebind_lead()
            yield from self._replace_now()
        finally:
            self._proxy._ft_lock.release()

    def _resync(self, member: _Member, winners: list):
        source = next(
            (winner for winner in winners if winner in self.members), None
        )
        if source is None:
            self._retire(member, "divergent with no sync source")
            return
        try:
            payload = yield self._invoke(source.ior, "get_checkpoint", ())
            yield self._invoke(member.ior, "restore_from", (payload,))
        # analysis: ignore[EXC003]: an unreachable divergent replica is retired — replacement restores redundancy
        except RECOVERABLE:
            self._retire(member, "divergence resync failed")
            return
        self.resyncs += 1

    def _rebind_lead(self):
        """Generator: keep naming + the proxy pointed at a live member
        after the previous lead was retired."""
        if not self.members:
            return
        lead = self.members[0].ior
        current = self._proxy.ior
        if current == lead:
            return
        self.lead_changes += 1
        yield from self._recovery._swap_group_binding(
            self._ft, current, lead
        )
        self._proxy._rebind(lead)
        self._watch_lead()

    def _capture_seed(self):
        # A replacement voter needs current state *including* the reply
        # cache, or a replayed round would double-apply on it.
        for member in list(self.members):
            try:
                payload = yield self._invoke(
                    member.ior, "get_checkpoint", ()
                )
            # analysis: ignore[EXC003]: seed capture tries each live member in turn; total failure falls back to the last client-held envelope
            except RECOVERABLE:
                continue
            self._last_payload = payload
            self._last_digest = None
            return payload
        return self._last_payload

    def _handle_dead_lead(self, reason: str):
        dead = self.members[0]
        self._retire(dead, reason)
        yield from self._rebind_lead()
        yield from self._replace_now()


def build_group(proxy) -> ReplicaGroup:
    """Build the replica group matching the proxy's ``policy.ft_mode``."""
    mode = proxy._ft.policy.ft_mode
    if mode == "warm-passive":
        return WarmPassiveGroup(proxy)
    if mode == "active":
        return ActiveGroup(proxy)
    raise ConfigurationError(f"ft_mode {mode!r} does not use replica groups")
