"""Fault-tolerance object proxies — generated, not hand-written.

The paper's design alternative (c): "introduction of proxy classes derived
from the stub classes on the client side ... This proxy class is derived
from the stub class and therefore provides all of the methods of the stub
class.  The additional methods handle the creation of a checkpoint and the
restoring of an object's state according to a checkpoint."

And its automation remark: "With the current implementation, the proxy
class for each service class has to be implemented manually.  This could be
easily automated by parsing the class definition."  :func:`make_ft_proxy`
*is* that automation — it walks the stub's operation table (which came from
the IDL) and generates the wrapped methods.

Per wrapped call the proxy:

1. invokes the operation through the normal stub path;
2. on ``COMM_FAILURE`` (or ``OBJECT_NOT_EXIST``/``TRANSIENT``) runs the
   recovery coordinator — re-resolve, re-create, restore checkpoint,
   rebind — and retries the call (bounded);
3. after success, fetches a checkpoint from the server
   (``get_checkpoint``) and stores it in the checkpoint storage service
   (every call by default; every k-th with ``checkpoint_interval=k``).

The checkpoint *fast path* (off by default — the paper's fully synchronous
step 3 is what Table 1 measures) splits step 3 in two:

- ``checkpoint_mode="pipelined"`` — the caller's future is resolved as
  soon as the invocation succeeds.  The state fetch still runs under the
  per-proxy lock (a snapshot must not observe effects of a later call),
  but the store round-trip runs in a background process, FIFO-chained so
  versions arrive at the store in order, with at most
  ``checkpoint_pipeline_depth`` stores outstanding.
- ``checkpoint_deltas=True`` — consecutive states are diffed; only the
  changed entries ship (``store_delta``), with a content-hash skip when
  nothing changed at all and a full snapshot every
  ``checkpoint_full_interval``-th checkpoint to bound the restore chain.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.errors import RecoveryError
from repro.ft.checkpointable import CHECKPOINT_OPERATIONS
from repro.ft.policy import FtPolicy
from repro.ft.recovery import RECOVERABLE, RecoveryCoordinator
from repro.orb.cdr import AnyEncodeMemo, encode_any
from repro.orb.stubs import ObjectStub
from repro.services.checkpoint import (
    BadDeltaBase,
    compute_delta,
    state_digest,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import SimFuture


@dataclass
class _PendingCheckpoint:
    """A captured-but-not-yet-persisted checkpoint."""

    version: int
    state: object
    #: encoded full state (delta mode only; None on the paper path, which
    #: leaves all marshalling to the stub layer).
    data: Optional[bytes] = None
    #: delta payload against ``base_version`` (None = ship the full state).
    delta: Optional[dict] = None
    delta_bytes: int = 0
    base_version: int = -1
    #: resolved (always with None) when the background persist finishes —
    #: the pipeline window, drains and recovery wait on this.
    future: Optional["SimFuture"] = None


@dataclass
class FtContext:
    """Per-proxy fault-tolerance state.

    :param key: logical identity of the service instance — the checkpoint
        key (survives re-creations on other hosts).
    :param type_name: factory type used to re-create the servant.
    :param store: CheckpointStore stub (None = no checkpointing).
    :param recovery: RecoveryCoordinator (None = failures propagate).
    :param group_name: optional naming-service group to keep updated when
        the replica moves.
    """

    key: str
    type_name: str = ""
    store: Optional[object] = None
    recovery: Optional[RecoveryCoordinator] = None
    policy: FtPolicy = field(default_factory=FtPolicy)
    group_name: Optional[str] = None
    #: replica group (built by the proxy when ``policy.ft_mode`` selects
    #: a replication mode; None on the paper's checkpoint path).
    group: Optional[object] = None
    # runtime counters
    calls: int = 0
    checkpoints_taken: int = 0
    retries: int = 0
    _calls_since_checkpoint: int = 0
    _versions: itertools.count = field(default_factory=lambda: itertools.count(1))
    #: degraded mode: ``(version, state)`` checkpoints captured while the
    #: storage service was unreachable, oldest first.  Flushed (in order)
    #: the next time the store answers; recovery restores from the newest
    #: entry when it beats the store's copy.
    buffered_checkpoints: list = field(default_factory=list)
    checkpoints_buffered: int = 0
    checkpoints_flushed: int = 0
    #: pipelined mode: captures whose store round-trip is still running,
    #: oldest first (persists are FIFO-chained, so they also *finish* in
    #: this order).
    inflight_checkpoints: list = field(default_factory=list)
    pipeline_stalls: int = 0
    pipeline_peak_depth: int = 0
    #: delta-mode counters: stores skipped outright (state unchanged),
    #: deltas vs. full snapshots shipped, and deltas the store rejected
    #: (``BadDeltaBase`` → resent as fulls).
    checkpoints_skipped: int = 0
    deltas_sent: int = 0
    fulls_sent: int = 0
    delta_fallbacks: int = 0
    #: encoded payload bytes shipped to the store (delta mode).
    checkpoint_bytes_shipped: int = 0
    #: pipelined + ``on_checkpoint_failure="raise"``: a background persist
    #: failure parks here and fails the *next* wrapped call (the one it
    #: belonged to was already acknowledged).
    _pipeline_error: Optional[BaseException] = None
    # delta/skip base: the last state whose persist was handed to the
    # store, its content digest and version.  Reset on persist failure so
    # a skip or delta never references content the store lost.
    _last_state: Optional[object] = None
    _last_digest: Optional[str] = None
    _last_version: int = 0
    _deltas_since_full: int = 0
    _encode_memo: AnyEncodeMemo = field(default_factory=AnyEncodeMemo)

    @property
    def degraded(self) -> bool:
        """True while checkpoints are parked client-side."""
        return bool(self.buffered_checkpoints)

    @property
    def pipeline_depth(self) -> int:
        """Stores currently in flight (pipelined mode)."""
        return len(self.inflight_checkpoints)

    def latest_buffered(self):
        """Newest buffered ``(version, state)`` or None."""
        return self.buffered_checkpoints[-1] if self.buffered_checkpoints else None


class _FtProxyBase:
    """Mixin holding the wrapped-call machinery (stub class is mixed in by
    :func:`make_ft_proxy`).

    Wrapped calls, checkpoints and migrations of one proxy are serialized
    through a per-proxy FIFO lock: the paper's "checkpoint after each
    method call" is only meaningful if snapshots cannot interleave with
    other calls on the same object.
    """

    def __init__(self, orb, ior, ft: FtContext) -> None:
        from repro.sim.sync import Lock

        ObjectStub.__init__(self, orb, ior)
        self._ft = ft
        self._ft_lock = Lock(orb.sim, name=f"ft:{ft.key}")
        if ft.policy.ft_mode != "checkpoint" and ft.group is None:
            from repro.ft.replication import build_group

            ft.group = build_group(self)

    # -- the wrapped invocation path ------------------------------------------------

    def _ft_call(self, operation: str, args: tuple) -> "SimFuture":
        orb = self._orb
        outer = orb.sim.future(label=f"ft:{operation}")
        process = orb.host.spawn(
            self._ft_call_proc(operation, args, outer), name=f"ft:{operation}"
        )
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def _ft_call_proc(self, operation: str, args: tuple, outer):
        yield self._ft_lock.acquire()
        try:
            yield from self._ft_call_locked(operation, args, outer)
        finally:
            self._ft_lock.release()

    def _ft_call_locked(self, operation: str, args: tuple, outer):
        ft = self._ft
        policy = ft.policy
        obs = self._orb.sim.obs
        attempts = 0
        # The root span of the logical call: every retry, recovery step and
        # checkpoint below shares its trace id (the context rides on this
        # process and propagates over the wire via the GIOP service context).
        with obs.tracer.span(
            f"ft:{operation}", host=self._orb.host.name, service=ft.key
        ) as span:
            if ft.group is not None:
                # Replication modes: the group owns retry, failover and
                # state transfer; no checkpoint store is involved.
                span.set_attr("mode", policy.ft_mode)
                result = yield from ft.group.call(operation, args)
                ft.calls += 1
                obs.metrics.counter("ft_calls_total", service=ft.key).inc()
                outer.try_succeed(result)
                return
            if ft._pipeline_error is not None:
                error = ft._pipeline_error
                ft._pipeline_error = None
                span.mark_error(error)
                outer.try_fail(error)
                return
            while True:
                try:
                    result = yield ObjectStub._invoke(self, operation, args)
                    break
                except RECOVERABLE as exc:
                    attempts += 1
                    ft.retries += 1
                    obs.metrics.counter(
                        "ft_retries_total", service=ft.key
                    ).inc()
                    if ft.recovery is None:
                        span.mark_error(exc)
                        outer.try_fail(exc)
                        return
                    if attempts > policy.max_call_retries:
                        error = RecoveryError(
                            f"{operation} still failing after {attempts - 1} "
                            f"recoveries"
                        )
                        span.mark_error(error)
                        outer.try_fail(error)
                        return
                    try:
                        yield from ft.recovery.recover(self)
                    except RecoveryError as recovery_error:
                        span.mark_error(recovery_error)
                        outer.try_fail(recovery_error)
                        return
            span.set_attr("attempts", attempts + 1)
            yield from self._after_success(span, outer, result)

    def _after_success(self, span, outer, result):
        """Generator: post-success bookkeeping plus the checkpoint step.

        Shared by the wrapped-stub path and the DII request-proxy path so
        the ``on_checkpoint_failure`` policy cannot diverge between them.
        Settles ``outer`` — in pipelined mode *before* the checkpoint work,
        otherwise after it (or fails it, per ``on_checkpoint_failure``).
        """
        ft = self._ft
        policy = ft.policy
        obs = self._orb.sim.obs
        ft.calls += 1
        obs.metrics.counter("ft_calls_total", service=ft.key).inc()
        ft._calls_since_checkpoint += 1
        if (
            ft.store is None
            or ft._calls_since_checkpoint < policy.checkpoint_interval
        ):
            outer.try_succeed(result)
            return
        if policy.checkpoint_mode == "pipelined":
            # The caller resumes now; capture + persist continue behind it
            # (capture under the lock, persist in the background).
            outer.try_succeed(result)
            yield from self._checkpoint_pipelined()
            return
        try:
            yield from self._take_checkpoint()
        except Exception as exc:  # noqa: BLE001 - policy decides
            if policy.on_checkpoint_failure == "raise":
                span.mark_error(exc)
                outer.try_fail(exc)
                return
            self._orb.sim.trace.emit(
                "ft",
                "checkpoint failed (ignored)",
                service=ft.key,
                error=type(exc).__name__,
            )
        outer.try_succeed(result)

    def _take_checkpoint(self):
        """Fetch state from the server and persist it in the store —
        synchronously (any in-flight pipelined stores drain first, so a
        forced checkpoint never commits out of order).

        In degraded mode (``on_checkpoint_failure="degraded"``) a storage
        failure buffers the checkpoint client-side instead of raising; the
        buffer is flushed, oldest first, as soon as the store answers
        again.
        """
        ft = self._ft
        obs = self._orb.sim.obs
        started = self._orb.sim.now
        yield from self._drain_pipeline()
        with obs.tracer.span(
            "ft:checkpoint", host=self._orb.host.name, service=ft.key
        ):
            state = yield ObjectStub._invoke(self, "get_checkpoint", ())
            pending = self._prepare_checkpoint(state)
            if pending is None:
                ft._calls_since_checkpoint = 0
                return
            if ft.policy.on_checkpoint_failure == "degraded":
                yield from self._store_or_buffer(pending)
            else:
                yield from self._store_pending(pending)
        ft.checkpoints_taken += 1
        ft._calls_since_checkpoint = 0
        obs.metrics.counter("ft_checkpoints_total", service=ft.key).inc()
        obs.metrics.histogram(
            "ft_checkpoint_seconds", service=ft.key
        ).observe(self._orb.sim.now - started)

    def _checkpoint_pipelined(self):
        """Pipelined step 3: capture the state under the proxy lock, then
        hand the store round-trip to a background process.

        The in-flight window is bounded: once ``checkpoint_pipeline_depth``
        stores are outstanding, the *capture* stalls (which in turn stalls
        the next call on this proxy — backpressure, not unbounded queueing).
        Persists are FIFO-chained on the previous persist's future so
        versions arrive at the store in order.
        """
        ft = self._ft
        policy = ft.policy
        orb = self._orb
        obs = orb.sim.obs
        while len(ft.inflight_checkpoints) >= policy.checkpoint_pipeline_depth:
            ft.pipeline_stalls += 1
            obs.metrics.counter(
                "ft_pipeline_stalls_total", service=ft.key
            ).inc()
            yield ft.inflight_checkpoints[0].future
        started = orb.sim.now
        with obs.tracer.span(
            "ft:checkpoint", host=orb.host.name, service=ft.key
        ):
            try:
                state = yield ObjectStub._invoke(self, "get_checkpoint", ())
            except Exception as exc:  # noqa: BLE001 - policy decides
                self._note_persist_failure(exc)
                return
            # analysis: atomic-begin(pipelined-capture)
            # Capture-to-enqueue must not yield: a second call's capture
            # interleaving between reading the FIFO tail and appending would
            # break the version ordering the store relies on.
            pending = self._prepare_checkpoint(state)
        ft._calls_since_checkpoint = 0
        if pending is None:
            return
        pending.future = orb.sim.future(
            label=f"ft-persist:{ft.key}:{pending.version}"
        )
        prev = (
            ft.inflight_checkpoints[-1].future
            if ft.inflight_checkpoints
            else None
        )
        ft.inflight_checkpoints.append(pending)
        depth = len(ft.inflight_checkpoints)
        ft.pipeline_peak_depth = max(ft.pipeline_peak_depth, depth)
        obs.metrics.gauge(
            "ft_checkpoint_pipeline_depth", service=ft.key
        ).set(depth)
        ft.checkpoints_taken += 1
        obs.metrics.counter("ft_checkpoints_total", service=ft.key).inc()
        orb.host.spawn(
            self._persist_pipelined(pending, prev, started),
            name=f"ft-persist:{ft.key}",
        )  # analysis: atomic-end(pipelined-capture)

    def _persist_pipelined(self, pending, prev_future, started):
        """Background half of a pipelined checkpoint.  Never lets an
        exception escape (the call it belongs to was already acknowledged):
        degraded mode buffers, raise mode parks the error for the next
        call, ignore mode traces.  Always resolves ``pending.future``."""
        ft = self._ft
        obs = self._orb.sim.obs
        try:
            if prev_future is not None:
                yield prev_future
            if ft.policy.on_checkpoint_failure == "degraded":
                yield from self._store_or_buffer(pending)
            else:
                try:
                    yield from self._store_pending(pending)
                except Exception as exc:  # noqa: BLE001 - policy decides
                    self._note_persist_failure(exc)
        finally:
            try:
                ft.inflight_checkpoints.remove(pending)
            except ValueError:
                pass
            obs.metrics.gauge(
                "ft_checkpoint_pipeline_depth", service=ft.key
            ).set(len(ft.inflight_checkpoints))
            obs.metrics.histogram(
                "ft_checkpoint_seconds", service=ft.key
            ).observe(self._orb.sim.now - started)
            pending.future.try_succeed(None)

    def _note_persist_failure(self, exc) -> None:
        ft = self._ft
        if ft.policy.on_checkpoint_failure == "raise":
            ft._pipeline_error = exc
        self._orb.sim.trace.emit(
            "ft",
            "checkpoint failed (pipelined)",
            service=ft.key,
            error=type(exc).__name__,
        )

    # analysis: atomic: version assignment + delta-base bookkeeping must be one indivisible step
    def _prepare_checkpoint(self, state) -> Optional[_PendingCheckpoint]:
        """Assign a version and (in delta mode) decide *what* to ship.

        Returns None when the state's content hash matches the last one the
        store received — nothing to do.  The skip and the delta path are
        both disabled while checkpoints are buffered client-side: with the
        store's latest version unknown, only full states are safe.
        """
        ft = self._ft
        policy = ft.policy
        obs = self._orb.sim.obs
        if not policy.checkpoint_deltas:
            return _PendingCheckpoint(version=next(ft._versions), state=state)
        data = ft._encode_memo.encode(state)
        digest = state_digest(data)
        if digest == ft._last_digest and not ft.buffered_checkpoints:
            ft.checkpoints_skipped += 1
            obs.metrics.counter(
                "ft_checkpoints_skipped_total", service=ft.key
            ).inc()
            return None
        version = next(ft._versions)
        pending = _PendingCheckpoint(version=version, state=state, data=data)
        if (
            ft._last_state is not None
            and not ft.buffered_checkpoints
            and ft._deltas_since_full < policy.checkpoint_full_interval - 1
        ):
            delta = compute_delta(ft._last_state, state)
            if delta is not None:
                delta_data = encode_any(delta)
                if len(delta_data) < len(data):
                    pending.delta = delta
                    pending.delta_bytes = len(delta_data)
                    pending.base_version = ft._last_version
        ft._deltas_since_full = (
            ft._deltas_since_full + 1 if pending.delta is not None else 0
        )
        ft._last_state = state
        ft._last_digest = digest
        ft._last_version = version
        return pending

    def _store_pending(self, pending: _PendingCheckpoint):
        """Ship one prepared checkpoint: the delta if we have one (falling
        back to a full store when the server rejects its base), otherwise
        the full state.  On failure, forget the delta/skip base — its
        content never reached the store — and re-raise."""
        ft = self._ft
        obs = self._orb.sim.obs
        try:
            if pending.delta is not None:
                try:
                    yield ft.store.store_delta(
                        ft.key,
                        pending.base_version,
                        pending.version,
                        pending.delta,
                    )
                except BadDeltaBase:
                    ft.delta_fallbacks += 1
                    obs.metrics.counter(
                        "ft_checkpoint_delta_fallbacks_total", service=ft.key
                    ).inc()
                else:
                    ft.deltas_sent += 1
                    ft.checkpoint_bytes_shipped += pending.delta_bytes
                    obs.metrics.counter(
                        "ft_checkpoint_deltas_total", service=ft.key
                    ).inc()
                    obs.metrics.counter(
                        "ft_checkpoint_bytes_total", service=ft.key, kind="delta"
                    ).inc(pending.delta_bytes)
                    return
            yield ft.store.store(ft.key, pending.version, pending.state)
            ft.fulls_sent += 1
            obs.metrics.counter(
                "ft_checkpoint_fulls_total", service=ft.key
            ).inc()
            if pending.data is not None:
                ft.checkpoint_bytes_shipped += len(pending.data)
                obs.metrics.counter(
                    "ft_checkpoint_bytes_total", service=ft.key, kind="full"
                ).inc(len(pending.data))
        except Exception:
            ft._last_state = None
            ft._last_digest = None
            raise

    def _store_or_buffer(self, pending: _PendingCheckpoint):
        """Degraded-mode store: flush any buffered checkpoints, then store
        the new one; on a storage failure, park it client-side (the call it
        belongs to has already succeeded — losing the *call* to a storage
        outage would invert the fault-tolerance guarantee)."""
        from repro.errors import SystemException

        ft = self._ft
        obs = self._orb.sim.obs
        was_degraded = ft.degraded
        try:
            while ft.buffered_checkpoints:
                pending_version, pending_state = ft.buffered_checkpoints[0]
                yield ft.store.store(ft.key, pending_version, pending_state)
                ft.buffered_checkpoints.pop(0)
                ft.checkpoints_flushed += 1
                obs.metrics.counter(
                    "ft_checkpoints_flushed_total", service=ft.key
                ).inc()
            yield from self._store_pending(pending)
        # analysis: ignore[EXC003]: buffering IS the degraded-mode handling — the flush loop retries on the next checkpoint
        except SystemException as exc:
            ft.buffered_checkpoints.append((pending.version, pending.state))
            del ft.buffered_checkpoints[: -ft.policy.checkpoint_buffer_limit]
            ft.checkpoints_buffered += 1
            obs.metrics.counter(
                "ft_checkpoints_buffered_total", service=ft.key
            ).inc()
            self._orb.sim.trace.emit(
                "ft",
                "checkpoint buffered (store unreachable)",
                service=ft.key,
                version=pending.version,
                error=type(exc).__name__,
            )
        else:
            if was_degraded:
                self._orb.sim.trace.emit(
                    "ft", "checkpoint buffer drained", service=ft.key
                )
        obs.metrics.gauge(
            "ft_checkpoint_buffer_depth", service=ft.key
        ).set(len(ft.buffered_checkpoints))

    def _drain_pipeline(self):
        """Generator: wait until no pipelined persists are in flight.
        Callers hold the proxy lock, so no new captures can slip in."""
        ft = self._ft
        while ft.inflight_checkpoints:
            yield ft.inflight_checkpoints[-1].future

    # -- manual controls (used by migration and tests) ----------------------------------

    def provision_now(self) -> "SimFuture":
        """Provision the replica group eagerly (replication modes) instead
        of on the first wrapped call.  A no-op in checkpoint mode."""
        orb = self._orb
        outer = orb.sim.future(label=f"ft-provision:{self._ft.key}")

        def run():
            yield self._ft_lock.acquire()
            try:
                if self._ft.group is not None:
                    yield from self._ft.group.ensure_provisioned()
            finally:
                self._ft_lock.release()
            outer.try_succeed(None)

        process = orb.host.spawn(run(), name="ft-provision")
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def checkpoint_now(self) -> "SimFuture":
        """Force an immediate synchronous checkpoint of the current server
        state (in pipelined mode, after draining in-flight stores)."""
        orb = self._orb
        outer = orb.sim.future(label=f"ft-checkpoint:{self._ft.key}")

        def run():
            yield self._ft_lock.acquire()
            try:
                yield from self._take_checkpoint()
            finally:
                self._ft_lock.release()
            outer.try_succeed(None)

        process = orb.host.spawn(run(), name="ft-checkpoint")
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def drain_checkpoints(self) -> "SimFuture":
        """Wait until every pipelined checkpoint store has settled (stored,
        buffered, or noted as failed).  A no-op in sync mode."""
        orb = self._orb
        outer = orb.sim.future(label=f"ft-drain:{self._ft.key}")

        def run():
            yield self._ft_lock.acquire()
            try:
                yield from self._drain_pipeline()
                if self._ft.group is not None:
                    yield from self._ft.group.drain()
            finally:
                self._ft_lock.release()
            outer.try_succeed(None)

        process = orb.host.spawn(run(), name="ft-drain")
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer


def make_ft_proxy(stub_class: type, name: Optional[str] = None) -> type:
    """Generate a fault-tolerance proxy class derived from ``stub_class``.

    Every operation in the stub's table is wrapped with the
    checkpoint/recover/retry logic except the checkpoint machinery itself
    (``get_checkpoint``/``restore_from``), which must use the raw path.

    The generated class is instantiated as ``Proxy(orb, ior, ft_context)``.
    """
    if not issubclass(stub_class, ObjectStub):
        raise TypeError(f"{stub_class.__name__} is not a stub class")
    namespace: dict = {}
    for operation in stub_class.__operations__:
        if operation in CHECKPOINT_OPERATIONS:
            continue

        def wrapped(self, *args, __operation=operation):
            return self._ft_call(__operation, args)

        info = stub_class.__operations__[operation]
        wrapped.__name__ = operation
        wrapped.__doc__ = (
            f"Fault-tolerant invocation of ``{operation}"
            f"({', '.join(info.param_names)})``."
        )
        # Attribute accessors live under their stub method names.
        if operation.startswith("_get_"):
            namespace[f"get_{operation[5:]}"] = wrapped
        elif operation.startswith("_set_"):
            namespace[f"set_{operation[5:]}"] = wrapped
        else:
            namespace[operation] = wrapped
    namespace["__init__"] = _FtProxyBase.__init__
    proxy_name = name or stub_class.__name__.replace("Stub", "") + "FtProxy"
    return type(proxy_name, (_FtProxyBase, stub_class), namespace)
