"""Fault-tolerance object proxies — generated, not hand-written.

The paper's design alternative (c): "introduction of proxy classes derived
from the stub classes on the client side ... This proxy class is derived
from the stub class and therefore provides all of the methods of the stub
class.  The additional methods handle the creation of a checkpoint and the
restoring of an object's state according to a checkpoint."

And its automation remark: "With the current implementation, the proxy
class for each service class has to be implemented manually.  This could be
easily automated by parsing the class definition."  :func:`make_ft_proxy`
*is* that automation — it walks the stub's operation table (which came from
the IDL) and generates the wrapped methods.

Per wrapped call the proxy:

1. invokes the operation through the normal stub path;
2. on ``COMM_FAILURE`` (or ``OBJECT_NOT_EXIST``/``TRANSIENT``) runs the
   recovery coordinator — re-resolve, re-create, restore checkpoint,
   rebind — and retries the call (bounded);
3. after success, fetches a checkpoint from the server
   (``get_checkpoint``) and stores it in the checkpoint storage service
   (every call by default; every k-th with ``checkpoint_interval=k``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.errors import RecoveryError
from repro.ft.checkpointable import CHECKPOINT_OPERATIONS
from repro.ft.policy import FtPolicy
from repro.ft.recovery import RECOVERABLE, RecoveryCoordinator
from repro.orb.stubs import ObjectStub

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import SimFuture


@dataclass
class FtContext:
    """Per-proxy fault-tolerance state.

    :param key: logical identity of the service instance — the checkpoint
        key (survives re-creations on other hosts).
    :param type_name: factory type used to re-create the servant.
    :param store: CheckpointStore stub (None = no checkpointing).
    :param recovery: RecoveryCoordinator (None = failures propagate).
    :param group_name: optional naming-service group to keep updated when
        the replica moves.
    """

    key: str
    type_name: str = ""
    store: Optional[object] = None
    recovery: Optional[RecoveryCoordinator] = None
    policy: FtPolicy = field(default_factory=FtPolicy)
    group_name: Optional[str] = None
    # runtime counters
    calls: int = 0
    checkpoints_taken: int = 0
    retries: int = 0
    _calls_since_checkpoint: int = 0
    _versions: itertools.count = field(default_factory=lambda: itertools.count(1))
    #: degraded mode: ``(version, state)`` checkpoints captured while the
    #: storage service was unreachable, oldest first.  Flushed (in order)
    #: the next time the store answers; recovery restores from the newest
    #: entry when it beats the store's copy.
    buffered_checkpoints: list = field(default_factory=list)
    checkpoints_buffered: int = 0
    checkpoints_flushed: int = 0

    @property
    def degraded(self) -> bool:
        """True while checkpoints are parked client-side."""
        return bool(self.buffered_checkpoints)

    def latest_buffered(self):
        """Newest buffered ``(version, state)`` or None."""
        return self.buffered_checkpoints[-1] if self.buffered_checkpoints else None


class _FtProxyBase:
    """Mixin holding the wrapped-call machinery (stub class is mixed in by
    :func:`make_ft_proxy`).

    Wrapped calls, checkpoints and migrations of one proxy are serialized
    through a per-proxy FIFO lock: the paper's "checkpoint after each
    method call" is only meaningful if snapshots cannot interleave with
    other calls on the same object.
    """

    def __init__(self, orb, ior, ft: FtContext) -> None:
        from repro.sim.sync import Lock

        ObjectStub.__init__(self, orb, ior)
        self._ft = ft
        self._ft_lock = Lock(orb.sim, name=f"ft:{ft.key}")

    # -- the wrapped invocation path ------------------------------------------------

    def _ft_call(self, operation: str, args: tuple) -> "SimFuture":
        orb = self._orb
        outer = orb.sim.future(label=f"ft:{operation}")
        process = orb.host.spawn(
            self._ft_call_proc(operation, args, outer), name=f"ft:{operation}"
        )
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def _ft_call_proc(self, operation: str, args: tuple, outer):
        yield self._ft_lock.acquire()
        try:
            yield from self._ft_call_locked(operation, args, outer)
        finally:
            self._ft_lock.release()

    def _ft_call_locked(self, operation: str, args: tuple, outer):
        ft = self._ft
        policy = ft.policy
        obs = self._orb.sim.obs
        attempts = 0
        # The root span of the logical call: every retry, recovery step and
        # checkpoint below shares its trace id (the context rides on this
        # process and propagates over the wire via the GIOP service context).
        with obs.tracer.span(
            f"ft:{operation}", host=self._orb.host.name, service=ft.key
        ) as span:
            while True:
                try:
                    result = yield ObjectStub._invoke(self, operation, args)
                    break
                except RECOVERABLE as exc:
                    attempts += 1
                    ft.retries += 1
                    obs.metrics.counter(
                        "ft_retries_total", service=ft.key
                    ).inc()
                    if ft.recovery is None:
                        span.mark_error(exc)
                        outer.try_fail(exc)
                        return
                    if attempts > policy.max_call_retries:
                        error = RecoveryError(
                            f"{operation} still failing after {attempts - 1} "
                            f"recoveries"
                        )
                        span.mark_error(error)
                        outer.try_fail(error)
                        return
                    try:
                        yield from ft.recovery.recover(self)
                    except RecoveryError as recovery_error:
                        span.mark_error(recovery_error)
                        outer.try_fail(recovery_error)
                        return
            span.set_attr("attempts", attempts + 1)
            if not (yield from self._after_success(span, outer)):
                return
            outer.try_succeed(result)

    def _after_success(self, span, outer):
        """Generator: post-success bookkeeping plus the checkpoint step.

        Shared by the wrapped-stub path and the DII request-proxy path so
        the ``on_checkpoint_failure`` policy cannot diverge between them.
        Returns False when ``outer`` was failed (caller must bail out
        without succeeding it).
        """
        ft = self._ft
        policy = ft.policy
        obs = self._orb.sim.obs
        ft.calls += 1
        obs.metrics.counter("ft_calls_total", service=ft.key).inc()
        ft._calls_since_checkpoint += 1
        if (
            ft.store is None
            or ft._calls_since_checkpoint < policy.checkpoint_interval
        ):
            return True
        try:
            yield from self._take_checkpoint()
        except Exception as exc:  # noqa: BLE001 - policy decides
            if policy.on_checkpoint_failure == "raise":
                span.mark_error(exc)
                outer.try_fail(exc)
                return False
            self._orb.sim.trace.emit(
                "ft",
                "checkpoint failed (ignored)",
                service=ft.key,
                error=type(exc).__name__,
            )
        return True

    def _take_checkpoint(self):
        """Fetch state from the server and persist it in the store.

        In degraded mode (``on_checkpoint_failure="degraded"``) a storage
        failure buffers the checkpoint client-side instead of raising; the
        buffer is flushed, oldest first, as soon as the store answers
        again.
        """
        ft = self._ft
        obs = self._orb.sim.obs
        started = self._orb.sim.now
        with obs.tracer.span(
            "ft:checkpoint", host=self._orb.host.name, service=ft.key
        ):
            state = yield ObjectStub._invoke(self, "get_checkpoint", ())
            version = next(ft._versions)
            if ft.policy.on_checkpoint_failure == "degraded":
                yield from self._store_or_buffer(version, state)
            else:
                yield ft.store.store(ft.key, version, state)
        ft.checkpoints_taken += 1
        ft._calls_since_checkpoint = 0
        obs.metrics.counter("ft_checkpoints_total", service=ft.key).inc()
        obs.metrics.histogram(
            "ft_checkpoint_seconds", service=ft.key
        ).observe(self._orb.sim.now - started)

    def _store_or_buffer(self, version, state):
        """Degraded-mode store: flush any buffered checkpoints, then store
        the new one; on a storage failure, park it client-side (the call it
        belongs to has already succeeded — losing the *call* to a storage
        outage would invert the fault-tolerance guarantee)."""
        from repro.errors import SystemException

        ft = self._ft
        obs = self._orb.sim.obs
        was_degraded = ft.degraded
        try:
            while ft.buffered_checkpoints:
                pending_version, pending_state = ft.buffered_checkpoints[0]
                yield ft.store.store(ft.key, pending_version, pending_state)
                ft.buffered_checkpoints.pop(0)
                ft.checkpoints_flushed += 1
                obs.metrics.counter(
                    "ft_checkpoints_flushed_total", service=ft.key
                ).inc()
            yield ft.store.store(ft.key, version, state)
        except SystemException as exc:
            ft.buffered_checkpoints.append((version, state))
            del ft.buffered_checkpoints[: -ft.policy.checkpoint_buffer_limit]
            ft.checkpoints_buffered += 1
            obs.metrics.counter(
                "ft_checkpoints_buffered_total", service=ft.key
            ).inc()
            self._orb.sim.trace.emit(
                "ft",
                "checkpoint buffered (store unreachable)",
                service=ft.key,
                version=version,
                error=type(exc).__name__,
            )
        else:
            if was_degraded:
                self._orb.sim.trace.emit(
                    "ft", "checkpoint buffer drained", service=ft.key
                )
        obs.metrics.gauge(
            "ft_checkpoint_buffer_depth", service=ft.key
        ).set(len(ft.buffered_checkpoints))

    # -- manual controls (used by migration and tests) ----------------------------------

    def checkpoint_now(self) -> "SimFuture":
        """Force an immediate checkpoint of the current server state."""
        orb = self._orb
        outer = orb.sim.future(label=f"ft-checkpoint:{self._ft.key}")

        def run():
            yield self._ft_lock.acquire()
            try:
                yield from self._take_checkpoint()
            finally:
                self._ft_lock.release()
            outer.try_succeed(None)

        process = orb.host.spawn(run(), name="ft-checkpoint")
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer


def make_ft_proxy(stub_class: type, name: Optional[str] = None) -> type:
    """Generate a fault-tolerance proxy class derived from ``stub_class``.

    Every operation in the stub's table is wrapped with the
    checkpoint/recover/retry logic except the checkpoint machinery itself
    (``get_checkpoint``/``restore_from``), which must use the raw path.

    The generated class is instantiated as ``Proxy(orb, ior, ft_context)``.
    """
    if not issubclass(stub_class, ObjectStub):
        raise TypeError(f"{stub_class.__name__} is not a stub class")
    namespace: dict = {}
    for operation in stub_class.__operations__:
        if operation in CHECKPOINT_OPERATIONS:
            continue

        def wrapped(self, *args, __operation=operation):
            return self._ft_call(__operation, args)

        info = stub_class.__operations__[operation]
        wrapped.__name__ = operation
        wrapped.__doc__ = (
            f"Fault-tolerant invocation of ``{operation}"
            f"({', '.join(info.param_names)})``."
        )
        # Attribute accessors live under their stub method names.
        if operation.startswith("_get_"):
            namespace[f"get_{operation[5:]}"] = wrapped
        elif operation.startswith("_set_"):
            namespace[f"set_{operation[5:]}"] = wrapped
        else:
            namespace[operation] = wrapped
    namespace["__init__"] = _FtProxyBase.__init__
    proxy_name = name or stub_class.__name__.replace("Stub", "") + "FtProxy"
    return type(proxy_name, (_FtProxyBase, stub_class), namespace)
