"""Fault-tolerance object proxies — generated, not hand-written.

The paper's design alternative (c): "introduction of proxy classes derived
from the stub classes on the client side ... This proxy class is derived
from the stub class and therefore provides all of the methods of the stub
class.  The additional methods handle the creation of a checkpoint and the
restoring of an object's state according to a checkpoint."

And its automation remark: "With the current implementation, the proxy
class for each service class has to be implemented manually.  This could be
easily automated by parsing the class definition."  :func:`make_ft_proxy`
*is* that automation — it walks the stub's operation table (which came from
the IDL) and generates the wrapped methods.

Per wrapped call the proxy:

1. invokes the operation through the normal stub path;
2. on ``COMM_FAILURE`` (or ``OBJECT_NOT_EXIST``/``TRANSIENT``) runs the
   recovery coordinator — re-resolve, re-create, restore checkpoint,
   rebind — and retries the call (bounded);
3. after success, fetches a checkpoint from the server
   (``get_checkpoint``) and stores it in the checkpoint storage service
   (every call by default; every k-th with ``checkpoint_interval=k``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.errors import RecoveryError
from repro.ft.checkpointable import CHECKPOINT_OPERATIONS
from repro.ft.policy import FtPolicy
from repro.ft.recovery import RECOVERABLE, RecoveryCoordinator
from repro.orb.stubs import ObjectStub

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import SimFuture


@dataclass
class FtContext:
    """Per-proxy fault-tolerance state.

    :param key: logical identity of the service instance — the checkpoint
        key (survives re-creations on other hosts).
    :param type_name: factory type used to re-create the servant.
    :param store: CheckpointStore stub (None = no checkpointing).
    :param recovery: RecoveryCoordinator (None = failures propagate).
    :param group_name: optional naming-service group to keep updated when
        the replica moves.
    """

    key: str
    type_name: str = ""
    store: Optional[object] = None
    recovery: Optional[RecoveryCoordinator] = None
    policy: FtPolicy = field(default_factory=FtPolicy)
    group_name: Optional[str] = None
    # runtime counters
    calls: int = 0
    checkpoints_taken: int = 0
    retries: int = 0
    _calls_since_checkpoint: int = 0
    _versions: itertools.count = field(default_factory=lambda: itertools.count(1))


class _FtProxyBase:
    """Mixin holding the wrapped-call machinery (stub class is mixed in by
    :func:`make_ft_proxy`).

    Wrapped calls, checkpoints and migrations of one proxy are serialized
    through a per-proxy FIFO lock: the paper's "checkpoint after each
    method call" is only meaningful if snapshots cannot interleave with
    other calls on the same object.
    """

    def __init__(self, orb, ior, ft: FtContext) -> None:
        from repro.sim.sync import Lock

        ObjectStub.__init__(self, orb, ior)
        self._ft = ft
        self._ft_lock = Lock(orb.sim, name=f"ft:{ft.key}")

    # -- the wrapped invocation path ------------------------------------------------

    def _ft_call(self, operation: str, args: tuple) -> "SimFuture":
        orb = self._orb
        outer = orb.sim.future(label=f"ft:{operation}")
        process = orb.host.spawn(
            self._ft_call_proc(operation, args, outer), name=f"ft:{operation}"
        )
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer

    def _ft_call_proc(self, operation: str, args: tuple, outer):
        yield self._ft_lock.acquire()
        try:
            yield from self._ft_call_locked(operation, args, outer)
        finally:
            self._ft_lock.release()

    def _ft_call_locked(self, operation: str, args: tuple, outer):
        ft = self._ft
        policy = ft.policy
        obs = self._orb.sim.obs
        attempts = 0
        # The root span of the logical call: every retry, recovery step and
        # checkpoint below shares its trace id (the context rides on this
        # process and propagates over the wire via the GIOP service context).
        with obs.tracer.span(
            f"ft:{operation}", host=self._orb.host.name, service=ft.key
        ) as span:
            while True:
                try:
                    result = yield ObjectStub._invoke(self, operation, args)
                    break
                except RECOVERABLE as exc:
                    attempts += 1
                    ft.retries += 1
                    obs.metrics.counter(
                        "ft_retries_total", service=ft.key
                    ).inc()
                    if ft.recovery is None:
                        span.mark_error(exc)
                        outer.try_fail(exc)
                        return
                    if attempts > policy.max_call_retries:
                        error = RecoveryError(
                            f"{operation} still failing after {attempts - 1} "
                            f"recoveries"
                        )
                        span.mark_error(error)
                        outer.try_fail(error)
                        return
                    try:
                        yield from ft.recovery.recover(self)
                    except RecoveryError as recovery_error:
                        span.mark_error(recovery_error)
                        outer.try_fail(recovery_error)
                        return
            span.set_attr("attempts", attempts + 1)
            ft.calls += 1
            obs.metrics.counter("ft_calls_total", service=ft.key).inc()
            ft._calls_since_checkpoint += 1
            if ft.store is not None and ft._calls_since_checkpoint >= policy.checkpoint_interval:
                try:
                    yield from self._take_checkpoint()
                except Exception as exc:  # noqa: BLE001 - policy decides
                    if policy.on_checkpoint_failure == "raise":
                        span.mark_error(exc)
                        outer.try_fail(exc)
                        return
                    self._orb.sim.trace.emit(
                        "ft",
                        "checkpoint failed (ignored)",
                        service=ft.key,
                        error=type(exc).__name__,
                    )
            outer.try_succeed(result)

    def _take_checkpoint(self):
        """Fetch state from the server and persist it in the store."""
        ft = self._ft
        obs = self._orb.sim.obs
        started = self._orb.sim.now
        with obs.tracer.span(
            "ft:checkpoint", host=self._orb.host.name, service=ft.key
        ):
            state = yield ObjectStub._invoke(self, "get_checkpoint", ())
            version = next(ft._versions)
            yield ft.store.store(ft.key, version, state)
        ft.checkpoints_taken += 1
        ft._calls_since_checkpoint = 0
        obs.metrics.counter("ft_checkpoints_total", service=ft.key).inc()
        obs.metrics.histogram(
            "ft_checkpoint_seconds", service=ft.key
        ).observe(self._orb.sim.now - started)

    # -- manual controls (used by migration and tests) ----------------------------------

    def checkpoint_now(self) -> "SimFuture":
        """Force an immediate checkpoint of the current server state."""
        orb = self._orb
        outer = orb.sim.future(label=f"ft-checkpoint:{self._ft.key}")

        def run():
            yield self._ft_lock.acquire()
            try:
                yield from self._take_checkpoint()
            finally:
                self._ft_lock.release()
            outer.try_succeed(None)

        process = orb.host.spawn(run(), name="ft-checkpoint")
        process.add_done_callback(
            lambda p: outer.try_fail(p.exception) if p.failed else None
        )
        return outer


def make_ft_proxy(stub_class: type, name: Optional[str] = None) -> type:
    """Generate a fault-tolerance proxy class derived from ``stub_class``.

    Every operation in the stub's table is wrapped with the
    checkpoint/recover/retry logic except the checkpoint machinery itself
    (``get_checkpoint``/``restore_from``), which must use the raw path.

    The generated class is instantiated as ``Proxy(orb, ior, ft_context)``.
    """
    if not issubclass(stub_class, ObjectStub):
        raise TypeError(f"{stub_class.__name__} is not a stub class")
    namespace: dict = {}
    for operation in stub_class.__operations__:
        if operation in CHECKPOINT_OPERATIONS:
            continue

        def wrapped(self, *args, __operation=operation):
            return self._ft_call(__operation, args)

        info = stub_class.__operations__[operation]
        wrapped.__name__ = operation
        wrapped.__doc__ = (
            f"Fault-tolerant invocation of ``{operation}"
            f"({', '.join(info.param_names)})``."
        )
        # Attribute accessors live under their stub method names.
        if operation.startswith("_get_"):
            namespace[f"get_{operation[5:]}"] = wrapped
        elif operation.startswith("_set_"):
            namespace[f"set_{operation[5:]}"] = wrapped
        else:
            namespace[operation] = wrapped
    namespace["__init__"] = _FtProxyBase.__init__
    proxy_name = name or stub_class.__name__.replace("Stub", "") + "FtProxy"
    return type(proxy_name, (_FtProxyBase, stub_class), namespace)
