"""Runtime support for fault tolerance (§3 of the paper).

"Our concept is not based on replicated services in object groups but on
the integration of checkpointing and restarting functionality only. ...
Similar to the concept of passive replication, frequently (i.e. after each
method call on the server side) generated checkpoints are used to restart
a failed service."

* :mod:`repro.ft.checkpointable` — the ``Checkpointable`` IDL interface
  (get/restore state) service objects implement;
* :mod:`repro.ft.factory` — per-host ``ObjectFactory`` services used to
  re-create a failed server object on a (load-selected) host;
* :mod:`repro.ft.policy` — fault-tolerance policy knobs;
* :mod:`repro.ft.breaker` — per-host circuit breakers bounding wasted
  recovery work against dead/flapping hosts;
* :mod:`repro.ft.recovery` — the recovery coordinator: re-resolve through
  the (load-distributing) naming service, re-create, restore, rebind;
* :mod:`repro.ft.proxies` — :func:`make_ft_proxy`, the automated generation
  of "proxy classes derived from the stub classes" (the paper's alternative
  (c), with the manual step automated as the paper suggests);
* :mod:`repro.ft.request_proxy` — request proxies for DII invocations;
* :mod:`repro.ft.detector` — a locate-ping failure detector;
* :mod:`repro.ft.migration` — load-triggered service migration, the
  capability §3 notes checkpointing enables;
* :mod:`repro.ft.replication` — first-class warm-passive and active
  replication groups (the Piranha/IGOR-style designs the paper argues
  against on resource grounds), selected by ``FtPolicy.ft_mode`` and
  measured against checkpoint/restart by the replication ablation.
"""

from repro.ft.breaker import CircuitBreaker, HostBreakerRegistry
from repro.ft.checkpointable import CheckpointableSkeleton, CheckpointableStub
from repro.ft.factory import (
    ObjectFactoryServant,
    ObjectFactoryStub,
    UnknownType,
)
from repro.ft.policy import FtPolicy
from repro.ft.recovery import RecoveryCoordinator
from repro.ft.proxies import FtContext, make_ft_proxy
from repro.ft.request_proxy import FtRequest
from repro.ft.detector import FailureDetector
from repro.ft.migration import MigrationPolicy, migrate_service
from repro.ft.replication import (
    ActiveGroup,
    ReplicaGroup,
    ReplicatedServant,
    WarmPassiveGroup,
    build_group,
)
from repro.ft.replicated_store import ReplicatedCheckpointStore

__all__ = [
    "ActiveGroup",
    "CheckpointableSkeleton",
    "CheckpointableStub",
    "CircuitBreaker",
    "HostBreakerRegistry",
    "FailureDetector",
    "FtContext",
    "FtPolicy",
    "FtRequest",
    "MigrationPolicy",
    "ObjectFactoryServant",
    "ObjectFactoryStub",
    "RecoveryCoordinator",
    "ReplicaGroup",
    "ReplicatedCheckpointStore",
    "ReplicatedServant",
    "UnknownType",
    "WarmPassiveGroup",
    "build_group",
    "make_ft_proxy",
    "migrate_service",
]
