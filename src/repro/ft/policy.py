"""Fault-tolerance policy knobs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass
class FtPolicy:
    """Tunables of the proxy-based checkpoint/restart mechanism.

    The paper's configuration is the default: a checkpoint after *every*
    successful method call.  ``checkpoint_interval > 1`` (checkpoint every
    k-th call) is the obvious optimization the ablation bench explores.
    """

    #: checkpoint after every k-th successful call (1 = paper's behaviour).
    checkpoint_interval: int = 1
    #: how many times a single call may trigger recovery before giving up.
    max_call_retries: int = 3
    #: attempts to find a working factory host during one recovery.
    max_recover_attempts: int = 6
    #: pause between recovery attempts (lets Winner age out the dead host).
    retry_backoff: float = 0.5
    #: "raise" propagates a failed checkpoint to the caller; "ignore"
    #: logs and continues (the call already succeeded).
    on_checkpoint_failure: str = "raise"

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.max_call_retries < 0:
            raise ConfigurationError("max_call_retries must be >= 0")
        if self.max_recover_attempts < 1:
            raise ConfigurationError("max_recover_attempts must be >= 1")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")
        if self.on_checkpoint_failure not in ("raise", "ignore"):
            raise ConfigurationError(
                "on_checkpoint_failure must be 'raise' or 'ignore'"
            )
