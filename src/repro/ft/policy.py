"""Fault-tolerance policy knobs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError

#: recognised retry-backoff modes.
BACKOFF_MODES = ("fixed", "decorrelated-jitter")

#: recognised checkpoint-failure dispositions.
CHECKPOINT_FAILURE_MODES = ("raise", "ignore", "degraded")

#: recognised checkpoint execution modes.
CHECKPOINT_MODES = ("sync", "pipelined")

#: recognised fault-tolerance modes.  "checkpoint" is the paper's
#: checkpoint/restart design; the replication modes are the first-class
#: alternatives the paper argued against on resource grounds (§2).
FT_MODES = ("checkpoint", "warm-passive", "active")


@dataclass
class FtPolicy:
    """Tunables of the proxy-based checkpoint/restart mechanism.

    The paper's configuration is the default: a checkpoint after *every*
    successful method call.  ``checkpoint_interval > 1`` (checkpoint every
    k-th call) is the obvious optimization the ablation bench explores.

    Failure handling beyond the paper — gray failures, flapping hosts and
    storage outages livelock the original fixed-pause retry loop — is
    governed by the adaptive knobs: exponential backoff with decorrelated
    jitter (AWS-architecture-blog flavour: each pause is drawn uniformly
    from ``[base, prev * backoff_multiplier]``, capped), a per-call
    recovery deadline, circuit-breaker thresholds consulted by the
    recovery coordinator, and a "degraded" checkpoint mode that buffers
    checkpoints client-side while the storage service is down.
    """

    #: checkpoint after every k-th successful call (1 = paper's behaviour).
    checkpoint_interval: int = 1
    #: how many times a single call may trigger recovery before giving up.
    max_call_retries: int = 3
    #: attempts to find a working factory host during one recovery.
    max_recover_attempts: int = 6
    #: pause between recovery attempts (lets Winner age out the dead host).
    #: Under ``backoff="decorrelated-jitter"`` this is the *base* pause.
    retry_backoff: float = 0.5
    #: "fixed" — every pause is ``retry_backoff`` (the seed behaviour);
    #: "decorrelated-jitter" — exponential backoff with decorrelated
    #: jitter, capped at ``backoff_cap``.
    backoff: str = "fixed"
    #: multiplier for decorrelated jitter (next ~ U[base, prev * mult]).
    backoff_multiplier: float = 3.0
    #: upper bound on a single backoff pause.
    backoff_cap: float = 8.0
    #: wall-clock (simulated) budget for one recovery; ``None`` = no
    #: deadline (the seed behaviour).  Exceeding it raises RecoveryError.
    recovery_deadline: Optional[float] = None
    #: consecutive failures against one host before its breaker opens.
    breaker_failure_threshold: int = 3
    #: seconds an open breaker waits before letting a probe through.
    breaker_reset_timeout: float = 5.0
    #: concurrent probes allowed while half-open.
    breaker_half_open_max: int = 1
    #: "raise" propagates a failed checkpoint to the caller; "ignore"
    #: logs and continues (the call already succeeded); "degraded"
    #: buffers the checkpoint client-side and flushes when the store
    #: answers again.
    on_checkpoint_failure: str = "raise"
    #: most checkpoints buffered client-side in degraded mode (oldest
    #: are dropped first — recovery only ever needs the newest).
    checkpoint_buffer_limit: int = 8
    #: "sync" — the paper's behaviour: the wrapped call completes only
    #: after its checkpoint is fetched *and* stored.  "pipelined" — the
    #: call returns as soon as the invocation succeeds; the state fetch
    #: still happens under the proxy lock (so it cannot capture effects
    #: of a later call) but the store round-trip runs in a background
    #: process, overlapped with subsequent calls.
    checkpoint_mode: str = "sync"
    #: bounded in-flight window for pipelined mode: a new checkpoint
    #: stalls until fewer than this many stores are outstanding.
    checkpoint_pipeline_depth: int = 1
    #: ship recursive dict deltas against the previous checkpoint (with
    #: a content-hash skip for unchanged state) instead of full states.
    checkpoint_deltas: bool = False
    #: in delta mode, ship a full snapshot every k-th checkpoint so the
    #: server-side restore chain stays bounded (at most k records).
    checkpoint_full_interval: int = 8
    #: fault-tolerance design: "checkpoint" (paper's checkpoint/restart),
    #: "warm-passive" (primary executes, ships state to standbys, fast
    #: promotion without a store round-trip) or "active" (all replicas
    #: execute, replies are majority-voted).
    ft_mode: str = "checkpoint"
    #: replicas per group in the replication modes (primary + standbys
    #: for warm-passive; voters for active).
    replication_factor: int = 2
    #: matching replies required for an active-mode vote; ``None`` means
    #: a strict majority of ``replication_factor``.
    vote_quorum: Optional[int] = None
    #: locate-ping interval of the per-group FailureDetector watching the
    #: warm-passive primary; 0 disables proactive detection (failover then
    #: triggers only on a failed call).
    detector_interval: float = 0.0
    #: consecutive missed locate-pings before the detector suspects.
    detector_suspect_after: int = 2

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.max_call_retries < 0:
            raise ConfigurationError("max_call_retries must be >= 0")
        if self.max_recover_attempts < 1:
            raise ConfigurationError("max_recover_attempts must be >= 1")
        if self.retry_backoff < 0:
            raise ConfigurationError("retry_backoff must be >= 0")
        if self.backoff not in BACKOFF_MODES:
            raise ConfigurationError(
                f"backoff must be one of {BACKOFF_MODES}, got {self.backoff!r}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError("backoff_multiplier must be >= 1")
        if self.backoff_cap <= 0:
            raise ConfigurationError("backoff_cap must be positive")
        if self.recovery_deadline is not None and self.recovery_deadline <= 0:
            raise ConfigurationError("recovery_deadline must be positive")
        if self.breaker_failure_threshold < 1:
            raise ConfigurationError("breaker_failure_threshold must be >= 1")
        if self.breaker_reset_timeout <= 0:
            raise ConfigurationError("breaker_reset_timeout must be positive")
        if self.breaker_half_open_max < 1:
            raise ConfigurationError("breaker_half_open_max must be >= 1")
        if self.on_checkpoint_failure not in CHECKPOINT_FAILURE_MODES:
            raise ConfigurationError(
                "on_checkpoint_failure must be one of "
                f"{CHECKPOINT_FAILURE_MODES}"
            )
        if self.checkpoint_buffer_limit < 1:
            raise ConfigurationError("checkpoint_buffer_limit must be >= 1")
        if self.checkpoint_mode not in CHECKPOINT_MODES:
            raise ConfigurationError(
                f"checkpoint_mode must be one of {CHECKPOINT_MODES}, "
                f"got {self.checkpoint_mode!r}"
            )
        if self.checkpoint_pipeline_depth < 1:
            raise ConfigurationError("checkpoint_pipeline_depth must be >= 1")
        if self.checkpoint_full_interval < 1:
            raise ConfigurationError("checkpoint_full_interval must be >= 1")
        if self.ft_mode not in FT_MODES:
            raise ConfigurationError(
                f"ft_mode must be one of {FT_MODES}, got {self.ft_mode!r}"
            )
        if self.replication_factor < 2 and self.ft_mode != "checkpoint":
            raise ConfigurationError(
                "replication_factor must be >= 2 in replication modes"
            )
        if self.vote_quorum is not None:
            if not 1 <= self.vote_quorum <= self.replication_factor:
                raise ConfigurationError(
                    "vote_quorum must be within 1..replication_factor"
                )
        if self.detector_interval < 0:
            raise ConfigurationError("detector_interval must be >= 0")
        if self.detector_suspect_after < 1:
            raise ConfigurationError("detector_suspect_after must be >= 1")

    def effective_quorum(self) -> int:
        """Matching replies an active-mode vote needs (default: majority)."""
        if self.vote_quorum is not None:
            return self.vote_quorum
        return self.replication_factor // 2 + 1

    def backoff_delay(self, previous: float, rng) -> float:
        """Next retry pause given the ``previous`` one.

        Pass ``previous <= 0`` for the first retry.  ``rng`` (a seeded
        numpy Generator) is only consulted in decorrelated-jitter mode, so
        fixed-backoff schedules never perturb the random stream.
        """
        if self.backoff == "fixed":
            return self.retry_backoff
        base = self.retry_backoff
        if base <= 0:
            return 0.0
        prev = max(base, previous)
        return min(
            self.backoff_cap,
            float(rng.uniform(base, prev * self.backoff_multiplier)),
        )
