"""Per-host object factories.

Recovery must "start a new server (using the checkpoint)" on some host.
Each host runs an ``ObjectFactory`` service that can instantiate registered
servant types; the factories are bound as a *service group* in the
load-distributing naming service, so resolving the factory group already
picks the best host — contribution №1 powering contribution №2.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.errors import OBJ_ADAPTER
from repro.orb.idl import compile_idl

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Servant

FACTORY_IDL = """
module FT {
    exception UnknownType { string type_name; };

    interface ObjectFactory {
        // Instantiate and activate a servant of a registered type.
        Object create(in string type_name) raises (UnknownType);
        // Instantiate a replica-group member: the servant is wrapped for
        // request-id duplicate suppression before activation.
        Object create_member(in string type_name, in string group_id)
            raises (UnknownType);
        // Deactivate an object previously created by this factory.
        void destroy_object(in Object reference);
        sequence<string> supported_types();
        string host_name();
    };
};
"""

ns = compile_idl(FACTORY_IDL, name="ft-factory")

UnknownType = ns.UnknownType
ObjectFactoryStub = ns.ObjectFactoryStub
ObjectFactorySkeleton = ns.ObjectFactorySkeleton


class ObjectFactoryServant(ObjectFactorySkeleton):
    """Instantiates registered servant types on its host."""

    def __init__(self, member_listener: Callable | None = None) -> None:
        self._types: dict[str, Callable[[], "Servant"]] = {}
        self.created = 0
        self.members_created = 0
        #: called with every ReplicatedServant this factory activates —
        #: the chaos campaign uses it to audit post-retirement applies.
        self._member_listener = member_listener

    def register_type(
        self, type_name: str, factory: Callable[[], "Servant"]
    ) -> None:
        """Make ``type_name`` creatable; ``factory()`` returns a fresh
        servant (local registration by the deployer, not an IDL op)."""
        self._types[type_name] = factory

    def create(self, type_name):
        maker = self._types.get(type_name)
        if maker is None:
            raise UnknownType(type_name=type_name)
        servant = maker()
        self.created += 1
        return self._poa.activate(servant)  # type: ignore[union-attr]

    def create_member(self, type_name, group_id):
        from repro.ft.replication import ReplicatedServant

        maker = self._types.get(type_name)
        if maker is None:
            raise UnknownType(type_name=type_name)
        member = ReplicatedServant(maker(), group_id)
        self.created += 1
        self.members_created += 1
        ior = self._poa.activate(member)  # type: ignore[union-attr]
        member.adopt(ior)
        if self._member_listener is not None:
            self._member_listener(member)
        return ior

    def destroy_object(self, reference):
        try:
            self._poa.deactivate(reference.object_key)  # type: ignore[union-attr]
        except OBJ_ADAPTER:
            pass  # already gone; destroy is idempotent

    def supported_types(self):
        return sorted(self._types)

    def host_name(self):
        return self._host().name
