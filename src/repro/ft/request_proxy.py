"""Request proxies: fault tolerance for DII invocations.

"To enable fault tolerance in this case, request proxies are used just
like the object proxies." (§3, Fig. 2)

An :class:`FtRequest` mirrors the :class:`~repro.orb.dii.Request` API
(``send_deferred`` / ``poll_response`` / ``get_response`` /
``return_value``) but supervises the underlying request: on a recoverable
failure it runs the proxy's recovery coordinator and re-issues a fresh
Request at the recovered target; after success it checkpoints like the
object proxy would.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.errors import BAD_OPERATION, RecoveryError
from repro.ft.recovery import RECOVERABLE
from repro.orb.dii import Request
from repro.orb.stubs import ObjectStub

if TYPE_CHECKING:  # pragma: no cover
    from repro.ft.proxies import _FtProxyBase
    from repro.sim.events import SimFuture


class FtRequest:
    """A fault-tolerant DII request bound to an FT proxy."""

    def __init__(self, proxy, operation: str, args: tuple = ()) -> None:
        from repro.ft.proxies import _FtProxyBase

        if not isinstance(proxy, _FtProxyBase):
            raise BAD_OPERATION(
                "FtRequest requires a fault-tolerance proxy (make_ft_proxy)"
            )
        self._proxy = proxy
        self._info = proxy._op_info(operation)
        self._args = tuple(args)
        self._outer: Optional["SimFuture"] = None
        #: number of underlying Requests issued (1 = no recovery needed).
        self.attempts = 0

    # -- Request-compatible API --------------------------------------------------

    @property
    def operation(self) -> str:
        return self._info.name

    @property
    def sent(self) -> bool:
        return self._outer is not None

    def send_deferred(self) -> "FtRequest":
        if self._outer is not None:
            raise BAD_OPERATION(f"request {self.operation!r} was already sent")
        orb = self._proxy._orb
        # analysis: ignore[RACE004]: _outer is published exactly once, before _supervise is spawned; the supervising process only reads it afterwards, so the lock it takes guards proxy state, not this publish
        self._outer = orb.sim.future(label=f"ft-req:{self.operation}")
        process = orb.host.spawn(self._supervise(), name=f"ft-req:{self.operation}")
        process.add_done_callback(
            lambda p: self._outer.try_fail(p.exception) if p.failed else None
        )
        return self

    def invoke(self) -> "SimFuture":
        """Synchronous flavour: send and return the response future."""
        return self.send_deferred().get_response()

    def poll_response(self) -> bool:
        self._ensure_sent()
        assert self._outer is not None
        return self._outer.is_done

    def get_response(self) -> "SimFuture":
        self._ensure_sent()
        assert self._outer is not None
        return self._outer

    def return_value(self) -> Any:
        self._ensure_sent()
        assert self._outer is not None
        return self._outer.value

    # -- supervision -----------------------------------------------------------------

    def _supervise(self):
        proxy = self._proxy
        yield proxy._ft_lock.acquire()
        try:
            yield from self._supervise_locked()
        finally:
            proxy._ft_lock.release()

    def _supervise_locked(self):
        proxy = self._proxy
        ft = proxy._ft
        policy = ft.policy
        orb = proxy._orb
        obs = orb.sim.obs
        failures = 0
        # Root span for the logical DII call — same shape as the object
        # proxy's wrapped path, so retries/recoveries share one trace id.
        with obs.tracer.span(
            f"ft:{self.operation}", host=orb.host.name, service=ft.key
        ) as span:
            span.set_attr("dii", True)
            while True:
                request = Request(
                    orb, proxy.ior, self._info, self._args, reference=proxy
                )
                self.attempts += 1
                try:
                    result = yield request.send_deferred().get_response()
                    break
                except RECOVERABLE as exc:
                    failures += 1
                    ft.retries += 1
                    obs.metrics.counter(
                        "ft_retries_total", service=ft.key
                    ).inc()
                    if ft.recovery is None:
                        span.mark_error(exc)
                        self._outer.try_fail(exc)
                        return
                    if failures > policy.max_call_retries:
                        error = RecoveryError(
                            f"{self.operation} still failing after "
                            f"{failures - 1} recoveries"
                        )
                        span.mark_error(error)
                        self._outer.try_fail(error)
                        return
                    try:
                        yield from ft.recovery.recover(proxy)
                    except RecoveryError as recovery_error:
                        span.mark_error(recovery_error)
                        self._outer.try_fail(recovery_error)
                        return
            span.set_attr("attempts", self.attempts)
            # The post-success bookkeeping + checkpoint step is the object
            # proxy's, shared verbatim so the two paths apply one policy
            # (it settles self._outer, pipelined mode included).
            yield from proxy._after_success(span, self._outer, result)

    def _ensure_sent(self) -> None:
        if self._outer is None:
            raise BAD_OPERATION(
                f"request {self.operation!r} has not been sent yet"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "unsent"
            if self._outer is None
            else ("done" if self._outer.is_done else "in-flight")
        )
        return f"<FtRequest {self.operation} [{state}] attempts={self.attempts}>"
