"""Load-triggered service migration.

"If a class offers this functionality for checkpointing and restoring a
certain internal state it is in principle possible to migrate a service
from [one] host to another one not only when an error occured but also due
to a changing load situation on a host." (§3)

:func:`migrate_service` is the mechanism (checkpoint → create on target →
restore → rebind → destroy source); :class:`MigrationPolicy` is the
watcher that triggers it when Winner says the current host has become
significantly worse than the best available one.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.errors import ProcessKilled, RecoveryError, SystemException
from repro.ft.factory import ObjectFactoryStub
from repro.ft.checkpointable import CheckpointableStub
from repro.orb.stubs import ObjectStub
from repro.services.naming import idl as naming_idl
from repro.services.naming.names import to_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.sim.process import Process
    from repro.winner.system_manager import SystemManager


def migrate_service(proxy, naming, target_host: str):
    """Generator: move the proxy's service object to ``target_host``.

    Steps: take a fresh checkpoint; find the target host's factory in the
    factory group; create a new servant there; restore the checkpoint;
    rebind the proxy (and the service's naming group); destroy the source
    object.  Returns the new IOR.
    """
    ft = proxy._ft
    orb = proxy._orb
    if proxy.ior.host == target_host:
        return proxy.ior
    recovery = ft.recovery
    if recovery is None or ft.store is None:
        raise RecoveryError("migration needs a recovery coordinator and a store")

    # Exclude in-flight calls for the duration of the move: a call landing
    # on the source after the checkpoint would be silently lost.
    yield proxy._ft_lock.acquire()
    try:
        result = yield from _migrate_locked(proxy, naming, target_host)
    finally:
        proxy._ft_lock.release()
    return result


def _migrate_locked(proxy, naming, target_host: str):
    ft = proxy._ft
    orb = proxy._orb
    recovery = ft.recovery
    old_ior = proxy.ior
    if old_ior.host == target_host:
        return old_ior  # someone moved it while we waited for the lock
    started = orb.sim.now
    with orb.sim.obs.tracer.span(
        "ft:migrate",
        host=orb.host.name,
        service=ft.key,
        src=old_ior.host,
        dst=target_host,
    ):
        new_ior = yield from _migrate_steps(
            proxy, naming, target_host, old_ior
        )
    orb.sim.obs.metrics.counter(
        "ft_migrations_total", service=ft.key
    ).inc()
    orb.sim.obs.metrics.histogram(
        "ft_migration_seconds", service=ft.key
    ).observe(orb.sim.now - started)
    orb.sim.trace.emit(
        "ft",
        "migrated",
        service=ft.key,
        src=old_ior.host,
        dst=new_ior.host,
    )
    return new_ior


def _migrate_steps(proxy, naming, target_host: str, old_ior):
    ft = proxy._ft
    orb = proxy._orb
    recovery = ft.recovery

    # 1. capture current state.
    yield from proxy._take_checkpoint()

    # 2. locate the target host's factory in the factory group.
    factories = yield naming.resolve_all(recovery.factory_group)
    factory_ior = next((f for f in factories if f.host == target_host), None)
    if factory_ior is None:
        raise RecoveryError(f"no object factory on host {target_host!r}")
    factory = orb.stub(factory_ior, ObjectFactoryStub)

    # 3. create and restore.
    new_ior = yield factory.create(ft.type_name)
    state = yield ft.store.load(ft.key)
    restore_info = CheckpointableStub.__operations__["restore_from"]
    yield orb.invoke(new_ior, restore_info, (state,))

    # 4. swap naming-group binding and rebind the proxy.
    if ft.group_name is not None:
        group = to_name(ft.group_name)
        try:
            yield naming.unbind_service(group, old_ior)
        # analysis: ignore[EXC003]: best-effort unbind of the stale binding — the bind below re-converges the group
        except (naming_idl.NotFound, SystemException):
            pass
        try:
            yield naming.bind_service(group, new_ior)
        except naming_idl.AlreadyBound:
            pass
    proxy._rebind(new_ior)

    # 5. retire the old instance (best effort: its host may be the reason
    # we are leaving).
    old_factory_ior = next((f for f in factories if f.host == old_ior.host), None)
    if old_factory_ior is not None:
        try:
            yield orb.stub(old_factory_ior, ObjectFactoryStub).destroy_object(old_ior)
        # analysis: ignore[EXC003]: best-effort retirement — the old host may be down, which is why we migrated
        except SystemException:
            pass
    return new_ior


class MigrationPolicy:
    """Monitors Winner and migrates a service off overloaded hosts.

    Triggers when the best host's score exceeds the current host's score by
    ``improvement_factor`` (hysteresis against flapping).
    """

    def __init__(
        self,
        proxy,
        naming,
        system_manager: "SystemManager",
        interval: float = 2.0,
        improvement_factor: float = 1.6,
    ) -> None:
        self.proxy = proxy
        self.naming = naming
        self.manager = system_manager
        self.interval = interval
        self.improvement_factor = improvement_factor
        self._process: Optional["Process"] = None
        self.migrations = 0
        self.checks = 0

    def start(self) -> "MigrationPolicy":
        if self._process is None or self._process.is_done:
            orb = self.proxy._orb
            self._process = orb.host.spawn(self._run(), name="migration-policy")
        return self

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self):
        orb = self.proxy._orb
        sim = orb.sim
        try:
            while True:
                yield sim.timeout(self.interval)
                self.checks += 1
                current = self.proxy.ior.host
                best = self.manager.best_host()
                if best is None or best == current:
                    continue
                # Discount the service's own task and its own placement
                # record from the current host so a busy-but-otherwise-idle
                # home does not trigger flapping.
                current_score = self.manager.score(
                    current, run_queue_discount=1.0, placement_discount=1
                )
                best_score = self.manager.score(best)
                if current_score <= 0 or (
                    best_score >= current_score * self.improvement_factor
                ):
                    try:
                        yield from migrate_service(self.proxy, self.naming, best)
                        self.manager.note_placement(best)
                        self.migrations += 1
                    # analysis: ignore[EXC003]: failed migration leaves the service where it was — retried next round
                    except (RecoveryError, SystemException):
                        continue
        except ProcessKilled:
            raise
