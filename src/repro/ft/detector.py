"""A locate-ping failure detector.

The paper's error detection is reactive ("the only way to detect an error
on the client side is the exception CORBA::COMM_FAILURE").  A proactive
detector built from GIOP LocateRequest pings is the natural extension and
is what the migration policy uses to avoid moving services to dying hosts;
the recovery bench also uses it to measure detection latency.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ProcessKilled
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.sim.process import Process


class FailureDetector:
    """Periodically pings watched objects; reports suspects once."""

    def __init__(
        self,
        orb: "Orb",
        interval: float = 1.0,
        suspect_after: int = 2,
    ) -> None:
        self.orb = orb
        self.interval = interval
        #: consecutive failed pings before a target is suspected.
        self.suspect_after = suspect_after
        self._targets: dict[str, tuple[IOR, Callable[[str, IOR], None]]] = {}
        self._misses: dict[str, int] = {}
        self._process: Optional["Process"] = None
        self.pings = 0
        self.suspected: list[str] = []

    def watch(
        self, key: str, ior: IOR, on_suspect: Callable[[str, IOR], None]
    ) -> None:
        self._targets[key] = (ior, on_suspect)
        self._misses[key] = 0
        if self._process is None or self._process.is_done:
            self._process = self.orb.host.spawn(self._run(), name="ft-detector")

    def unwatch(self, key: str) -> None:
        self._targets.pop(key, None)
        self._misses.pop(key, None)

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self):
        sim = self.orb.sim
        try:
            while self._targets:
                yield sim.timeout(self.interval)
                for key in list(self._targets):
                    entry = self._targets.get(key)
                    if entry is None:
                        continue
                    ior, on_suspect = entry
                    self.pings += 1
                    alive = yield self.orb.locate(ior)
                    if alive:
                        self._misses[key] = 0
                        continue
                    self._misses[key] = self._misses.get(key, 0) + 1
                    if self._misses[key] >= self.suspect_after:
                        self.suspected.append(key)
                        self.unwatch(key)
                        on_suspect(key, ior)
        except ProcessKilled:
            raise
