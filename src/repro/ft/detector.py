"""A locate-ping failure detector.

The paper's error detection is reactive ("the only way to detect an error
on the client side is the exception CORBA::COMM_FAILURE").  A proactive
detector built from GIOP LocateRequest pings is the natural extension and
is what the migration policy uses to avoid moving services to dying hosts;
the recovery bench uses it to measure detection latency, and warm-passive
replication uses it to promote a standby before any call even fails.

Suspicion is *level-triggered*, not one-shot: a suspected target stays
watched, a successful ping afterwards clears the suspicion, and a target
that dies again after recovering is re-suspected (flapping hosts produce
one suspicion per down phase, each reported through ``on_suspect``).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import ProcessKilled
from repro.orb.ior import IOR

if TYPE_CHECKING:  # pragma: no cover
    from repro.orb.core import Orb
    from repro.sim.process import Process


class FailureDetector:
    """Periodically pings watched objects; reports each down phase once."""

    def __init__(
        self,
        orb: "Orb",
        interval: float = 1.0,
        suspect_after: int = 2,
    ) -> None:
        self.orb = orb
        self.interval = interval
        #: consecutive failed pings before a target is suspected.
        self.suspect_after = suspect_after
        self._targets: dict[str, tuple[IOR, Callable[[str, IOR], None]]] = {}
        self._misses: dict[str, int] = {}
        #: keys currently under suspicion (cleared by a successful ping).
        self._suspect_flags: set[str] = set()
        self._process: Optional["Process"] = None
        self.pings = 0
        #: every suspicion event, in order (a flapping target appears once
        #: per down phase — the re-suspicion regression guard).
        self.suspected: list[str] = []
        #: suspicions cleared by a later successful ping.
        self.recovered_targets = 0

    def watch(
        self, key: str, ior: IOR, on_suspect: Callable[[str, IOR], None]
    ) -> None:
        """(Re-)register ``key``; re-watching resets its suspicion state
        (promotion re-points the watch at the new primary's IOR)."""
        self._targets[key] = (ior, on_suspect)
        self._misses[key] = 0
        self._suspect_flags.discard(key)
        if self._process is None or self._process.is_done:
            self._process = self.orb.host.spawn(self._run(), name="ft-detector")

    def unwatch(self, key: str) -> None:
        self._targets.pop(key, None)
        self._misses.pop(key, None)
        self._suspect_flags.discard(key)

    def is_suspected(self, key: str) -> bool:
        return key in self._suspect_flags

    def stop(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self):
        sim = self.orb.sim
        try:
            while self._targets:
                yield sim.timeout(self.interval)
                for key in list(self._targets):
                    entry = self._targets.get(key)
                    if entry is None:
                        continue
                    ior, on_suspect = entry
                    self.pings += 1
                    alive = yield self.orb.locate(ior)
                    if alive:
                        self._misses[key] = 0
                        if key in self._suspect_flags:
                            # The target answered again: clear the suspicion
                            # so a later down phase is re-reported.
                            self._suspect_flags.discard(key)
                            self.recovered_targets += 1
                            sim.trace.emit(
                                "ft", "detector cleared suspicion", key=key
                            )
                        continue
                    self._misses[key] = self._misses.get(key, 0) + 1
                    if (
                        self._misses[key] >= self.suspect_after
                        and key not in self._suspect_flags
                    ):
                        self._suspect_flags.add(key)
                        self.suspected.append(key)
                        on_suspect(key, ior)
        except ProcessKilled:
            raise
