"""Replicated checkpoint storage.

The paper's checkpoint service is a single object — a single point of
failure for the whole fault-tolerance scheme (if its host dies, no service
can be restored).  This extension removes the SPOF with client-side
replication: writes go to every store replica (all must be attempted, a
quorum must succeed), reads try replicas in order until one answers.

It is a drop-in replacement for the store stub inside
:class:`~repro.ft.proxies.FtContext` — it exposes the same ``store`` /
``load`` / ``latest_version`` call surface, returning futures.
"""

from __future__ import annotations

from typing import Sequence, TYPE_CHECKING

from repro.errors import RecoveryError, SystemException
from repro.services.checkpoint import BadDeltaBase, NoCheckpoint

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import SimFuture


class ReplicatedCheckpointStore:
    """Client-side replication over several CheckpointStore stubs.

    :param stubs: store replicas (on distinct hosts, ideally).
    :param write_quorum: minimum successful writes for ``store`` to
        succeed; defaults to a majority.
    """

    def __init__(self, orb, stubs: Sequence, write_quorum: int | None = None) -> None:
        if not stubs:
            raise RecoveryError("replicated store needs at least one replica")
        self._orb = orb
        self._stubs = list(stubs)
        self.write_quorum = (
            write_quorum if write_quorum is not None else len(self._stubs) // 2 + 1
        )
        if not 1 <= self.write_quorum <= len(self._stubs):
            raise RecoveryError(
                f"write quorum {self.write_quorum} impossible with "
                f"{len(self._stubs)} replicas"
            )
        self.writes = 0
        self.degraded_writes = 0
        self.failover_reads = 0

    @property
    def replica_count(self) -> int:
        return len(self._stubs)

    # -- the CheckpointStore call surface -------------------------------------

    def store(self, key: str, version: int, state) -> "SimFuture":
        return self._spawn(self._store_proc(key, version, state), "rstore:store")

    def store_delta(
        self, key: str, base_version: int, version: int, delta
    ) -> "SimFuture":
        return self._spawn(
            self._store_delta_proc(key, base_version, version, delta),
            "rstore:store_delta",
        )

    def load(self, key: str) -> "SimFuture":
        return self._spawn(self._load_proc("load", (key,)), "rstore:load")

    def latest_version(self, key: str) -> "SimFuture":
        return self._spawn(
            self._load_proc("latest_version", (key,)), "rstore:version"
        )

    # -- internals ----------------------------------------------------------------

    def _spawn(self, generator, label: str) -> "SimFuture":
        outer = self._orb.sim.future(label=label)
        process = self._orb.host.spawn(generator, name=label)

        def propagate(proc) -> None:
            if proc.failed:
                outer.try_fail(proc.exception)
            else:
                outer.try_succeed(proc._value)

        process.add_done_callback(propagate)
        return outer

    def _store_proc(self, key: str, version: int, state):
        futures = [stub.store(key, version, state) for stub in self._stubs]
        successes = 0
        last_error: BaseException | None = None
        for future in futures:
            try:
                yield future
                successes += 1
            except SystemException as exc:
                last_error = exc
        self.writes += 1
        if successes < len(self._stubs):
            self.degraded_writes += 1
        if successes < self.write_quorum:
            raise RecoveryError(
                f"checkpoint write quorum not met ({successes}/"
                f"{self.write_quorum} of {len(self._stubs)})"
            ) from last_error
        return None

    def _store_delta_proc(self, key: str, base_version: int, version: int, delta):
        """Fan a delta out to every replica.  Any ``BadDeltaBase`` answer
        propagates: one replica missing the base means the client must fall
        back to a full store, which re-converges *all* replicas (a replica
        that already committed the delta just records the same version
        twice — ``read_latest`` takes the newest record, so that's
        harmless)."""
        futures = [
            stub.store_delta(key, base_version, version, delta)
            for stub in self._stubs
        ]
        successes = 0
        last_error: BaseException | None = None
        bad_base: BadDeltaBase | None = None
        for future in futures:
            try:
                yield future
                successes += 1
            except BadDeltaBase as exc:
                bad_base = exc
            except SystemException as exc:
                last_error = exc
        self.writes += 1
        if bad_base is not None:
            raise bad_base
        if successes < len(self._stubs):
            self.degraded_writes += 1
        if successes < self.write_quorum:
            raise RecoveryError(
                f"checkpoint delta write quorum not met ({successes}/"
                f"{self.write_quorum} of {len(self._stubs)})"
            ) from last_error
        return None

    def _load_proc(self, operation: str, args: tuple):
        last_error: BaseException | None = None
        missing = 0
        for stub in self._stubs:
            try:
                result = yield getattr(stub, operation)(*args)
                return result
            except NoCheckpoint as exc:
                missing += 1
                last_error = exc
            except SystemException as exc:
                self.failover_reads += 1
                last_error = exc
        if missing == len(self._stubs):
            assert isinstance(last_error, NoCheckpoint)
            raise last_error
        raise RecoveryError(
            f"no checkpoint replica reachable for {operation}{args}"
        ) from last_error
