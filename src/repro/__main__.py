"""Command-line interface: ``python -m repro <command>``.

Runs the paper's experiments without writing any code:

* ``fig3`` — the Fig. 3 load-distribution sweep (table + ASCII plot);
* ``table1`` — the Table 1 fault-tolerance overhead sweep;
* ``recovery`` / ``migration`` — the fault-tolerance ablations;
* ``demo`` — a one-minute tour (quickstart scenario with narration).

Examples::

    python -m repro fig3 --configs 30/3 --bg 0 2 4
    python -m repro table1 --iterations 10000 50000
    python -m repro recovery
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.bench import fig3_curves, fig3_sweep, format_table
    from repro.bench.plotting import ascii_plot

    points = fig3_sweep(
        configs=tuple(args.configs),
        background_hosts=tuple(args.bg),
        worker_iterations=args.worker_iterations,
        seed=args.seed,
    )
    curves = fig3_curves(points)
    bg_values = sorted({p.background_hosts for p in points})
    rows = [
        [f"{strategy} {config}"] + [f"{p.runtime:.2f}" for p in curve]
        for (strategy, config), curve in sorted(curves.items())
    ]
    print(
        format_table(
            ["curve"] + [f"bg={bg}" for bg in bg_values],
            rows,
            title="Fig. 3: runtime [simulated s] vs #hosts with background load",
        )
    )
    print()
    print(
        ascii_plot(
            {
                f"{strategy} {config}": [
                    (p.background_hosts, p.runtime) for p in curve
                ]
                for (strategy, config), curve in curves.items()
            },
            x_label="hosts with background load",
            y_label="runtime [simulated s]",
        )
    )
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench import format_table, table1_sweep

    rows = table1_sweep(iterations=tuple(args.iterations), seed=args.seed)
    print(
        format_table(
            ["iterations", "w/o proxy [s]", "w/ proxy [s]", "overhead [%]"],
            [
                [
                    row.iterations,
                    f"{row.runtime_without_proxy:.2f}",
                    f"{row.runtime_with_proxy:.2f}",
                    f"{row.overhead_percent:.1f}",
                ]
                for row in rows
            ],
            title="Table 1: fault-tolerance proxy overhead (100-dim, 7 workers)",
        )
    )
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    from repro.bench import format_table
    from repro.bench.ftbench import recovery_bench

    rows = recovery_bench()
    print(
        format_table(
            ["failures", "runtime [s]", "recoveries", "state correct"],
            [
                [
                    row.extra["failures"],
                    f"{row.runtime:.3f}",
                    row.extra["recoveries"],
                    row.extra["state_correct"],
                ]
                for row in rows
            ],
            title="Checkpoint/restart recovery under failure injection",
        )
    )
    return 0


def _cmd_migration(args: argparse.Namespace) -> int:
    from repro.bench import format_table
    from repro.bench.ftbench import migration_bench

    rows = migration_bench()
    print(
        format_table(
            ["policy", "runtime [s]", "migrations"],
            [
                [row.label, f"{row.runtime:.3f}", row.extra["migrations"]]
                for row in rows
            ],
            title="Load-triggered migration under a mid-run load shift",
        )
    )
    return 0


def _cmd_wan(args: argparse.Namespace) -> int:
    from repro.bench import format_table
    from repro.bench.wanbench import wan_compare

    rows = wan_compare(seed=args.seed)
    print(
        format_table(
            ["policy", "jobs", "job size [s]", "completion [s]", "remote jobs"],
            [
                [
                    row.policy,
                    row.jobs,
                    f"{row.job_seconds:.2f}",
                    f"{row.completion_time:.3f}",
                    row.remote_jobs,
                ]
                for row in rows
            ],
            title="Wide-area metacomputing (two sites, 40 ms WAN)",
        )
    )
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import Scenario
    from repro.opt import WorkerSettings

    print("Running the paper's 30-dim/3-worker experiment at bg=2 ...\n")
    for strategy, label in (("round-robin", "CORBA"), ("winner", "CORBA/Winner")):
        result = Scenario(
            dimension=30,
            num_workers=3,
            pool_size=6,
            background_hosts=2,
            naming_strategy=strategy,
            worker_iterations=50_000,
            manager_iterations=10,
            worker_settings=WorkerSettings(real_iteration_cap=64),
            seed=args.seed,
        ).run()
        print(
            f"{label:13s} runtime = {result.runtime_seconds:6.2f} simulated s, "
            f"workers on {list(result.worker_placements)}"
        )
    print(
        "\nThe Winner-backed naming service placed the workers on unloaded "
        "hosts; the unmodified naming service collided with the background "
        "load.  See `python -m repro fig3` for the full figure."
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'CORBA Based Runtime Support for Load "
            "Distribution and Fault Tolerance' (IPPS 2000)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7, help="experiment seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig3 = subparsers.add_parser("fig3", help="regenerate Fig. 3")
    fig3.add_argument(
        "--configs", nargs="+", default=["30/3", "100/7"], choices=["30/3", "100/7"]
    )
    fig3.add_argument("--bg", nargs="+", type=int, default=[0, 2, 4, 6, 8])
    fig3.add_argument("--worker-iterations", type=int, default=50_000)
    fig3.set_defaults(func=_cmd_fig3)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1")
    table1.add_argument(
        "--iterations",
        nargs="+",
        type=int,
        default=[10_000, 20_000, 30_000, 40_000, 50_000],
    )
    table1.set_defaults(func=_cmd_table1)

    recovery = subparsers.add_parser("recovery", help="failure-injection bench")
    recovery.set_defaults(func=_cmd_recovery)

    migration = subparsers.add_parser("migration", help="migration bench")
    migration.set_defaults(func=_cmd_migration)

    wan = subparsers.add_parser("wan", help="wide-area federation bench")
    wan.set_defaults(func=_cmd_wan)

    demo = subparsers.add_parser("demo", help="one-minute tour")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
