"""Generator-based simulation processes.

A process wraps a generator that ``yield``s :class:`SimFuture` objects.  The
kernel resumes the generator with the future's value (or throws the future's
exception into it).  A process is itself a future: it succeeds with the
generator's return value, fails with an uncaught exception, and can be
awaited by other processes or joined from outside the simulation.

Processes can be :meth:`killed <Process.kill>`; the kill is delivered as a
:class:`~repro.errors.ProcessKilled` exception thrown into the generator, so
``finally`` blocks run and resource cleanup is deterministic.  Host crashes
use exactly this mechanism.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

from repro.errors import ProcessKilled, SimulationError
from repro.sim.events import SimFuture

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Process(SimFuture):
    """A running simulation process. Create via :meth:`Simulator.spawn`."""

    __slots__ = (
        "_generator",
        "name",
        "_wait_generation",
        "_waiting_on",
        "_in_resume",
        "_pending_kill",
        "_started",
        "trace_context",
    )

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() expects a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.name = name or getattr(generator, "__name__", "process")
        super().__init__(sim, label=f"process:{self.name}")
        self._generator = generator
        self._wait_generation = 0
        self._waiting_on: Optional[SimFuture] = None
        self._in_resume = False
        self._pending_kill: Optional[BaseException] = None
        self._started = False
        #: observability trace context; inherited from the spawning process
        #: (or the ambient driver context) so spans stay causally linked
        #: across spawn boundaries.
        spawner = sim.current_process
        self.trace_context = (
            spawner.trace_context
            if spawner is not None
            else sim.ambient_trace_context
        )
        sim._register_process(self)
        sim.call_soon(lambda: self._resume(None, None))

    # -- lifecycle ----------------------------------------------------------

    def kill(self, exc: Optional[BaseException] = None) -> None:
        """Terminate the process by throwing ``exc`` (default
        :class:`ProcessKilled`) into its generator. Idempotent once done."""
        if self.is_done:
            return
        exc = exc if exc is not None else ProcessKilled(f"process {self.name} killed")
        self._pending_kill = exc
        if self._in_resume:
            # Self-kill (or kill from a callback triggered by this process's
            # own step): deliver once the current step finishes.
            return
        # Invalidate any pending wakeup from the future we were waiting on,
        # and mark that future abandoned so single-consumer resources
        # (locks, channel receives) skip this dead waiter and producers
        # (CPU tasks) stop working for it.
        if self._waiting_on is not None:
            self._waiting_on.mark_abandoned()
        self._wait_generation += 1
        self._waiting_on = None
        self.sim.call_soon(lambda: self._resume(None, exc))

    # -- stepping -------------------------------------------------------------

    def _resume(self, send_value: Any, throw_exc: Optional[BaseException]) -> None:
        if self.is_done:
            return
        if throw_exc is None and self._pending_kill is not None:
            # A kill was requested between scheduling this resume and now
            # (e.g. the host crashed before the process's first step).
            throw_exc, self._pending_kill = self._pending_kill, None
        self._in_resume = True
        self._started = True
        # Generator code runs with this process installed as current, so
        # spawned children and the tracer see the right context; restored
        # before completion callbacks fire.
        previous_process = self.sim.current_process
        self.sim.current_process = self
        profiler = self.sim.profiler
        if profiler is not None:
            profiler.process_step_begin(self)
        try:
            if throw_exc is not None:
                yielded = self._generator.throw(throw_exc)
            else:
                yielded = self._generator.send(send_value)
        except StopIteration as stop:
            if profiler is not None:
                profiler.process_step_end(self, finished=True)
            self.sim.current_process = previous_process
            self._in_resume = False
            self._finish_success(stop.value)
            return
        except ProcessKilled as killed:
            if profiler is not None:
                profiler.process_step_end(self, finished=True)
            self.sim.current_process = previous_process
            self._in_resume = False
            self._finish_failure(killed, unhandled=False)
            return
        except BaseException as exc:  # noqa: BLE001 - process body failed
            if profiler is not None:
                profiler.process_step_end(self, finished=True)
            self.sim.current_process = previous_process
            self._in_resume = False
            self._finish_failure(exc, unhandled=True)
            return
        if profiler is not None:
            profiler.process_step_end(self, finished=False)
        self.sim.current_process = previous_process
        self._in_resume = False

        if self._pending_kill is not None:
            exc, self._pending_kill = self._pending_kill, None
            self._wait_generation += 1
            self._waiting_on = None
            self.sim.call_soon(lambda: self._resume(None, exc))
            return

        if not isinstance(yielded, SimFuture):
            error = SimulationError(
                f"process {self.name} yielded {yielded!r}; processes may only "
                "yield SimFuture objects"
            )
            self.sim.call_soon(lambda: self._resume(None, error))
            return

        self._wait(yielded)

    def _wait(self, future: SimFuture) -> None:
        self._waiting_on = future
        self._wait_generation += 1
        generation = self._wait_generation

        def resume_from(resolved: SimFuture) -> None:
            # Re-check staleness at execution time: a kill() issued between
            # the future resolving and this wakeup running must win.
            if self.is_done or generation != self._wait_generation:
                return
            self._waiting_on = None
            if resolved.failed:
                exc = resolved.exception
                assert exc is not None
                self._resume(None, exc)
            else:
                self._resume(resolved._value, None)

        def on_done(resolved: SimFuture) -> None:
            if self.is_done or generation != self._wait_generation:
                return  # stale wakeup (we were killed or redirected)
            self.sim.call_soon(lambda: resume_from(resolved))

        future.add_done_callback(on_done)

    # -- completion -------------------------------------------------------------

    def _finish_success(self, value: Any) -> None:
        trace = self.sim.trace
        if trace.enabled:
            trace.emit("process", f"{self.name} finished")
        self.succeed(value)

    def _finish_failure(self, exc: BaseException, unhandled: bool) -> None:
        trace = self.sim.trace
        if trace.enabled:
            trace.emit("process", f"{self.name} failed", error=type(exc).__name__)
        had_watchers = bool(self._callbacks)
        self.fail(exc)
        if unhandled and not had_watchers:
            self.sim.unhandled_failures.append((self.name, exc))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} {self.state.value}>"
