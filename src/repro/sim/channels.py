"""FIFO channels (mailboxes) between simulation processes.

Channels carry already-delivered items: the *network* decides when a message
arrives (it schedules the ``put``); the channel only hands items to waiting
receivers in deterministic FIFO order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, TYPE_CHECKING

from repro.errors import ChannelClosed
from repro.sim.events import SimFuture

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Channel:
    """An unbounded FIFO queue with future-based receive."""

    __slots__ = ("sim", "name", "_items", "_getters", "_closed", "_get_label")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimFuture] = deque()
        self._closed = False
        # Precomputed: get() runs once per delivered message, and building
        # this label per call dominates the empty-buffer fast path.
        self._get_label = f"chan-get({name})"

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deliver ``item``; wakes the oldest waiting receiver, if any."""
        if self._closed:
            raise ChannelClosed(f"put on closed channel {self.name!r}")
        while self._getters:
            getter = self._getters.popleft()
            # Skip getters whose process was killed while waiting — the
            # item must not be delivered into the void.
            if getter.is_pending and not getter.abandoned:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> SimFuture:
        """A future for the next item (resolved immediately if buffered)."""
        future = SimFuture(self.sim, label=self._get_label)
        if self._items:
            future.succeed(self._items.popleft())
        elif self._closed:
            future.fail(ChannelClosed(f"get on closed channel {self.name!r}"))
        else:
            self._getters.append(future)
        return future

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking receive: ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def close(self) -> None:
        """Close the channel; waiting and future receivers get
        :class:`ChannelClosed`. Buffered items are discarded."""
        if self._closed:
            return
        self._closed = True
        self._items.clear()
        getters, self._getters = self._getters, deque()
        for getter in getters:
            getter.try_fail(ChannelClosed(f"channel {self.name!r} closed"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<Channel {self.name!r} {state} items={len(self._items)} "
            f"waiters={len(self._getters)}>"
        )
