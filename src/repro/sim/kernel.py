"""The event-heap driver of the simulation.

A :class:`Simulator` owns simulated time, an event heap with deterministic
FIFO tie-breaking, seeded random streams, and the trace log.  All other
kernel objects (processes, CPUs, channels) schedule work through it.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import SimFuture, all_of, any_of
from repro.sim.randomness import rng_stream
from repro.sim.tracing import Trace


class ScheduledEvent:
    """A cancellable callback scheduled at an absolute simulated time."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Deterministic discrete-event simulator.

    :param seed: master seed; every named random stream obtained through
        :meth:`rng` derives from it reproducibly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.now: float = 0.0
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._rngs: dict[tuple[str, ...], np.random.Generator] = {}
        self.trace = Trace(self)
        self.processes: list[Any] = []  # populated by Process
        #: the process whose generator is being stepped right now (None
        #: between steps); trace-context inheritance at spawn and the
        #: observability tracer's "current span" both key off it.
        self.current_process: Optional[Any] = None
        #: trace context used when no process is running (driver code).
        self.ambient_trace_context: Optional[Any] = None
        self._obs: Optional[Any] = None
        #: optional host-side kernel profiler
        #: (:class:`repro.obs.profile.SimProfiler`).  Strictly
        #: observational: it measures wall-clock cost per event/step but
        #: never feeds a value back into simulated state, so a profiled
        #: run stays bit-identical to an unprofiled one.
        self.profiler: Optional[Any] = None
        #: (name, exception) pairs of processes that died from an uncaught,
        #: non-kill exception while nobody was watching them.
        self.unhandled_failures: list[tuple[str, BaseException]] = []

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback()`` after ``delay`` simulated seconds.

        Events scheduled for the same instant fire in scheduling order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback()`` at absolute simulated ``time`` (>= now)."""
        return self.schedule(time - self.now, callback)

    def call_soon(self, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback()`` at the current instant, after pending events
        already scheduled for this instant."""
        return self.schedule(0.0, callback)

    # -- execution ----------------------------------------------------------

    def step(self) -> bool:
        """Process the next event. Returns False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now - 1e-12:
                raise SimulationError("event heap time went backwards")
            self.now = max(self.now, event.time)
            profiler = self.profiler
            if profiler is None:
                event.callback()
            else:
                profiler.event_begin(event.callback, len(self._heap))
                try:
                    event.callback()
                finally:
                    profiler.event_end()
            return True
        return False

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_done(self, future: SimFuture, limit: float = float("inf")) -> Any:
        """Drive the simulation until ``future`` resolves; return its value.

        Raises :class:`SimulationError` if the heap drains (deadlock) or the
        time ``limit`` is exceeded while the future is still pending.
        """
        while future.is_pending:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event heap empty but {future!r} is pending"
                )
            if self._heap[0].time > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded while waiting for {future!r}"
                )
            self.step()
        return future.value

    # -- awaitable constructors ----------------------------------------------

    def future(self, label: str = "") -> SimFuture:
        return SimFuture(self, label=label)

    def timeout(self, delay: float, value: Any = None) -> SimFuture:
        """A future that succeeds with ``value`` after ``delay`` seconds."""
        future = SimFuture(self, label=f"timeout({delay})")
        self.schedule(delay, lambda: future.try_succeed(value))
        return future

    def all_of(self, futures: Iterable[SimFuture]) -> SimFuture:
        return all_of(self, futures)

    def any_of(self, futures: Iterable[SimFuture]) -> SimFuture:
        return any_of(self, futures)

    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a generator as a simulation process (see
        :class:`repro.sim.process.Process`)."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- observability ---------------------------------------------------------

    @property
    def obs(self):
        """The simulation's observability hub (metrics registry + span
        tracer), created lazily on first access."""
        if self._obs is None:
            from repro.obs import Observability

            self._obs = Observability(self)
        return self._obs

    # -- randomness -----------------------------------------------------------

    def rng(self, *names: str) -> np.random.Generator:
        """A named, reproducible random stream derived from the master seed.

        Repeated calls with the same names return the same generator object,
        so consumption order within a stream is well-defined.
        """
        key = tuple(names)
        generator = self._rngs.get(key)
        if generator is None:
            generator = rng_stream(self.seed, *names)
            self._rngs[key] = generator
        return generator

    def check_unhandled(self) -> None:
        """Raise the first unhandled process failure, if any.

        Tests call this after a run to make sure no background process died
        silently.
        """
        if self.unhandled_failures:
            name, exc = self.unhandled_failures[0]
            raise SimulationError(
                f"process {name!r} failed with unhandled "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    # -- introspection ---------------------------------------------------------

    @property
    def pending_event_count(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} events={self.pending_event_count}>"
