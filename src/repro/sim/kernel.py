"""The event-heap driver of the simulation.

A :class:`Simulator` owns simulated time, an event heap with deterministic
FIFO tie-breaking, seeded random streams, and the trace log.  All other
kernel objects (processes, CPUs, channels) schedule work through it.

The dispatch loop is the hottest code in the repository — every simulated
network packet, CPU completion and process wake-up passes through it — so
its data layout is chosen for speed:

* heap entries are plain ``(time, seq, event)`` tuples, so ``heapq`` sift
  comparisons stay in C (tuple comparison never reaches the event object
  because ``seq`` is unique) instead of calling a Python ``__lt__`` per
  comparison;
* cancellation is lazy (the entry stays in the heap, flagged) with a
  cancelled-entry counter, so ``pending_event_count`` is derived O(1) as
  ``len(heap) - cancelled`` — the hot pop path touches no counter at all —
  and the heap compacts in place once cancelled entries dominate it;
* :meth:`Simulator.run` inlines the drain loop (pop-first when unbounded,
  peek-first when ``until``-bounded) so dispatching an event costs no
  method calls beyond the callback itself, and the profiler hook costs a
  single ``None`` check per event when disabled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import SimFuture, all_of, any_of
from repro.sim.randomness import rng_stream
from repro.sim.tracing import Trace

#: compaction threshold: rebuild the heap once at least this many entries
#: are cancelled *and* they make up at least half of the heap.
_COMPACT_MIN_CANCELLED = 64

#: slack for the monotonic-time assertion (float addition noise).
_TIME_EPSILON = 1e-12


class ScheduledEvent:
    """A cancellable callback scheduled at an absolute simulated time."""

    __slots__ = ("time", "seq", "callback", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: owning simulator while the entry sits in the heap; detached
        #: (set to None) when popped, so a late cancel() only flips the
        #: flag without touching the live counters.
        self.sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancel()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Deterministic discrete-event simulator.

    :param seed: master seed; every named random stream obtained through
        :meth:`rng` derives from it reproducibly.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.now: float = 0.0
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._running = False
        #: cancelled entries still sitting in the heap (lazy deletion).
        #: ``pending_event_count`` is ``len(_heap)`` minus this, so the
        #: hot dispatch loop never maintains a live-event counter.
        self._cancelled_in_heap = 0
        self._rngs: dict[tuple[str, ...], np.random.Generator] = {}
        self.trace = Trace(self)
        #: live processes; finished ones are compacted out periodically so
        #: long request streams do not accumulate dead Process objects.
        self.processes: list[Any] = []
        #: the process whose generator is being stepped right now (None
        #: between steps); trace-context inheritance at spawn and the
        #: observability tracer's "current span" both key off it.
        self.current_process: Optional[Any] = None
        #: trace context used when no process is running (driver code).
        self.ambient_trace_context: Optional[Any] = None
        self._obs: Optional[Any] = None
        #: optional host-side kernel profiler
        #: (:class:`repro.obs.profile.SimProfiler`).  Strictly
        #: observational: it measures wall-clock cost per event/step but
        #: never feeds a value back into simulated state, so a profiled
        #: run stays bit-identical to an unprofiled one.
        self.profiler: Optional[Any] = None
        #: (name, exception) pairs of processes that died from an uncaught,
        #: non-kill exception while nobody was watching them.
        self.unhandled_failures: list[tuple[str, BaseException]] = []

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback()`` after ``delay`` simulated seconds.

        Events scheduled for the same instant fire in scheduling order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback()`` at absolute simulated ``time`` (>= now)."""
        return self.schedule(time - self.now, callback)

    def call_soon(self, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback()`` at the current instant, after pending events
        already scheduled for this instant."""
        return self.schedule(0.0, callback)

    # -- heap bookkeeping ----------------------------------------------------

    def _note_cancel(self) -> None:
        """One in-heap entry was cancelled; compact when they dominate."""
        cancelled = self._cancelled_in_heap + 1
        self._cancelled_in_heap = cancelled
        if (
            cancelled >= _COMPACT_MIN_CANCELLED
            and 2 * cancelled >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In place (slice assignment) so any local reference to the heap —
        the dispatch loop's, or a callback's via ``_heap`` — stays valid.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled_in_heap = 0

    def _pop_event(self, max_time: Optional[float]) -> Optional[ScheduledEvent]:
        """Pop the next live event, discarding cancelled entries.

        The cancelled-skip path used by :meth:`step` and
        :meth:`run_until_done`.  :meth:`run` inlines the same logic (the
        bulk drain cannot afford a method call per event) — the two inline
        loops there must mirror any change made here.  Returns ``None``
        when the heap drains or the next live event lies beyond
        ``max_time`` (which is then left in the heap).
        """
        heap = self._heap
        pop = heapq.heappop
        while heap:
            head = heap[0]
            event = head[2]
            if event.cancelled:
                pop(heap)
                self._cancelled_in_heap -= 1
                continue
            if max_time is not None and head[0] > max_time:
                return None
            pop(heap)
            event.sim = None
            return event
        return None

    # -- execution ----------------------------------------------------------

    def _dispatch(self, event: ScheduledEvent) -> None:
        """Invoke one event's callback (profiler hooks when installed)."""
        profiler = self.profiler
        if profiler is None:
            event.callback()
        else:
            profiler.event_begin(event.callback, len(self._heap))
            try:
                event.callback()
            finally:
                profiler.event_end()

    def step(self) -> bool:
        """Process the next event. Returns False when the heap is empty."""
        event = self._pop_event(None)
        if event is None:
            return False
        time = event.time
        if time < self.now - _TIME_EPSILON:
            raise SimulationError("event heap time went backwards")
        if time > self.now:
            self.now = time
        self._dispatch(event)
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        # Both loops below inline ``_pop_event``'s cancelled-skip and
        # detach accounting — the hot path pays no method call per event
        # beyond the callback itself.  ``heap`` can be cached because
        # ``_compact`` rebuilds it in place (slice assignment).
        heap = self._heap
        pop = heapq.heappop
        epsilon = _TIME_EPSILON
        try:
            if until is None:
                # Unbounded drain: pop first, no head peek needed — a
                # cancelled entry is discarded after the pop instead of
                # being peeked at twice.
                while heap:
                    time, _, event = pop(heap)
                    if event.cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    event.sim = None
                    now = self.now
                    if time > now:
                        self.now = time
                    elif time < now - epsilon:
                        raise SimulationError("event heap time went backwards")
                    if self.profiler is None:
                        event.callback()
                    else:
                        self._dispatch(event)
            else:
                # Bounded run: peek before popping so the first event past
                # ``until`` stays in the heap.
                while heap:
                    head = heap[0]
                    event = head[2]
                    if event.cancelled:
                        pop(heap)
                        self._cancelled_in_heap -= 1
                        continue
                    time = head[0]
                    if time > until:
                        break
                    pop(heap)
                    event.sim = None
                    now = self.now
                    if time > now:
                        self.now = time
                    elif time < now - epsilon:
                        raise SimulationError("event heap time went backwards")
                    if self.profiler is None:
                        event.callback()
                    else:
                        self._dispatch(event)
                if self.now < until:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_done(self, future: SimFuture, limit: float = float("inf")) -> Any:
        """Drive the simulation until ``future`` resolves; return its value.

        Raises :class:`SimulationError` if the heap drains (deadlock) or the
        time ``limit`` is exceeded while the future is still pending.
        """
        while future.is_pending:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event heap empty but {future!r} is pending"
                )
            if self._heap[0][0] > limit:
                raise SimulationError(
                    f"time limit {limit} exceeded while waiting for {future!r}"
                )
            self.step()
        return future.value

    # -- awaitable constructors ----------------------------------------------

    def future(self, label: str = "") -> SimFuture:
        return SimFuture(self, label=label)

    def timeout(self, delay: float, value: Any = None) -> SimFuture:
        """A future that succeeds with ``value`` after ``delay`` seconds."""
        future = SimFuture(self, label="timeout")
        self.schedule(delay, lambda: future.try_succeed(value))
        return future

    def all_of(self, futures: Iterable[SimFuture]) -> SimFuture:
        return all_of(self, futures)

    def any_of(self, futures: Iterable[SimFuture]) -> SimFuture:
        return any_of(self, futures)

    def spawn(self, generator: Generator, name: str = "") -> "Process":
        """Start a generator as a simulation process (see
        :class:`repro.sim.process.Process`)."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def _register_process(self, process: Any) -> None:
        """Track a live process; compact finished ones so unbounded
        request streams (millions of short-lived processes) stay O(live)."""
        processes = self.processes
        processes.append(process)
        if len(processes) > 512:
            live = [p for p in processes if p.is_pending]
            if len(live) < len(processes):
                self.processes = live

    # -- observability ---------------------------------------------------------

    @property
    def obs(self) -> Any:
        """The simulation's observability hub (metrics registry + span
        tracer), created lazily on first access."""
        if self._obs is None:
            from repro.obs import Observability

            self._obs = Observability(self)
        return self._obs

    # -- randomness -----------------------------------------------------------

    def rng(self, *names: str) -> np.random.Generator:
        """A named, reproducible random stream derived from the master seed.

        Repeated calls with the same names return the same generator object,
        so consumption order within a stream is well-defined.
        """
        key = tuple(names)
        generator = self._rngs.get(key)
        if generator is None:
            generator = rng_stream(self.seed, *names)
            self._rngs[key] = generator
        return generator

    def check_unhandled(self) -> None:
        """Raise the first unhandled process failure, if any.

        Tests call this after a run to make sure no background process died
        silently.
        """
        if self.unhandled_failures:
            name, exc = self.unhandled_failures[0]
            raise SimulationError(
                f"process {name!r} failed with unhandled "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    # -- introspection ---------------------------------------------------------

    @property
    def pending_event_count(self) -> int:
        """Live (non-cancelled) scheduled events — O(1), derived from the
        heap length and the lazily-deleted-entry counter rather than
        recounted per call (or maintained per pop)."""
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self.now:.6f} events={self.pending_event_count}>"
