"""Processor-sharing CPU resource.

This is the mechanism behind every runtime number in the paper's evaluation:
compute tasks submitted to a host's CPU share it equally (round-robin
scheduling of CPU-bound processes, the classic egalitarian
processor-sharing model of Unix timesharing).  A background-load process on
a host therefore halves the rate of a co-located worker — exactly the effect
Fig. 3 measures.

The CPU also integrates its busy time so the Winner node manager can sample
utilization, and exposes its run-queue length for load-average metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import ComputeAborted, SimulationError
from repro.sim.events import SimFuture

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import ScheduledEvent, Simulator

_WORK_EPSILON = 1e-9


@dataclass(slots=True)
class _Task:
    task_id: int
    remaining: float
    future: SimFuture
    total: float


class ProcessorSharingCPU:
    """A multi-core CPU with egalitarian processor sharing.

    :param speed: work units per second delivered to a task running alone on
        one core.  Relative host speeds (the Winner "benchmark rating") are
        expressed through this.
    :param cores: number of cores; ``n`` tasks on ``c`` cores each progress
        at ``speed * min(1, c / n)``.
    """

    __slots__ = (
        "sim",
        "speed",
        "cores",
        "_tasks",
        "_ids",
        "_last_update",
        "_completion",
        "busy_integral",
        "work_completed",
    )

    def __init__(self, sim: "Simulator", speed: float = 1.0, cores: int = 1) -> None:
        if speed <= 0:
            raise SimulationError(f"CPU speed must be positive, got {speed}")
        if cores < 1:
            raise SimulationError(f"CPU needs at least one core, got {cores}")
        self.sim = sim
        self.speed = speed
        self.cores = cores
        self._tasks: dict[int, _Task] = {}
        self._ids = itertools.count()
        self._last_update = sim.now
        self._completion: Optional["ScheduledEvent"] = None
        #: time-integral of the fraction of total capacity in use.
        self.busy_integral = 0.0
        #: total work units completed (for accounting/ablation reports).
        self.work_completed = 0.0

    # -- public API -----------------------------------------------------------

    def execute(self, work: float) -> SimFuture:
        """Submit ``work`` units; returns a future that succeeds with the
        elapsed simulated duration when the task finishes."""
        if work < 0:
            raise SimulationError(f"work must be non-negative, got {work}")
        future = SimFuture(self.sim, label="cpu-task")
        if work <= _WORK_EPSILON:
            self.work_completed += work
            self.sim.call_soon(lambda: future.try_succeed(0.0))
            return future
        self._advance()
        task = _Task(next(self._ids), work, future, work)
        self._tasks[task.task_id] = task
        # If the waiting process is killed, stop burning CPU for it (a
        # killed Unix process leaves the run queue immediately).
        future.on_abandoned(lambda: self._abort_task(task.task_id))
        self._reschedule()
        return future

    def _abort_task(self, task_id: int) -> None:
        if task_id in self._tasks:
            self._advance()
            del self._tasks[task_id]
            self._reschedule()

    def abort_all(self, exc: Optional[BaseException] = None) -> int:
        """Fail every in-flight task (host crash). Returns the count."""
        self._advance()
        tasks = list(self._tasks.values())
        self._tasks.clear()
        self._cancel_completion()
        for task in tasks:
            task.future.try_fail(
                exc if exc is not None else ComputeAborted("host crashed")
            )
        return len(tasks)

    @property
    def run_queue_length(self) -> int:
        """Number of tasks currently sharing the CPU."""
        return len(self._tasks)

    @property
    def per_task_rate(self) -> float:
        """Current progress rate of each task, in work units per second."""
        n = len(self._tasks)
        if n == 0:
            return self.speed
        return self.speed * min(1.0, self.cores / n)

    def utilization_integral(self) -> float:
        """Busy integral up to *now* (advance bookkeeping first)."""
        self._advance()
        return self.busy_integral

    def set_speed(self, speed: float) -> None:
        """Change the delivered speed mid-run (gray-host degradation).

        Work already completed is accounted at the old rate; in-flight
        tasks continue at the new rate from *now*.
        """
        if speed <= 0:
            raise SimulationError(f"CPU speed must be positive, got {speed}")
        self._advance()
        self.speed = speed
        self._reschedule()

    # -- internals ----------------------------------------------------------

    def _advance(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_update
        if elapsed <= 0:
            self._last_update = now
            return
        n = len(self._tasks)
        if n:
            rate = self.per_task_rate
            for task in self._tasks.values():
                done = min(task.remaining, rate * elapsed)
                task.remaining -= done
                self.work_completed += done
            self.busy_integral += elapsed * min(n, self.cores) / self.cores
        self._last_update = now

    def _cancel_completion(self) -> None:
        if self._completion is not None:
            self._completion.cancel()
            self._completion = None

    def _reschedule(self) -> None:
        self._cancel_completion()
        if not self._tasks:
            return
        rate = self.per_task_rate
        shortest = min(task.remaining for task in self._tasks.values())
        delay = max(0.0, shortest / rate)
        self._completion = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._completion = None
        self._advance()
        finished = [
            t for t in self._tasks.values() if t.remaining <= _WORK_EPSILON
        ]
        if not finished:
            # Numerical slack: the shortest task is within epsilon of done
            # but rounding left a sliver; force-complete the minimum.
            shortest = min(self._tasks.values(), key=lambda t: t.remaining)
            if shortest.remaining <= _WORK_EPSILON * max(1.0, shortest.total):
                finished = [shortest]
        for task in finished:
            del self._tasks[task.task_id]
        self._reschedule()
        for task in finished:
            task.future.try_succeed(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CPU speed={self.speed} cores={self.cores} "
            f"queue={len(self._tasks)}>"
        )
