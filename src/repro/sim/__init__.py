"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs: a
generator-based process model (in the style of SimPy), futures, timeouts,
processor-sharing CPU resources and FIFO channels, all driven by a single
event heap with deterministic tie-breaking.

Everything above this layer — the simulated network, the ORB, the Winner
resource manager, the optimization workloads — expresses waiting and
computing by yielding :class:`SimFuture` objects from generator processes.
"""

from repro.sim.events import SimFuture, all_of, any_of
from repro.sim.kernel import ScheduledEvent, Simulator
from repro.sim.process import Process
from repro.sim.resources import ProcessorSharingCPU
from repro.sim.channels import Channel
from repro.sim.sync import Lock
from repro.sim.randomness import stable_hash, rng_stream
from repro.sim.tracing import Trace, TraceRecord

__all__ = [
    "Channel",
    "Lock",
    "Process",
    "ProcessorSharingCPU",
    "ScheduledEvent",
    "SimFuture",
    "Simulator",
    "Trace",
    "TraceRecord",
    "all_of",
    "any_of",
    "rng_stream",
    "stable_hash",
]
