"""Structured trace log for the simulation.

Components emit timestamped records into the simulator's trace; tests and
benchmark reports filter them by category.  Tracing is cheap when disabled
(a single predicate check per emit).

The log can be bounded (:meth:`Trace.set_capacity`): with a capacity set it
behaves as a ring buffer — the newest records are kept, the oldest dropped
and counted in :attr:`Trace.dropped` — so long benchmark runs cannot grow
memory without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.category:<12} {self.message} {extra}".rstrip()


class Trace:
    """Collects :class:`TraceRecord` objects during a run.

    :param capacity: maximum records retained (ring buffer; oldest dropped
        and counted in :attr:`dropped`).  ``None`` (the default) keeps
        everything.
    """

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None) -> None:
        self._sim = sim
        self.enabled = False
        self.records: deque[TraceRecord] = deque(maxlen=capacity)
        #: records discarded because the ring buffer was full.
        self.dropped = 0
        self._filter: Optional[Callable[[str], bool]] = None

    @property
    def capacity(self) -> Optional[int]:
        return self.records.maxlen

    def set_capacity(self, capacity: Optional[int]) -> None:
        """Bound (or unbound) the log; keeps the newest records when
        shrinking and counts the evicted ones in :attr:`dropped`."""
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        before = len(self.records)
        self.records = deque(self.records, maxlen=capacity)
        self.dropped += before - len(self.records)

    def enable(self, categories: Optional[set[str]] = None) -> None:
        """Turn tracing on, optionally restricted to ``categories``.

        Passing ``categories=None`` (the default) clears any previously
        installed category filter — re-enabling without arguments always
        records everything again.  An *empty* set is honoured as "record
        no categories" rather than treated as "no filter".
        """
        self.enabled = True
        self._filter = (
            (lambda c: c in categories) if categories is not None else None
        )

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def emit(self, category: str, message: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._filter is not None and not self._filter(category):
            return
        if (
            self.records.maxlen is not None
            and len(self.records) == self.records.maxlen
        ):
            self.dropped += 1
        self.records.append(
            TraceRecord(self._sim.now, category, message, dict(fields))
        )

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.category == category)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
