"""Structured trace log for the simulation.

Components emit timestamped records into the simulator's trace; tests and
benchmark reports filter them by category.  Tracing is cheap when disabled
(a single predicate check per emit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    message: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:12.6f}] {self.category:<12} {self.message} {extra}".rstrip()


class Trace:
    """Collects :class:`TraceRecord` objects during a run."""

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self.enabled = False
        self.records: list[TraceRecord] = []
        self._filter: Optional[Callable[[str], bool]] = None

    def enable(self, categories: Optional[set[str]] = None) -> None:
        """Turn tracing on, optionally restricted to ``categories``."""
        self.enabled = True
        self._filter = (lambda c: c in categories) if categories else None

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records.clear()

    def emit(self, category: str, message: str, **fields: Any) -> None:
        if not self.enabled:
            return
        if self._filter is not None and not self._filter(category):
            return
        self.records.append(
            TraceRecord(self._sim.now, category, message, dict(fields))
        )

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.category == category)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
