"""Futures and combinators for the simulation kernel.

A :class:`SimFuture` is the single awaitable primitive: processes yield
futures, and every other waitable object in the system (timeouts, CPU tasks,
channel receives, ORB replies, whole processes) either *is* a future or
resolves one.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class FutureState(enum.Enum):
    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class SimFuture:
    """A one-shot result container resolved at a simulated instant.

    Callbacks registered with :meth:`add_done_callback` run *synchronously*
    in resolution order when the future resolves; the kernel relies on this
    for deterministic process wake-up ordering (the waking of blocked
    processes is itself funnelled through the event heap by
    :class:`~repro.sim.process.Process`).
    """

    __slots__ = (
        "sim",
        "_state",
        "_value",
        "_exception",
        "_callbacks",
        "label",
        "abandoned",
        "_abandon_callbacks",
    )

    def __init__(self, sim: "Simulator", label: str = "") -> None:
        self.sim = sim
        self._state = FutureState.PENDING
        self._value: Any = None
        self._exception: BaseException | None = None
        # Callback lists start as None: most futures (CPU tasks, channel
        # gets at scale) resolve with at most one observer, so the empty
        # list per future is pure allocation overhead on the hot path.
        self._callbacks: list[Callable[[SimFuture], None]] | None = None
        self.label = label
        #: set when the (sole) process waiting on this future was killed;
        #: single-consumer resources (locks, channel receives) check it to
        #: avoid handing a resource to a dead process, and producers (CPU
        #: tasks) use the callback to stop work nobody is waiting for.
        self.abandoned = False
        self._abandon_callbacks: list[Callable[[], None]] | None = None

    def on_abandoned(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` if the waiting process is ever killed."""
        if self.abandoned:
            callback()
        elif self._abandon_callbacks is None:
            self._abandon_callbacks = [callback]
        else:
            self._abandon_callbacks.append(callback)

    def mark_abandoned(self) -> None:
        """Flag this future as abandoned and notify producers. Idempotent;
        a no-op once the future has resolved."""
        if self.abandoned or self.is_done:
            return
        self.abandoned = True
        callbacks, self._abandon_callbacks = self._abandon_callbacks, None
        if callbacks:
            for callback in callbacks:
                callback()

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> FutureState:
        return self._state

    @property
    def is_pending(self) -> bool:
        return self._state is FutureState.PENDING

    @property
    def is_done(self) -> bool:
        return self._state is not FutureState.PENDING

    @property
    def succeeded(self) -> bool:
        return self._state is FutureState.SUCCEEDED

    @property
    def failed(self) -> bool:
        return self._state is FutureState.FAILED

    @property
    def value(self) -> Any:
        """The result value. Raises if pending or failed."""
        if self._state is FutureState.PENDING:
            raise SimulationError(f"future {self.label or self!r} is still pending")
        if self._state is FutureState.FAILED:
            assert self._exception is not None
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- resolution -------------------------------------------------------

    def succeed(self, value: Any = None) -> "SimFuture":
        if self._state is not FutureState.PENDING:
            raise SimulationError(
                f"future {self.label or self!r} already {self._state.value}"
            )
        self._state = FutureState.SUCCEEDED
        self._value = value
        self._dispatch()
        return self

    def fail(self, exc: BaseException) -> "SimFuture":
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() expects an exception, got {exc!r}")
        if self._state is not FutureState.PENDING:
            raise SimulationError(
                f"future {self.label or self!r} already {self._state.value}"
            )
        self._state = FutureState.FAILED
        self._exception = exc
        self._dispatch()
        return self

    def try_succeed(self, value: Any = None) -> bool:
        """Resolve if still pending; return whether this call resolved it."""
        if self._state is not FutureState.PENDING:
            return False
        self.succeed(value)
        return True

    def try_fail(self, exc: BaseException) -> bool:
        if self._state is not FutureState.PENDING:
            return False
        self.fail(exc)
        return True

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    # -- observation ------------------------------------------------------

    def add_done_callback(self, callback: Callable[["SimFuture"], None]) -> None:
        """Register ``callback(self)``; runs immediately if already done."""
        if self._state is not FutureState.PENDING:
            callback(self)
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        detail = self.label or hex(id(self))
        return f"<SimFuture {detail} {self._state.value}>"


def all_of(sim: "Simulator", futures: Iterable[SimFuture]) -> SimFuture:
    """A future that succeeds with the list of values once *all* inputs
    succeed, or fails with the first failure (in resolution order)."""
    futures = list(futures)
    result = SimFuture(sim, label="all_of")
    if not futures:
        result.succeed([])
        return result
    remaining = len(futures)

    def on_done(_: SimFuture) -> None:
        nonlocal remaining
        if not result.is_pending:
            return
        remaining -= 1
        failed = next((f for f in futures if f.failed), None)
        if failed is not None:
            result.fail(failed.exception)  # type: ignore[arg-type]
        elif remaining == 0:
            result.succeed([f.value for f in futures])

    for future in futures:
        future.add_done_callback(on_done)
    return result


def any_of(sim: "Simulator", futures: Iterable[SimFuture]) -> SimFuture:
    """A future resolving with ``(index, value)`` of the first input to
    succeed, or failing once *every* input has failed (with the last
    failure's exception)."""
    futures = list(futures)
    result = SimFuture(sim, label="any_of")
    if not futures:
        raise SimulationError("any_of() requires at least one future")
    remaining = len(futures)

    def make_callback(index: int) -> Callable[[SimFuture], None]:
        def on_done(future: SimFuture) -> None:
            nonlocal remaining
            if not result.is_pending:
                return
            if future.succeeded:
                result.succeed((index, future._value))
            else:
                remaining -= 1
                if remaining == 0:
                    result.fail(future.exception)  # type: ignore[arg-type]

        return on_done

    for i, future in enumerate(futures):
        future.add_done_callback(make_callback(i))
    return result
