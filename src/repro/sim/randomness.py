"""Reproducible named random streams.

Every stochastic decision in the system (background-load placement, random
selection strategies, optimizer restarts, failure schedules) draws from a
stream derived from ``(master seed, *names)``.  Streams are independent of
each other and of creation order, so adding a new consumer never perturbs
existing experiments.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_hash(text: str) -> int:
    """A process-independent 32-bit hash of ``text``.

    Python's builtin ``hash`` is salted per process; CRC-32 is stable across
    runs and platforms, which is what reproducible seeding needs.
    """
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def rng_stream(seed: int, *names: str) -> np.random.Generator:
    """Create an independent generator for ``(seed, *names)``.

    Uses :class:`numpy.random.SeedSequence` spawn keys so distinct name
    tuples give statistically independent streams.
    """
    sequence = np.random.SeedSequence(
        entropy=seed & 0xFFFFFFFFFFFFFFFF,
        spawn_key=tuple(stable_hash(name) for name in names),
    )
    return np.random.default_rng(sequence)
