"""Synchronization primitives for simulation processes."""

from __future__ import annotations

from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import SimFuture

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Lock:
    """A FIFO mutex for simulation processes.

    Usage inside a process::

        yield lock.acquire()
        try:
            ...critical section...
        finally:
            lock.release()

    The fault-tolerance proxies use one lock per proxied object to
    serialize wrapped calls, checkpoints and migrations — "state after the
    call" is only well-defined if calls do not interleave with snapshots.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._held = False
        self._waiters: deque[SimFuture] = deque()
        #: contention statistics
        self.acquisitions = 0
        self.waits = 0

    @property
    def held(self) -> bool:
        return self._held

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def acquire(self) -> SimFuture:
        """A future that succeeds once the lock is held by the caller."""
        future = SimFuture(self.sim, label=f"lock:{self.name}")
        if not self._held:
            self._held = True
            self.acquisitions += 1
            future.succeed(None)
        else:
            self.waits += 1
            self._waiters.append(future)
        return future

    def release(self) -> None:
        """Pass the lock to the next waiter (FIFO) or free it."""
        if not self._held:
            raise SimulationError(f"release of unheld lock {self.name!r}")
        while self._waiters:
            waiter = self._waiters.popleft()
            # Skip waiters whose process was killed while queued.
            if waiter.is_pending and not waiter.abandoned:
                self.acquisitions += 1
                waiter.succeed(None)
                return
        self._held = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "held" if self._held else "free"
        return f"<Lock {self.name!r} {state} waiters={len(self._waiters)}>"
