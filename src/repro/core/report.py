"""Deployment reports: what happened on the simulated NOW.

Aggregates per-host CPU accounting, network counters, per-operation ORB
statistics and fault-tolerance activity into one structure — the
"experiment debrief" every bench and example can print.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.bench.reporting import format_table
from repro.obs.slo import slo_report
from repro.orb import cdr

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import Runtime


def runtime_report(runtime: "Runtime") -> dict:
    """Collect a structured snapshot of a runtime's activity."""
    sim = runtime.sim
    hosts = []
    for host in runtime.cluster:
        busy = host.cpu.utilization_integral()
        hosts.append(
            {
                "host": host.name,
                "up": host.up,
                "speed": host.speed,
                "cores": host.cores,
                "cpu_busy_seconds": busy,
                "utilization": busy / sim.now / host.cores if sim.now > 0 else 0.0,
                "work_completed": host.cpu.work_completed,
                "crashes": host.crash_count,
            }
        )
    network = runtime.network
    operations: dict[str, dict] = {}
    for orb in runtime._orbs.values():
        for name, stats in orb.call_stats.items():
            entry = operations.setdefault(
                name,
                {"calls": 0, "failures": 0, "total_latency": 0.0, "max_latency": 0.0},
            )
            entry["calls"] += stats.calls
            entry["failures"] += stats.failures
            entry["total_latency"] += stats.total_latency
            entry["max_latency"] = max(entry["max_latency"], stats.max_latency)
    for entry in operations.values():
        entry["mean_latency"] = (
            entry["total_latency"] / entry["calls"] if entry["calls"] else 0.0
        )

    servant = runtime.store_servant
    ft = {
        "checkpoints_stored": servant.stores if servant else 0,
        "checkpoint_bytes": (
            servant.backend.bytes_written if servant else 0
        ),
        "delta_stores": servant.delta_stores if servant else 0,
        "delta_bytes": (
            servant.backend.delta_bytes_written if servant else 0
        ),
        "delta_rejections": servant.delta_rejections if servant else 0,
        "recoveries": sum(c.recoveries for c in runtime._coordinators.values()),
        "failed_recoveries": sum(
            c.failed_recoveries for c in runtime._coordinators.values()
        ),
        "recovery_time_total": sum(
            c.recovery_time_total for c in runtime._coordinators.values()
        ),
    }

    # Per-proxy checkpoint fast-path behaviour, aggregated across every
    # FtContext the runtime handed out.
    contexts = runtime._ft_contexts
    proxies = {
        "proxies": len(contexts),
        "calls": sum(c.calls for c in contexts),
        "checkpoints_taken": sum(c.checkpoints_taken for c in contexts),
        "retries": sum(c.retries for c in contexts),
        "checkpoints_buffered": sum(c.checkpoints_buffered for c in contexts),
        "checkpoints_flushed": sum(c.checkpoints_flushed for c in contexts),
        "checkpoints_skipped": sum(c.checkpoints_skipped for c in contexts),
        "deltas_sent": sum(c.deltas_sent for c in contexts),
        "fulls_sent": sum(c.fulls_sent for c in contexts),
        "delta_fallbacks": sum(c.delta_fallbacks for c in contexts),
        "bytes_shipped": sum(c.checkpoint_bytes_shipped for c in contexts),
        "pipeline_stalls": sum(c.pipeline_stalls for c in contexts),
        "pipeline_peak_depth": max(
            (c.pipeline_peak_depth for c in contexts), default=0
        ),
        "pipeline_inflight": sum(c.pipeline_depth for c in contexts),
        "buffer_depth": sum(len(c.buffered_checkpoints) for c in contexts),
    }

    # First-class replication groups (warm-passive / active ft_mode) plus
    # the server-side replica wrappers the factories created for them.
    groups = [c.group for c in contexts if c.group is not None]
    members = runtime._replica_members
    replication = {
        "groups": len(groups),
        "modes": sorted({g.mode for g in groups}),
        "members": sum(len(g.members) for g in groups),
        "retired": sum(len(g.retired) for g in groups),
        "calls": sum(g.calls for g in groups),
        "promotions": sum(g.promotions for g in groups),
        "lead_changes": sum(g.lead_changes for g in groups),
        "state_ships_full": sum(g.state_ships_full for g in groups),
        "state_ships_delta": sum(g.state_ships_delta for g in groups),
        "ship_bytes": sum(g.ship_bytes for g in groups),
        "delta_fallbacks": sum(g.delta_fallbacks for g in groups),
        "replacements": sum(g.replacements for g in groups),
        "replacement_failures": sum(
            g.replacement_failures for g in groups
        ),
        "votes": sum(g.votes for g in groups),
        "vote_rounds": sum(g.vote_rounds for g in groups),
        "divergences": sum(g.divergences for g in groups),
        "resyncs": sum(g.resyncs for g in groups),
        "replicas_created": len(members),
        "dispatches": sum(m.dispatches for m in members),
        "applies": sum(m.applies for m in members),
        "duplicates_suppressed": sum(
            m.duplicates_suppressed for m in members
        ),
        "state_restores": sum(m.state_restores for m in members),
    }

    # The resolve fast path: naming-side cache, Winner delta reports and
    # ORB connection reuse (all zeros/disabled unless the flags are on).
    naming = runtime.naming_root
    if naming is not None and naming.resolve_cache is not None:
        resolve_cache = naming.resolve_cache.snapshot()
    else:
        resolve_cache = {"enabled": False}
    connections: dict = {"enabled": False}
    for orb in runtime._orbs.values():
        if orb.connections is None:
            continue
        snap = orb.connections.snapshot()
        if not connections["enabled"]:
            connections = snap
        else:
            for key, value in snap.items():
                if key not in ("enabled", "capacity"):
                    connections[key] += value
    winner_reports = {
        "full_reports_sent": sum(
            nm.full_reports_sent for nm in runtime._node_managers.values()
        ),
        "delta_reports_sent": sum(
            nm.delta_reports_sent for nm in runtime._node_managers.values()
        ),
        "reports_coalesced": sum(
            nm.reports_coalesced for nm in runtime._node_managers.values()
        ),
        "report_bytes_sent": sum(
            nm.report_bytes_sent for nm in runtime._node_managers.values()
        ),
        "delta_reports_received": (
            runtime.system_manager.delta_reports_received
            if runtime.system_manager
            else 0
        ),
        "delta_reports_ignored": (
            runtime.system_manager.delta_reports_ignored
            if runtime.system_manager
            else 0
        ),
    }

    # Marshal-codegen counters are process-global (the cdr registries are
    # shared, like the plan cache); mirror them into this sim's Prometheus
    # registry as gauges so `repro.obs` exports carry them.
    codegen = cdr.marshal_codegen_stats()
    metrics = sim.obs.metrics
    metrics.gauge("marshal_codegen_enabled").set(1.0 if codegen["enabled"] else 0.0)
    for key, value in codegen.items():
        if key == "enabled":
            continue
        metrics.gauge(f"marshal_codegen_{key}").set(float(value))

    return {
        "simulated_time": sim.now,
        "hosts": hosts,
        "network": {
            "messages_sent": network.messages_sent,
            "messages_delivered": network.messages_delivered,
            "messages_dropped": network.messages_dropped,
            "bytes_sent": network.bytes_sent,
        },
        "operations": operations,
        "fault_tolerance": ft,
        "ft_proxies": proxies,
        "replication": replication,
        "resolve_cache": resolve_cache,
        "connection_cache": connections,
        "winner_reports": winner_reports,
        "cdr_plan_cache": cdr.plan_cache_stats(),
        "marshal_codegen": codegen,
        "observability": sim.obs.report(),
        "slo": slo_report(sim.obs.metrics.snapshot()),
    }


def format_runtime_report(report: dict) -> str:
    """Human-readable rendering of :func:`runtime_report`."""
    sections = []
    sections.append(
        format_table(
            ["host", "up", "speed", "cores", "busy [s]", "util", "crashes"],
            [
                [
                    row["host"],
                    "yes" if row["up"] else "DOWN",
                    row["speed"],
                    row["cores"],
                    f"{row['cpu_busy_seconds']:.2f}",
                    f"{row['utilization']:.2%}",
                    row["crashes"],
                ]
                for row in report["hosts"]
            ],
            title=f"Hosts after {report['simulated_time']:.2f} simulated seconds",
        )
    )
    net = report["network"]
    sections.append(
        f"Network: {net['messages_sent']} sent, {net['messages_delivered']} "
        f"delivered, {net['messages_dropped']} dropped, "
        f"{net['bytes_sent']} bytes"
    )
    if report["operations"]:
        sections.append(
            format_table(
                ["operation", "calls", "failures", "mean latency [s]", "max [s]"],
                [
                    [
                        name,
                        stats["calls"],
                        stats["failures"],
                        f"{stats['mean_latency']:.4f}",
                        f"{stats['max_latency']:.4f}",
                    ]
                    for name, stats in sorted(report["operations"].items())
                ],
                title="ORB operations (all client ORBs)",
            )
        )
    ft = report["fault_tolerance"]
    ft_line = (
        f"Fault tolerance: {ft['checkpoints_stored']} checkpoints "
        f"({ft['checkpoint_bytes']} bytes), {ft['recoveries']} recoveries "
        f"({ft['recovery_time_total']:.3f}s), "
        f"{ft['failed_recoveries']} failed"
    )
    if ft["delta_stores"] or ft["delta_rejections"]:
        ft_line += (
            f"; store-side deltas: {ft['delta_stores']} applied "
            f"({ft['delta_bytes']} bytes), "
            f"{ft['delta_rejections']} rejected"
        )
    sections.append(ft_line)
    proxies = report.get("ft_proxies")
    if proxies and proxies["proxies"]:
        line = (
            f"FT proxies: {proxies['proxies']} proxies, "
            f"{proxies['calls']} calls "
            f"({proxies['retries']} retries), "
            f"{proxies['checkpoints_taken']} checkpoints taken "
            f"({proxies['checkpoints_buffered']} buffered, "
            f"{proxies['checkpoints_flushed']} flushed)"
        )
        fastpath = (
            proxies["checkpoints_skipped"]
            or proxies["deltas_sent"]
            or proxies["pipeline_stalls"]
            or proxies["pipeline_peak_depth"]
        )
        if fastpath:
            line += (
                f"; fast path: {proxies['deltas_sent']} deltas / "
                f"{proxies['fulls_sent']} fulls "
                f"({proxies['delta_fallbacks']} fallbacks, "
                f"{proxies['checkpoints_skipped']} skipped, "
                f"{proxies['bytes_shipped']} bytes shipped), "
                f"pipeline peak depth {proxies['pipeline_peak_depth']} "
                f"({proxies['pipeline_stalls']} stalls, "
                f"{proxies['pipeline_inflight']} in flight and "
                f"{proxies['buffer_depth']} buffered at report time)"
            )
        sections.append(line)
    repl = report.get("replication")
    if repl and repl["groups"]:
        line = (
            f"Replication: {repl['groups']} group(s) "
            f"[{'/'.join(repl['modes'])}], {repl['calls']} calls, "
            f"{repl['promotions']} promotions, "
            f"{repl['lead_changes']} lead changes, "
            f"{repl['replacements']} replacements "
            f"({repl['replacement_failures']} failed); ships "
            f"{repl['state_ships_full']} full / "
            f"{repl['state_ships_delta']} delta "
            f"({repl['ship_bytes']} bytes, "
            f"{repl['delta_fallbacks']} fallbacks)"
        )
        if repl["vote_rounds"]:
            line += (
                f"; votes {repl['votes']}/{repl['vote_rounds']} rounds "
                f"({repl['divergences']} divergences, "
                f"{repl['resyncs']} resyncs)"
            )
        line += (
            f"; replicas {repl['replicas_created']} created, "
            f"{repl['applies']} applies, "
            f"{repl['duplicates_suppressed']} duplicates suppressed"
        )
        sections.append(line)
    cache = report.get("resolve_cache")
    if cache and cache.get("enabled"):
        sections.append(
            f"Resolve cache: {cache['hits']} hits / {cache['misses']} misses "
            f"(epoch {cache['epoch_invalidations']}, "
            f"ttl {cache['ttl_invalidations']}, "
            f"breaker {cache['breaker_invalidations']}, "
            f"churn {cache['churn_invalidations']}; "
            f"stale served {cache['stale_served']})"
        )
    conns = report.get("connection_cache")
    if conns and conns.get("enabled"):
        sections.append(
            f"Connection cache: {conns['hits']} hits / {conns['misses']} "
            f"misses, {conns['opens']} opened, "
            f"{conns['handshake_joins']} handshakes joined, "
            f"{conns['evictions']} evicted, "
            f"{conns['invalidations']} invalidated, "
            f"{conns['failures']} failed"
        )
    reports = report.get("winner_reports")
    if reports and (
        reports["delta_reports_sent"] or reports["reports_coalesced"]
    ):
        sections.append(
            f"Winner reports: {reports['full_reports_sent']} full / "
            f"{reports['delta_reports_sent']} delta sent "
            f"({reports['report_bytes_sent']} bytes, "
            f"{reports['reports_coalesced']} coalesced); collector got "
            f"{reports['delta_reports_received']} deltas, ignored "
            f"{reports['delta_reports_ignored']}"
        )
    plans = report.get("cdr_plan_cache")
    if plans and (plans["encoder_plan_hits"] or plans["decoder_plan_hits"]):
        sections.append(
            f"CDR plan cache: {plans['encoder_plan_hits']} encoder hits / "
            f"{plans['encoder_plans_compiled']} compiled, "
            f"{plans['decoder_plan_hits']} decoder hits / "
            f"{plans['decoder_plans_compiled']} compiled, "
            f"any-memo {plans['any_memo_hits']} hits / "
            f"{plans['any_memo_misses']} misses"
        )
    codegen = report.get("marshal_codegen")
    if codegen and codegen.get("enabled"):
        sections.append(
            f"Marshal codegen: {codegen['encoder_hits']} encoder hits / "
            f"{codegen['encoder_fallbacks']} fallbacks, "
            f"{codegen['decoder_hits']} decoder hits / "
            f"{codegen['decoder_fallbacks']} fallbacks; requests "
            f"{codegen['request_encoder_hits']}/"
            f"{codegen['request_encoder_fallbacks']}, args "
            f"{codegen['arg_decoder_hits']}/"
            f"{codegen['arg_decoder_fallbacks']}, dispatch "
            f"{codegen['dispatch_hits']}/{codegen['dispatch_fallbacks']} "
            f"({codegen['reply_encode_fallbacks']} reply fallbacks); "
            f"{codegen['modules_generated']} modules generated in "
            f"{codegen['generation_seconds']:.3f}s "
            f"({codegen['typecode_coders']} type coders, "
            f"{codegen['op_coders']} op coders)"
        )
    obs = report.get("observability")
    if obs:
        line = (
            f"Observability: {obs['metrics']} metric series, "
            f"{obs['spans_finished']} spans across {obs['traces']} traces "
            f"({obs['spans_open']} open, {obs['spans_dropped']} dropped, "
            f"ring {obs.get('span_ring_utilization', 0.0):.1%} of "
            f"{obs.get('span_capacity', 0)})"
        )
        if obs["spans_dropped"]:
            line += (
                " — WARNING: the span ring wrapped; traces are truncated "
                "and critical-path analysis will refuse them"
            )
        sections.append(line)
    slo = report.get("slo")
    if slo and slo["checked"]:
        line = (
            f"SLOs: {slo['checked'] - slo['failed'] - slo['skipped']} ok, "
            f"{slo['failed']} failed, {slo['skipped']} skipped"
        )
        for result in slo["results"]:
            if not result["ok"]:
                line += f"\n  FAIL {result['slo']}: {result['detail']}"
        sections.append(line)
    return "\n\n".join(sections)
