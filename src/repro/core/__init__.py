"""High-level runtime facade.

:class:`~repro.core.runtime.Runtime` assembles the full system of the
paper on one simulated NOW: cluster + network, one ORB per workstation,
the Winner managers, the load-distributing naming service, the checkpoint
store and per-host object factories — then exposes the deployment and
fault-tolerance API a downstream application uses.

:class:`~repro.core.scenario.Scenario` drives the paper's experiments on
top of it (Fig. 3, Table 1 and the ablations).
"""

from repro.core.config import RuntimeConfig
from repro.core.runtime import Runtime
from repro.core.scenario import Scenario, ScenarioResult

__all__ = ["Runtime", "RuntimeConfig", "Scenario", "ScenarioResult"]
