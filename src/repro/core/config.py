"""Runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.ft.policy import FtPolicy
from repro.orb.core import OrbConfig

#: selection strategies for the naming service, by name.
STRATEGY_NAMES = ("winner", "round-robin", "random", "first-bound")


@dataclass
class RuntimeConfig:
    """Declarative description of one complete deployment.

    Defaults model the paper's testbed: 10 homogeneous workstations on a
    LAN, Winner sampling once a second, the load-distributing naming
    service using the Winner strategy, the (deliberately inefficient)
    in-memory checkpoint store.
    """

    # cluster ----------------------------------------------------------------
    num_hosts: int = 10
    speeds: float | Sequence[float] = 1.0
    cores: int | Sequence[int] = 1
    latency: float = 0.5e-3
    bandwidth: float = 10e6
    seed: int = 0

    # winner -----------------------------------------------------------------
    winner_interval: float = 1.0
    #: host index running the system manager (and naming + store).
    service_host: int = 0

    # naming -----------------------------------------------------------------
    naming_strategy: str = "winner"

    # fault tolerance ----------------------------------------------------------
    checkpoint_backend: str = "memory"  # or "disk"
    checkpoint_processing_work: float = 0.015
    factory_group: str = "factories.service"
    start_factories: bool = True
    #: automatically re-join restarted hosts (fresh ORB, node manager,
    #: factory) after this delay; None disables.
    auto_heal_delay: Optional[float] = 1.0
    #: enable per-host circuit breakers: the recovery coordinators share
    #: one breaker registry and the naming strategy filters replica
    #: selection through it (see repro.ft.breaker).  Off by default —
    #: the paper's fixed-retry behaviour stays the baseline.
    breakers: bool = False
    #: default FtPolicy for recovery coordinators and ft_proxy() when no
    #: explicit policy is given; None = FtPolicy() defaults.  The breaker
    #: thresholds in this policy parameterize the shared registry.
    recovery_policy: Optional["FtPolicy"] = None

    # observability -------------------------------------------------------------
    #: attach the tracing/metrics request interceptor to every ORB.
    observability: bool = True

    # orb ---------------------------------------------------------------------
    orb: OrbConfig = field(default_factory=OrbConfig)

    def validate(self) -> None:
        if self.naming_strategy not in STRATEGY_NAMES:
            raise ConfigurationError(
                f"naming_strategy must be one of {STRATEGY_NAMES}, "
                f"got {self.naming_strategy!r}"
            )
        if self.checkpoint_backend not in ("memory", "disk"):
            raise ConfigurationError(
                f"checkpoint_backend must be 'memory' or 'disk', "
                f"got {self.checkpoint_backend!r}"
            )
        if not 0 <= self.service_host < self.num_hosts:
            raise ConfigurationError(
                f"service_host {self.service_host} outside 0..{self.num_hosts - 1}"
            )
        if self.winner_interval <= 0:
            raise ConfigurationError("winner_interval must be positive")
