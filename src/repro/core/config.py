"""Runtime configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.ft.policy import FtPolicy
from repro.orb.core import OrbConfig

#: selection strategies for the naming service, by name.
STRATEGY_NAMES = ("winner", "round-robin", "random", "first-bound")


@dataclass
class RuntimeConfig:
    """Declarative description of one complete deployment.

    Defaults model the paper's testbed: 10 homogeneous workstations on a
    LAN, Winner sampling once a second, the load-distributing naming
    service using the Winner strategy, the (deliberately inefficient)
    in-memory checkpoint store.
    """

    # cluster ----------------------------------------------------------------
    num_hosts: int = 10
    speeds: float | Sequence[float] = 1.0
    cores: int | Sequence[int] = 1
    latency: float = 0.5e-3
    bandwidth: float = 10e6
    seed: int = 0

    # winner -----------------------------------------------------------------
    winner_interval: float = 1.0
    #: host index running the system manager (and naming + store).
    service_host: int = 0

    #: send field-masked delta load reports instead of a full report per
    #: sampling tick (full report every winner_report_full_interval and
    #: after a node-manager restart).  Off = the paper's protocol.
    winner_delta_reports: bool = False
    #: minimum absolute CPU-utilization movement before the field travels
    #: in a delta report.
    winner_report_deadband: float = 0.02
    #: deltas between consecutive full reports (bounds collector drift).
    winner_report_full_interval: int = 8

    # naming -----------------------------------------------------------------
    naming_strategy: str = "winner"
    #: memoize resolve selections until the Winner ranking epoch advances,
    #: the TTL expires, a breaker trips or the replica set churns (the
    #: resolve fast path).  Off = the paper's always-fresh behaviour.
    resolve_cache: bool = False
    #: wall-clock bound on a cached selection's lifetime (seconds).
    resolve_cache_ttl: float = 1.0
    #: how many ranked replicas a cache entry round-robins across.
    resolve_cache_top_k: int = 3
    #: CPU work charged per candidate scored on a resolve cache miss
    #: (0 = scoring is free, the paper's idealization).
    resolve_scoring_work: float = 0.0

    # fault tolerance ----------------------------------------------------------
    checkpoint_backend: str = "memory"  # or "disk"
    checkpoint_processing_work: float = 0.015
    factory_group: str = "factories.service"
    start_factories: bool = True
    #: automatically re-join restarted hosts (fresh ORB, node manager,
    #: factory) after this delay; None disables.
    auto_heal_delay: Optional[float] = 1.0
    #: enable per-host circuit breakers: the recovery coordinators share
    #: one breaker registry and the naming strategy filters replica
    #: selection through it (see repro.ft.breaker).  Off by default —
    #: the paper's fixed-retry behaviour stays the baseline.
    breakers: bool = False
    #: default FtPolicy for recovery coordinators and ft_proxy() when no
    #: explicit policy is given; None = FtPolicy() defaults.  The breaker
    #: thresholds in this policy parameterize the shared registry.
    recovery_policy: Optional["FtPolicy"] = None

    # observability -------------------------------------------------------------
    #: attach the tracing/metrics request interceptor to every ORB.
    observability: bool = True

    # marshalling ---------------------------------------------------------------
    #: route CDR marshalling and skeleton dispatch through the ahead-of-time
    #: generated fast path (IDL compiler emits flat encode/decode functions
    #: and per-op dispatchers).  Off = the interpreted plan-cache path; the
    #: generated path is bit-identical on the wire, so results match either
    #: way — this only changes host-side marshal cost.
    marshal_codegen: bool = False

    # orb ---------------------------------------------------------------------
    orb: OrbConfig = field(default_factory=OrbConfig)

    def validate(self) -> None:
        if self.naming_strategy not in STRATEGY_NAMES:
            raise ConfigurationError(
                f"naming_strategy must be one of {STRATEGY_NAMES}, "
                f"got {self.naming_strategy!r}"
            )
        if self.checkpoint_backend not in ("memory", "disk"):
            raise ConfigurationError(
                f"checkpoint_backend must be 'memory' or 'disk', "
                f"got {self.checkpoint_backend!r}"
            )
        if not 0 <= self.service_host < self.num_hosts:
            raise ConfigurationError(
                f"service_host {self.service_host} outside 0..{self.num_hosts - 1}"
            )
        if self.winner_interval <= 0:
            raise ConfigurationError("winner_interval must be positive")
        if self.resolve_cache_ttl <= 0:
            raise ConfigurationError("resolve_cache_ttl must be positive")
        if self.resolve_cache_top_k < 1:
            raise ConfigurationError("resolve_cache_top_k must be >= 1")
        if self.resolve_scoring_work < 0:
            raise ConfigurationError("resolve_scoring_work must be >= 0")
        if self.winner_report_deadband < 0:
            raise ConfigurationError("winner_report_deadband must be >= 0")
        if self.winner_report_full_interval < 1:
            raise ConfigurationError(
                "winner_report_full_interval must be >= 1"
            )
