"""Experiment scenarios: the paper's §4 setup as a parameterized driver.

One :class:`Scenario` reproduces one cell of Fig. 3 / Table 1:

* a NOW of ``num_hosts`` workstations (paper: 10);
* worker service replicas deployed on a *pool* of hosts (paper's 30-dim
  case: "6 workstations were available for the 4 processes" — here the
  manager client and the infrastructure services run on ws00 and the
  worker pool is ws01..ws06);
* CPU-bound background load on the first ``background_hosts`` hosts of the
  pool (overflowing onto the remaining cluster hosts, as in the paper
  where up to 8 of 10 machines were loaded);
* the naming service resolving each of the ``num_workers`` worker
  references with the configured strategy — ``round-robin`` is the
  load-oblivious "CORBA" baseline, ``winner`` is "CORBA/Winner";
* optionally fault-tolerance proxies around every worker reference
  (Table 1's "with proxy" column), checkpointing to the store on ws00.

The measured ``runtime`` is the manager's optimization wall time
(deployment and Winner warm-up excluded), which is what Fig. 3 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.config import RuntimeConfig
from repro.orb.core import OrbConfig
from repro.core.runtime import Runtime
from repro.errors import ConfigurationError
from repro.cluster import FailurePlan
from repro.ft import FtPolicy
from repro.opt import (
    DecomposedRosenbrock,
    DistributedRosenbrockOptimizer,
    ManagerResult,
    RosenbrockWorkerServant,
    RosenbrockWorkerStub,
    WorkerSettings,
)
from repro.services.naming.names import to_name

WORKER_GROUP = "workers.service"
WORKER_TYPE = "RosenbrockWorker"


@dataclass
class Scenario:
    """One experiment cell."""

    dimension: int = 30
    num_workers: int = 3
    #: size of the worker-replica host pool (hosts ws01..wsNN).
    pool_size: int = 6
    background_hosts: int = 0
    background_intensity: int = 1
    naming_strategy: str = "winner"
    fault_tolerant: bool = False
    checkpoint_interval: int = 1
    checkpoint_processing_work: float = 0.015
    checkpoint_backend: str = "memory"
    #: checkpoint fast-path knobs (sync + full states = paper behaviour).
    checkpoint_mode: str = "sync"
    checkpoint_deltas: bool = False
    checkpoint_pipeline_depth: int = 1
    checkpoint_full_interval: int = 8
    worker_iterations: int = 20_000
    manager_iterations: int = 18
    manager_points: Optional[int] = None
    worker_settings: WorkerSettings = field(default_factory=WorkerSettings)
    num_hosts: int = 10
    #: per-host relative speeds/cores (scalar = homogeneous); the mixed
    #: uniprocessor/multiprocessor setting Winner was built for.
    speeds: float | Sequence[float] = 1.0
    cores: int | Sequence[int] = 1
    seed: int = 0
    warmup: float = 4.0
    use_dii: bool = True
    failures: Sequence[FailurePlan] = ()
    winner_interval: float = 1.0
    #: resolve fast-path knobs (all off = paper behaviour).
    resolve_cache: bool = False
    resolve_cache_ttl: float = 1.0
    resolve_scoring_work: float = 0.0
    winner_delta_reports: bool = False
    connection_reuse: bool = False
    connection_handshake_rtts: int = 0
    #: AOT marshal/dispatch fast path (bit-identical wire bytes, so the
    #: simulated results are unchanged; off = interpreted plan cache).
    marshal_codegen: bool = False

    def validate(self) -> None:
        if self.pool_size >= self.num_hosts:
            raise ConfigurationError(
                "pool must leave ws00 free for the manager and services"
            )
        if self.num_workers > self.pool_size:
            raise ConfigurationError("more workers than pool hosts")

    # -- execution ------------------------------------------------------------

    def run(self) -> "ScenarioResult":
        self.validate()
        runtime = Runtime(
            RuntimeConfig(
                num_hosts=self.num_hosts,
                speeds=self.speeds,
                cores=self.cores,
                seed=self.seed,
                naming_strategy=self.naming_strategy,
                checkpoint_processing_work=self.checkpoint_processing_work,
                checkpoint_backend=self.checkpoint_backend,
                winner_interval=self.winner_interval,
                resolve_cache=self.resolve_cache,
                resolve_cache_ttl=self.resolve_cache_ttl,
                resolve_scoring_work=self.resolve_scoring_work,
                winner_delta_reports=self.winner_delta_reports,
                marshal_codegen=self.marshal_codegen,
                orb=OrbConfig(
                    connection_reuse=self.connection_reuse,
                    connection_handshake_rtts=self.connection_handshake_rtts,
                ),
            )
        ).start()
        problem = DecomposedRosenbrock(self.dimension, self.num_workers)
        runtime.register_type(
            WORKER_TYPE,
            lambda: RosenbrockWorkerServant(problem, self.worker_settings),
        )

        pool = list(range(1, self.pool_size + 1))
        runtime.run(runtime.deploy_group(WORKER_GROUP, WORKER_TYPE, pool))

        # Background load: first B pool hosts, overflow onto the rest of
        # the cluster (they hold no replicas; the overflow only matters to
        # mirror the paper's "N hosts with background load" setup).
        loaded: list[int] = []
        overflow = []
        for i in range(self.background_hosts):
            if i < len(pool):
                loaded.append(pool[i])
            else:
                overflow.append(self.pool_size + 1 + (i - len(pool)))
        runtime.background_load(loaded + [h for h in overflow if h < self.num_hosts],
                                intensity=self.background_intensity)

        runtime.settle(self.warmup)
        runtime.failures.schedule_all(list(self.failures))

        outcome: dict = {}

        def client():
            naming = runtime.naming_stub(0)
            references = []
            placements = []
            for worker_id in range(self.num_workers):
                ior = yield naming.resolve(to_name(WORKER_GROUP))
                placements.append(ior.host)
                if self.fault_tolerant:
                    reference = runtime.ft_proxy(
                        RosenbrockWorkerStub,
                        ior,
                        key=f"worker-{worker_id}",
                        type_name=WORKER_TYPE,
                        group_name=WORKER_GROUP,
                        policy=FtPolicy(
                            checkpoint_interval=self.checkpoint_interval,
                            checkpoint_mode=self.checkpoint_mode,
                            checkpoint_deltas=self.checkpoint_deltas,
                            checkpoint_pipeline_depth=(
                                self.checkpoint_pipeline_depth
                            ),
                            checkpoint_full_interval=(
                                self.checkpoint_full_interval
                            ),
                        ),
                    )
                else:
                    reference = runtime.orb(0).stub(ior, RosenbrockWorkerStub)
                references.append(reference)
            optimizer = DistributedRosenbrockOptimizer(
                runtime.orb(0),
                problem,
                references,
                worker_iterations=self.worker_iterations,
                manager_iterations=self.manager_iterations,
                seed=self.seed,
                n_points=self.manager_points,
                use_dii=self.use_dii,
            )
            result = yield from optimizer.optimize()
            outcome["result"] = result
            outcome["placements"] = placements
            outcome["references"] = references

        runtime.run(client(), limit=1e7)
        result: ManagerResult = outcome["result"]

        checkpoints = 0
        recoveries = 0
        if self.fault_tolerant:
            checkpoints = sum(
                ref._ft.checkpoints_taken for ref in outcome["references"]
            )
            recoveries = sum(
                c.recoveries for c in runtime._coordinators.values()
            )
        return ScenarioResult(
            scenario=self,
            runtime_seconds=result.runtime,
            result=result,
            worker_placements=outcome["placements"],
            checkpoints=checkpoints,
            recoveries=recoveries,
            runtime_obj=runtime,
        )


@dataclass
class ScenarioResult:
    """Measured outcome of one scenario."""

    scenario: Scenario
    runtime_seconds: float
    result: ManagerResult
    worker_placements: list[str]
    checkpoints: int
    recoveries: int
    runtime_obj: Runtime

    @property
    def label(self) -> str:
        strategy = "CORBA/Winner" if self.scenario.naming_strategy == "winner" else "CORBA"
        return (
            f"{strategy} {self.scenario.dimension}/{self.scenario.num_workers} "
            f"bg={self.scenario.background_hosts}"
        )

    def report(self) -> dict:
        """Full deployment debrief (host utilization, network, ORB stats,
        FT activity) for this scenario's runtime."""
        from repro.core.report import runtime_report

        return runtime_report(self.runtime_obj)
