"""The assembled runtime: every subsystem of the paper wired together."""

from __future__ import annotations

from typing import Callable, Generator, Optional, Sequence

from repro.cluster import BackgroundLoad, Cluster, ClusterConfig, FailureInjector
from repro.core.config import RuntimeConfig
from repro.errors import ConfigurationError
from repro.ft import (
    FtContext,
    FtPolicy,
    HostBreakerRegistry,
    ObjectFactoryServant,
    RecoveryCoordinator,
    make_ft_proxy,
)
from repro.orb import Orb
from repro.orb.ior import IOR
from repro.services.checkpoint import (
    CheckpointStoreServant,
    CheckpointStoreStub,
    DiskBackend,
    MemoryBackend,
)
from repro.services.naming import (
    BreakerAwareStrategy,
    FirstBoundStrategy,
    LoadDistributingContextServant,
    RandomStrategy,
    RoundRobinStrategy,
    WinnerStrategy,
    idl as naming_idl,
)
from repro.services.naming.names import to_name
from repro.sim import Simulator
from repro.winner import NodeManager, SystemManager


class Runtime:
    """One complete deployment of the paper's runtime support.

    Usage::

        rt = Runtime(RuntimeConfig(num_hosts=10, seed=7))
        rt.start()
        rt.register_type("Worker", make_worker_servant)
        iors = rt.run(rt.deploy_group("workers.service", "Worker", hosts=[1, 2]))
        ...
    """

    def __init__(self, config: Optional[RuntimeConfig] = None) -> None:
        self.config = config or RuntimeConfig()
        self.config.validate()
        self.sim = Simulator(seed=self.config.seed)
        self.cluster = Cluster(
            self.sim,
            ClusterConfig(
                num_hosts=self.config.num_hosts,
                speeds=self.config.speeds,
                cores=self.config.cores,
                latency=self.config.latency,
                bandwidth=self.config.bandwidth,
            ),
        )
        self.network = self.cluster.network
        self.failures = FailureInjector(self.cluster)
        policy = self.config.recovery_policy or FtPolicy()
        #: shared per-host circuit breakers; consulted by recovery
        #: coordinators and the naming strategy when config.breakers is on.
        self.breakers = HostBreakerRegistry(
            self.sim,
            failure_threshold=policy.breaker_failure_threshold,
            reset_timeout=policy.breaker_reset_timeout,
            half_open_max=policy.breaker_half_open_max,
        )
        self._orbs: dict[str, Orb] = {}
        self._node_managers: dict[str, NodeManager] = {}
        self._factories: dict[str, ObjectFactoryServant] = {}
        self._factory_types: dict[str, Callable[[], object]] = {}
        self._coordinators: dict[str, RecoveryCoordinator] = {}
        #: every FtContext built via ft_proxy — runtime_report aggregates
        #: their per-proxy checkpoint counters.
        self._ft_contexts: list[FtContext] = []
        #: every ReplicatedServant any factory activated (survives host
        #: heals) — the chaos no-stale-primary invariant audits these.
        self._replica_members: list = []
        self._loads: list[BackgroundLoad] = []
        self.system_manager: Optional[SystemManager] = None
        self.winner_servant = None
        self.winner_ior: Optional[IOR] = None
        self.naming_root: Optional[LoadDistributingContextServant] = None
        self.naming_ior: Optional[IOR] = None
        self.store_servant: Optional[CheckpointStoreServant] = None
        self.store_ior: Optional[IOR] = None
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "Runtime":
        """Bring up ORBs, Winner, naming, store and factories."""
        if self._started:
            return self
        self._started = True
        config = self.config
        from repro.orb import cdr

        cdr.set_marshal_codegen_enabled(config.marshal_codegen)
        service_host = self.cluster.host(config.service_host)

        for host in self.cluster:
            self._orbs[host.name] = self._make_orb(host)
            if config.auto_heal_delay is not None:
                host.on_restart(self._schedule_heal)

        self.system_manager = SystemManager(service_host, self.network)
        for host in self.cluster:
            self._start_node_manager(host)
        # The CORBA face of Winner (Fig. 1): remote components query load
        # through the ORB; local ones (the naming strategy) short-circuit.
        from repro.winner.service import SystemManagerServant

        self.winner_servant = SystemManagerServant(self.system_manager)
        self.winner_ior = self.orb(service_host.name).poa.activate(
            self.winner_servant
        )

        self.naming_root = LoadDistributingContextServant(
            self._make_strategy(),
            resolve_cache=self._make_resolve_cache(),
            resolve_scoring_work=config.resolve_scoring_work,
        )
        self.naming_ior = self.orb(service_host.name).poa.activate(self.naming_root)

        backend = (
            DiskBackend(self.sim)
            if config.checkpoint_backend == "disk"
            else MemoryBackend()
        )
        self.store_servant = CheckpointStoreServant(
            backend=backend,
            processing_work=config.checkpoint_processing_work,
        )
        self.store_ior = self.orb(service_host.name).poa.activate(self.store_servant)

        if config.start_factories:
            for host in self.cluster:
                self._start_factory(host)
        return self

    def _make_orb(self, host) -> Orb:
        orb = Orb(host, self.network, config=self.config.orb)
        if self.config.observability:
            from repro.obs.interceptor import ObservabilityInterceptor

            orb.add_request_interceptor(ObservabilityInterceptor(orb))
        return orb

    def _make_strategy(self):
        name = self.config.naming_strategy
        if name == "winner":
            assert self.system_manager is not None
            strategy = WinnerStrategy(self.system_manager)
        elif name == "round-robin":
            strategy = RoundRobinStrategy()
        elif name == "random":
            strategy = RandomStrategy(self.sim.rng("naming-random"))
        else:
            strategy = FirstBoundStrategy()
        if self.config.breakers:
            strategy = BreakerAwareStrategy(strategy, self.breakers)
        return strategy

    def _make_resolve_cache(self):
        if not self.config.resolve_cache:
            return None
        from repro.services.naming import ResolveCache

        # Only the winner strategy has a local manager to rank against;
        # load-oblivious strategies still cache, just without ranking.
        manager = (
            self.system_manager
            if self.config.naming_strategy == "winner"
            else None
        )
        return ResolveCache(
            self.sim,
            manager=manager,
            breakers=self.breakers if self.config.breakers else None,
            ttl=self.config.resolve_cache_ttl,
            top_k=self.config.resolve_cache_top_k,
        )

    def _start_node_manager(self, host) -> None:
        manager_host = self.cluster.host(self.config.service_host).name
        nm = NodeManager(
            host,
            self.network,
            manager_host=manager_host,
            interval=self.config.winner_interval,
            delta_reports=self.config.winner_delta_reports,
            deadband=self.config.winner_report_deadband,
            full_interval=self.config.winner_report_full_interval,
        )
        self._node_managers[host.name] = nm.start()

    def _start_factory(self, host) -> None:
        factory = ObjectFactoryServant(
            member_listener=self._replica_members.append
        )
        for type_name, maker in self._factory_types.items():
            factory.register_type(type_name, maker)
        self._factories[host.name] = factory
        factory_ior = self.orb(host.name).poa.activate(factory)

        def bind():
            from repro.errors import SystemException

            naming = self.naming_stub(host.name)
            try:
                yield naming.bind_service(
                    to_name(self.config.factory_group), factory_ior
                )
            # analysis: ignore[EXC003]: naming unreachable during bind — the host re-binds when healed
            except (naming_idl.AlreadyBound, SystemException):
                pass

        # Host-bound: a crash before/while binding kills the process cleanly.
        host.spawn(bind(), name=f"bind-factory:{host.name}")

    # -- healing after restarts ---------------------------------------------------

    def _schedule_heal(self, host) -> None:
        delay = self.config.auto_heal_delay
        assert delay is not None
        self.sim.schedule(delay, lambda: self.heal_host(host.name))

    def heal_host(self, host_name: str) -> None:
        """Re-join a restarted host: fresh ORB, node manager, factory."""
        host = self.cluster.host(host_name)
        if not host.up:
            return
        self._orbs[host.name] = self._make_orb(host)
        self._start_node_manager(host)
        if self.config.start_factories:
            self._start_factory(host)

    # -- accessors ---------------------------------------------------------------

    @property
    def obs(self):
        """The simulation's observability hub (metrics + tracer)."""
        return self.sim.obs

    def orb(self, host: int | str) -> Orb:
        name = host if isinstance(host, str) else self.cluster.host(host).name
        try:
            return self._orbs[name]
        except KeyError:
            raise ConfigurationError(f"no ORB on host {name!r} (not started?)") from None

    def naming_stub(self, host: int | str = 0):
        assert self.naming_ior is not None
        return self.orb(host).stub(
            self.naming_ior, naming_idl.LoadDistributingNamingContextStub
        )

    def store_stub(self, host: int | str = 0):
        assert self.store_ior is not None
        return self.orb(host).stub(self.store_ior, CheckpointStoreStub)

    def winner_stub(self, host: int | str = 0):
        """A CORBA stub to the Winner system manager (Fig. 1's query path
        for components not co-located with it)."""
        from repro.winner.service import SystemManagerStub

        assert self.winner_ior is not None
        return self.orb(host).stub(self.winner_ior, SystemManagerStub)

    def coordinator(self, host: int | str = 0) -> RecoveryCoordinator:
        name = host if isinstance(host, str) else self.cluster.host(host).name
        if name not in self._coordinators:
            orb = self.orb(name)
            self._coordinators[name] = RecoveryCoordinator(
                orb,
                self.naming_stub(name),
                self.store_stub(name),
                factory_group=self.config.factory_group,
                policy=self.config.recovery_policy,
                breakers=self.breakers if self.config.breakers else None,
            )
        return self._coordinators[name]

    # -- deployment ------------------------------------------------------------------

    def register_type(self, type_name: str, maker: Callable[[], object]) -> None:
        """Make a servant type creatable by every host factory."""
        self._factory_types[type_name] = maker
        for factory in self._factories.values():
            factory.register_type(type_name, maker)

    def deploy_group(
        self,
        group_name: str,
        type_name: str,
        hosts: Sequence[int | str],
    ) -> Generator:
        """Generator: instantiate the type on each host and register the
        instances as a service group; returns the IORs."""
        if type_name not in self._factory_types:
            raise ConfigurationError(f"unregistered servant type {type_name!r}")
        naming = self.naming_stub(self.config.service_host)
        name = to_name(group_name)
        iors = []
        for host in hosts:
            host_name = (
                host if isinstance(host, str) else self.cluster.host(host).name
            )
            servant = self._factory_types[type_name]()
            ior = self.orb(host_name).poa.activate(servant)
            yield naming.bind_service(name, ior)
            iors.append(ior)
        return iors

    def ft_proxy(
        self,
        stub_class: type,
        ior: IOR,
        key: str,
        type_name: str,
        client_host: int | str = 0,
        group_name: Optional[str] = None,
        policy: Optional[FtPolicy] = None,
        with_store: bool = True,
        with_recovery: bool = True,
    ):
        """Build a fault-tolerance proxy wired to this runtime's services."""
        orb = self.orb(client_host)
        context = FtContext(
            key=key,
            type_name=type_name,
            store=self.store_stub(client_host) if with_store else None,
            recovery=self.coordinator(client_host) if with_recovery else None,
            policy=policy or self.config.recovery_policy or FtPolicy(),
            group_name=group_name,
        )
        self._ft_contexts.append(context)
        proxy_class = make_ft_proxy(stub_class)
        return proxy_class(orb, ior, context)

    # -- load & failures -----------------------------------------------------------------

    def background_load(
        self, hosts: Sequence[int | str], intensity: int = 1
    ) -> list[BackgroundLoad]:
        """Start CPU-bound background load on the given hosts."""
        loads = []
        for host in hosts:
            host_obj = self.cluster.host(host)
            load = BackgroundLoad(host_obj, intensity=intensity).start()
            loads.append(load)
        self._loads.extend(loads)
        return loads

    def stop_background_load(self) -> None:
        for load in self._loads:
            load.stop()
        self._loads.clear()

    # -- execution --------------------------------------------------------------------------

    def run(self, generator: Generator, limit: float = 1e7):
        """Run a generator as a simulation process to completion."""
        process = self.sim.spawn(generator)
        value = self.sim.run_until_done(process, limit=limit)
        self.sim.check_unhandled()
        return value

    def settle(self, duration: Optional[float] = None) -> None:
        """Let Winner reports accumulate (default: three intervals)."""
        horizon = duration if duration is not None else 3.2 * self.config.winner_interval
        self.sim.run(until=self.sim.now + horizon)
